//! Bit-identity for the materialized-view tier.
//!
//! Two layers of evidence:
//!
//! 1. **Engine-level**: for any graph, any census algorithm, any thread
//!    count, `COUNTP` and `COUNTSP`, and any focal subset (`WHERE`
//!    filters including `RND()` sampling), a query served from a
//!    materialized view must reproduce a plain engine's recompute
//!    exactly. A proptest sweeps random graphs × the full combination
//!    space; the view registry's hit counter proves the probe path
//!    actually served the rows.
//! 2. **Server-level freshness**: a server that materialized its views
//!    must stay byte-identical to a view-less server across random
//!    `INSERT`/`DELETE EDGE` update scripts — the view is *refreshed*
//!    through the incremental engine's dirty-focal sets, never
//!    invalidated and never re-materialized, and `view_refresh_errors`
//!    must stay zero.

use egocensus::census::Algorithm;
use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::query::{Catalog, QueryEngine, ViewRegistry, DEFAULT_VIEW_BUDGET};
use egocensus::server::{Client, Server, ServerConfig};
use proptest::prelude::*;
use std::sync::Arc;

const SEED: u64 = 0xC0FFEE;

const ALGORITHMS: [Algorithm; 7] = [
    Algorithm::Auto,
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
];

/// `COUNTSP` needs a per-focal match list; the two algorithms that
/// reject it error *before* any view could serve the rows, so there is
/// no successful recompute to compare against.
fn supports_countsp(a: Algorithm) -> bool {
    !matches!(a, Algorithm::NdBaseline | Algorithm::NdDiff)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 3) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 4 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn engine(g: &Graph, algorithm: Algorithm, threads: usize) -> QueryEngine<'_> {
    let mut e = QueryEngine::with_builtins(g);
    e.set_algorithm(algorithm);
    e.set_threads(threads);
    e.set_seed(SEED);
    e
}

/// The focal-subset shapes a view probe must gather correctly: whole
/// range, ID prefix, label class, interior ID band, and a `RND()`
/// sample (the stream is seeded identically on both engines).
fn focal_filter(choice: u8, n: usize) -> String {
    match choice % 5 {
        0 => String::new(),
        1 => format!(" WHERE ID < {}", n / 2),
        2 => " WHERE LABEL = 1".to_string(),
        3 => format!(" WHERE ID >= {} AND ID < {}", n / 3, 2 * n / 3),
        _ => " WHERE RND() < 0.5".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: view-served rows are bit-identical to a
    /// direct recompute for every algorithm × thread count × aggregate
    /// × focal subset.
    #[test]
    fn view_probe_is_bit_identical_to_direct_recompute(
        g in arb_graph(),
        algorithm_index in 0usize..7,
        threads in 1usize..5,
        countsp in any::<bool>(),
        filter_choice in any::<u8>(),
    ) {
        let algorithm = ALGORITHMS[algorithm_index];
        let countsp = countsp && supports_countsp(algorithm);
        let sql = if countsp {
            format!(
                "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 1)) FROM nodes{}",
                focal_filter(filter_choice, g.num_nodes())
            )
        } else {
            format!(
                "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes{}",
                focal_filter(filter_choice, g.num_nodes())
            )
        };

        let direct = engine(&g, algorithm, threads);
        let want = direct.execute(&sql).expect("direct recompute");

        let mut viewed = engine(&g, algorithm, threads);
        viewed.set_views(Arc::new(ViewRegistry::new(DEFAULT_VIEW_BUDGET)));
        let materialize = if countsp {
            "MATERIALIZE triad RADIUS 1 SUBPATTERN coordinator MATCHES"
        } else {
            "MATERIALIZE clq3_unlb RADIUS 1 MATCHES"
        };
        viewed.execute(materialize).expect("materialize");
        let got = viewed.execute(&sql).expect("view-served execution");

        prop_assert_eq!(got.columns(), want.columns());
        prop_assert_eq!(got.rows(), want.rows());
        let stats = viewed.views().expect("registry attached").stats();
        prop_assert!(stats.hits >= 1, "the probe path must have served the rows");
    }
}

// --- server-level freshness across random update scripts ---

fn freshness_graph() -> Graph {
    let mut r = rng(77);
    let g = barabasi_albert(60, 2, &mut r);
    assign_random_labels(&g, 3, &mut r)
}

fn spawn(
    algorithm: Algorithm,
) -> (
    std::net::SocketAddr,
    egocensus::server::ShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(freshness_graph()),
        Arc::new(Catalog::with_builtins()),
        ServerConfig {
            pool_threads: 2,
            exec_threads: 1,
            seed: SEED,
            algorithm,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, thread)
}

/// Random edge-mutation scripts over the 60-node freshness graph.
/// Inserts of existing edges and deletes of absent ones are legal
/// no-ops, so no filtering is needed beyond self-loops.
fn arb_scripts() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::collection::vec((0u32..60, 0u32..60, any::<bool>()), 1..6),
        1..4,
    )
    .prop_map(|scripts| {
        scripts
            .into_iter()
            .map(|ops| {
                let stmts: Vec<String> = ops
                    .into_iter()
                    .filter(|(a, b, _)| a != b)
                    .map(|(a, b, insert)| {
                        let verb = if insert { "INSERT" } else { "DELETE" };
                        format!("{verb} EDGE ({}, {})", a.min(b), a.max(b))
                    })
                    .collect();
                if stmts.is_empty() {
                    "INSERT EDGE (0, 59)".to_string()
                } else {
                    stmts.join("; ")
                }
            })
            .collect()
    })
}

const FRESHNESS_QUERIES: [&str; 3] = [
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 30",
    "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 1)) FROM nodes WHERE ID >= 10",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// After every random update script, the materialized server's
    /// responses must stay byte-identical to a view-less server's —
    /// freshness comes from incremental refresh, never invalidation.
    #[test]
    fn views_stay_fresh_across_random_update_scripts(scripts in arb_scripts()) {
        let (plain_addr, plain_stop, plain_thread) = spawn(Algorithm::Auto);
        let (view_addr, view_stop, view_thread) = spawn(Algorithm::Auto);
        let mut plain = Client::connect(plain_addr).expect("connect plain");
        let mut viewed = Client::connect(view_addr).expect("connect viewed");

        for m in [
            "MATERIALIZE clq3_unlb RADIUS 1 MATCHES",
            "MATERIALIZE triad RADIUS 1 SUBPATTERN coordinator MATCHES",
        ] {
            let resp = viewed.materialize(m).expect("materialize");
            prop_assert!(!resp.is_error(), "materialize failed: {:?}", resp);
        }
        let generation_before = viewed
            .stats()
            .expect("stats")
            .stat("graph_generation")
            .unwrap_or(0);

        for script in &scripts {
            let raw = format!(
                r#"{{"op":"update","mutations":"{}"}}"#,
                script.replace('"', "\\\"")
            );
            let a = plain.send_raw(&raw).expect("plain update");
            let b = viewed.send_raw(&raw).expect("viewed update");
            prop_assert_eq!(&a, &b, "update acks diverged for `{}`", script);
            for sql in FRESHNESS_QUERIES {
                let raw = format!(
                    r#"{{"op":"query","sql":"{}"}}"#,
                    sql.replace('"', "\\\"")
                );
                let want = plain.send_raw(&raw).expect("plain query");
                let got = viewed.send_raw(&raw).expect("viewed query");
                prop_assert_eq!(
                    &got, &want,
                    "view-served bytes diverged after `{}` for `{}`", script, sql
                );
            }
        }

        let stats = viewed.stats().expect("stats");
        prop_assert_eq!(stats.stat("view_entries"), Some(2), "views must stay pinned");
        prop_assert_eq!(stats.stat("view_refresh_errors"), Some(0));
        prop_assert_eq!(
            stats.stat("view_materializations"), Some(2),
            "freshness must come from refresh, not re-materialization"
        );
        // A script of pure no-ops (deleting absent edges) neither bumps
        // the generation nor invalidates the result cache, so refresh
        // and probe counts scale with *effective* updates, not scripts.
        let effective = stats.stat("graph_generation").unwrap_or(0) - generation_before;
        prop_assert!(
            stats.stat("view_refreshes").unwrap_or(0) >= 2 * effective,
            "every effective update must refresh both pinned views in place"
        );
        prop_assert!(
            stats.stat("view_hits").unwrap_or(0) >= 3,
            "queries must be served by the view tier"
        );

        plain_stop.shutdown();
        view_stop.shutdown();
        plain_thread.join().expect("plain thread");
        view_thread.join().expect("view thread");
    }
}
