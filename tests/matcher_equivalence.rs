//! Property-based equivalence of the CN matcher and the GQL-style
//! baseline: both must enumerate exactly the same embeddings on arbitrary
//! graphs (undirected and directed) and patterns.

use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::matcher::{find_embeddings, MatcherKind};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

fn arb_graph(directed: bool) -> impl Strategy<Value = Graph> {
    (4usize..20, any::<u64>(), 1u16..4).prop_map(move |(n, seed, labels)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for _ in 0..n {
            b.add_node(Label((next() % labels as u64) as u16));
        }
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j && next() % 5 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn undirected_patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN e { ?A-?B; }").unwrap(),
        Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap(),
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap(),
        Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap(),
        Pattern::parse("PATTERN wedge { ?A-?B; ?B-?C; ?A!-?C; }").unwrap(),
        Pattern::parse("PATTERN lbl { ?A-?B; [?A.LABEL=0]; [?B.LABEL=1]; }").unwrap(),
        Pattern::parse("PATTERN star { ?H-?A; ?H-?B; ?H-?C; }").unwrap(),
    ]
}

fn directed_patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN de { ?A->?B; }").unwrap(),
        Pattern::parse("PATTERN dp { ?A->?B; ?B->?C; }").unwrap(),
        Pattern::parse("PATTERN cyc { ?A->?B; ?B->?C; ?C->?A; }").unwrap(),
        Pattern::parse("PATTERN open { ?A->?B; ?B->?C; ?A!->?C; }").unwrap(),
        Pattern::parse("PATTERN mutual { ?A->?B; ?B->?A; }").unwrap(),
        Pattern::parse("PATTERN mix { ?A->?B; ?B-?C; }").unwrap(),
    ]
}

fn canon(mut embs: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    embs.sort();
    embs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn undirected_equivalence(g in arb_graph(false), pi in 0usize..7) {
        let pats = undirected_patterns();
        let p = &pats[pi];
        let cn = canon(find_embeddings(&g, p, MatcherKind::CandidateNeighbors));
        let gql = canon(find_embeddings(&g, p, MatcherKind::GqlStyle));
        let spath = canon(find_embeddings(&g, p, MatcherKind::SPathStyle));
        prop_assert_eq!(&cn, &gql, "pattern={}", p.name());
        prop_assert_eq!(&cn, &spath, "pattern={} (spath)", p.name());
    }

    #[test]
    fn directed_equivalence(g in arb_graph(true), pi in 0usize..6) {
        let pats = directed_patterns();
        let p = &pats[pi];
        let cn = canon(find_embeddings(&g, p, MatcherKind::CandidateNeighbors));
        let gql = canon(find_embeddings(&g, p, MatcherKind::GqlStyle));
        let spath = canon(find_embeddings(&g, p, MatcherKind::SPathStyle));
        prop_assert_eq!(&cn, &gql, "pattern={}", p.name());
        prop_assert_eq!(&cn, &spath, "pattern={} (spath)", p.name());
    }

    #[test]
    fn embeddings_are_valid(g in arb_graph(false), pi in 0usize..7) {
        // Every reported embedding is injective and realizes every
        // positive edge; negated edges are absent.
        let pats = undirected_patterns();
        let p = &pats[pi];
        for emb in find_embeddings(&g, p, MatcherKind::CandidateNeighbors) {
            // Injective.
            let mut sorted = emb.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), emb.len(), "non-injective embedding");
            for e in p.positive_edges() {
                prop_assert!(
                    g.has_undirected_edge(emb[e.a.index()], emb[e.b.index()]),
                    "missing positive edge"
                );
            }
            for e in p.negative_edges() {
                prop_assert!(
                    !g.has_undirected_edge(emb[e.a.index()], emb[e.b.index()]),
                    "negated edge present"
                );
            }
            for v in p.nodes() {
                if let Some(l) = p.label(v) {
                    prop_assert_eq!(g.label(emb[v.index()]), l, "label violated");
                }
            }
        }
    }

    #[test]
    fn embedding_count_is_multiple_of_automorphisms(g in arb_graph(false), pi in 0usize..5) {
        let pats = undirected_patterns();
        let p = &pats[pi];
        let auts = egocensus::pattern::automorphism_group(p).len();
        let embs = find_embeddings(&g, p, MatcherKind::CandidateNeighbors).len();
        prop_assert_eq!(embs % auts, 0, "embeddings {} not divisible by |Aut| {}", embs, auts);
    }
}
