//! Property-based differential testing on *directed* graphs: the census
//! algorithms must agree with ND-BAS for directed patterns (including
//! negated directed edges and COUNTSP anchors).

use egocensus::census::{run_census_with, Algorithm, CensusSpec, PtConfig};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

fn arb_digraph() -> impl Strategy<Value = Graph> {
    (4usize..20, any::<u64>(), 1u16..3).prop_map(|(n, seed, labels)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::directed();
        for _ in 0..n {
            b.add_node(Label((next() % labels as u64) as u16));
        }
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j && next() % 4 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN de { ?A->?B; }").unwrap(),
        Pattern::parse("PATTERN dp { ?A->?B; ?B->?C; }").unwrap(),
        Pattern::parse("PATTERN cyc { ?A->?B; ?B->?C; ?C->?A; }").unwrap(),
        Pattern::parse("PATTERN open { ?A->?B; ?B->?C; ?A!->?C; }").unwrap(),
        Pattern::parse("PATTERN mutual { ?A->?B; ?B->?A; }").unwrap(),
        Pattern::parse("PATTERN lbl { ?A->?B; [?A.LABEL=0]; }").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn directed_census_matches_nd_bas(g in arb_digraph(), k in 0u32..3, pi in 0usize..6) {
        let pats = patterns();
        let p = &pats[pi];
        let spec = CensusSpec::single(p, k);
        let oracle = run_census_with(&g, &spec, Algorithm::NdBaseline, &PtConfig::default())
            .unwrap();
        for algo in [
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
            Algorithm::Auto,
        ] {
            let got = run_census_with(&g, &spec, algo, &PtConfig::default()).unwrap();
            for n in g.node_ids() {
                prop_assert_eq!(
                    got.get(n),
                    oracle.get(n),
                    "algo={:?} pattern={} k={} node={:?}",
                    algo, p.name(), k, n
                );
            }
        }
    }

    #[test]
    fn directed_countsp_consistent_across_algorithms(g in arb_digraph(), k in 0u32..3) {
        // The coordinator triad anchored on its middle node: ND-PVOT and
        // PT agree (ND-BAS cannot evaluate COUNTSP).
        let p = Pattern::parse(
            "PATTERN triad { ?A->?B; ?B->?C; ?A!->?C; SUBPATTERN mid {?B;} }",
        )
        .unwrap();
        let spec = CensusSpec::single(&p, k).with_subpattern("mid");
        let a = run_census_with(&g, &spec, Algorithm::NdPivot, &PtConfig::default()).unwrap();
        for algo in [Algorithm::PtBaseline, Algorithm::PtOpt] {
            let b = run_census_with(&g, &spec, algo, &PtConfig::default()).unwrap();
            for n in g.node_ids() {
                prop_assert_eq!(a.get(n), b.get(n), "algo={:?} node={:?}", algo, n);
            }
        }
    }

    #[test]
    fn countsp_k0_equals_anchor_image_count(g in arb_digraph()) {
        // At k = 0 the neighborhood is the node itself, so the COUNTSP
        // census equals the number of matches whose anchor image is the
        // node — checkable directly from the match list.
        let p = Pattern::parse(
            "PATTERN dp { ?A->?B; ?B->?C; SUBPATTERN mid {?B;} }",
        )
        .unwrap();
        let matches = egocensus::census::global_matches(&g, &p);
        let mid = p.node_by_name("B").unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern("mid");
        let counts =
            run_census_with(&g, &spec, Algorithm::NdPivot, &PtConfig::default()).unwrap();
        for n in g.node_ids() {
            let direct = matches.iter().filter(|m| m.image(mid) == n).count() as u64;
            prop_assert_eq!(counts.get(n), direct, "node {:?}", n);
        }
    }
}
