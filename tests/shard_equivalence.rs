//! Bit-identity for the sharded census tier.
//!
//! Two layers of evidence:
//!
//! 1. **Engine-level** (no network): running a statement once per shard
//!    with [`QueryEngine::set_focal_shard`] and concatenating the
//!    per-shard tables in shard order must reproduce the unsharded
//!    table exactly — for uneven partitions, empty shards, shard
//!    boundaries splitting a label run, `RND()` sampling, and
//!    `COUNTSP`'s globally-computed match list. A proptest sweeps
//!    random graphs × worker counts.
//! 2. **Router loopback e2e**: a [`Router`] in front of 1/2/4
//!    in-process worker [`Server`]s must answer byte-identically to a
//!    single direct server for every census algorithm — including
//!    error responses where an algorithm rejects `COUNTSP` — and stay
//!    byte-identical after an `update` mutation and after a worker is
//!    killed mid-session and its shard re-scattered to a survivor.

use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::query::{Catalog, QueryEngine, ShardSpec};
use egocensus::server::{Client, Server, ServerConfig, ShutdownHandle};
use egocensus::shard::{Router, RouterConfig, RouterShutdownHandle};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;

fn test_graph() -> Graph {
    let mut r = rng(99);
    let g = barabasi_albert(120, 3, &mut r);
    assign_random_labels(&g, 3, &mut r)
}

/// Statements covering every scatter-relevant shape: per-focal counts,
/// a `WHERE` with a label/ID predicate (shard boundaries land inside
/// label runs), `RND()` sampling (the stream must stay aligned with
/// unsharded execution), `COUNTSP` (global match list, per-focal
/// containment), and two statements the router must *proxy* whole
/// (`ORDER BY`/`LIMIT` and pairwise).
const QUERIES: [&str; 6] = [
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes \
     WHERE LABEL = 1 AND ID < 100",
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() < 0.35",
    "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 2)) FROM nodes ORDER BY 2 DESC LIMIT 7",
    "SELECT n1.ID, n2.ID, COUNTP(clq3_unlb, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
     FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 3",
];

/// Indices of `QUERIES` that the router scatters (single-table, no
/// `ORDER BY`/`LIMIT`).
const SCATTERABLE: [usize; 4] = [0, 1, 2, 3];

// --- engine-level shard concatenation ---

fn run_sharded(g: &Graph, sql: &str, workers: u32) -> Vec<Vec<egocensus::query::Value>> {
    let mut rows = Vec::new();
    let mut engine = QueryEngine::with_builtins(g);
    engine.set_threads(1);
    engine.set_seed(SEED);
    for j in 0..workers {
        engine.set_focal_shard(Some(ShardSpec::new(j, workers).unwrap()));
        let t = engine.execute(sql).expect("sharded execution");
        rows.extend(t.rows().to_vec());
    }
    rows
}

fn run_whole(g: &Graph, sql: &str) -> Vec<Vec<egocensus::query::Value>> {
    let mut engine = QueryEngine::with_builtins(g);
    engine.set_threads(1);
    engine.set_seed(SEED);
    engine
        .execute(sql)
        .expect("whole execution")
        .rows()
        .to_vec()
}

#[test]
fn shard_concatenation_reproduces_whole_run_for_uneven_partitions() {
    let g = test_graph();
    // 7 and 13 do not divide 120, so shard boundaries fall mid-range
    // (and mid-label-run); 120 shards makes every shard 1 node.
    for workers in [1u32, 2, 3, 7, 13, 120] {
        for sql in &QUERIES[..4] {
            assert_eq!(
                run_sharded(&g, sql, workers),
                run_whole(&g, sql),
                "workers={workers} sql={sql}"
            );
        }
    }
}

#[test]
fn more_shards_than_nodes_yields_empty_tail_shards() {
    let mut b = GraphBuilder::undirected();
    b.add_nodes(5, Label(0));
    for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
        b.add_edge(NodeId(x), NodeId(y));
    }
    let g = b.build();
    let sql = "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes";
    // 8 shards over 5 nodes: at least 3 shards are empty, and the
    // concatenation must still be exact.
    let whole = run_whole(&g, sql);
    assert_eq!(whole.len(), 5);
    assert_eq!(run_sharded(&g, sql, 8), whole);
    // An individual tail shard really is empty.
    let mut engine = QueryEngine::with_builtins(&g);
    engine.set_focal_shard(Some(ShardSpec::new(0, 8).unwrap()));
    assert_eq!(
        engine.execute(sql).unwrap().num_rows(),
        0,
        "5*1/8 = 0 nodes"
    );
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 3) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 4 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant at the engine layer: for any graph and
    /// any worker count, per-shard execution concatenated in shard
    /// order is bit-identical to unsharded execution — including under
    /// `RND()` sampling, whose stream is drawn before the shard filter.
    #[test]
    fn sharded_execution_is_bit_identical(
        g in arb_graph(),
        workers in 1u32..9,
        query_index in 0usize..4,
    ) {
        let sql = QUERIES[query_index];
        prop_assert_eq!(
            run_sharded(&g, sql, workers),
            run_whole(&g, sql),
            "workers={} sql={}", workers, sql
        );
    }
}

// --- router loopback e2e ---

struct TestFleet {
    router_addr: SocketAddr,
    worker_handles: Vec<ShutdownHandle>,
    router_handle: RouterShutdownHandle,
    threads: Vec<JoinHandle<()>>,
}

fn server_config(algorithm: &str) -> ServerConfig {
    ServerConfig {
        pool_threads: 2,
        exec_threads: 1,
        seed: SEED,
        algorithm: parse_algo(algorithm),
        ..ServerConfig::default()
    }
}

fn parse_algo(name: &str) -> egocensus::census::Algorithm {
    use egocensus::census::Algorithm::*;
    match name {
        "auto" => Auto,
        "nd-bas" => NdBaseline,
        "nd-pivot" => NdPivot,
        "nd-diff" => NdDiff,
        "pt-bas" => PtBaseline,
        "pt-rnd" => PtRandom,
        "pt-opt" => PtOpt,
        other => panic!("unknown algorithm {other}"),
    }
}

/// Spawn `workers` in-process servers over fresh copies of the test
/// graph plus a router in front of them, all on ephemeral ports.
fn spawn_fleet(workers: usize, algorithm: &str) -> TestFleet {
    let mut worker_addrs = Vec::new();
    let mut worker_handles = Vec::new();
    let mut threads = Vec::new();
    for _ in 0..workers {
        let server = Server::bind(
            ("127.0.0.1", 0),
            Arc::new(test_graph()),
            Arc::new(Catalog::with_builtins()),
            server_config(algorithm),
        )
        .expect("bind worker");
        worker_addrs.push(server.local_addr().expect("worker addr"));
        worker_handles.push(server.shutdown_handle());
        threads.push(std::thread::spawn(move || {
            server.run().expect("worker run")
        }));
    }
    let config = RouterConfig {
        worker_timeout: Duration::from_secs(30),
        ..RouterConfig::default()
    };
    let router = Router::bind(("127.0.0.1", 0), &worker_addrs, config).expect("bind router");
    let router_addr = router.local_addr().expect("router addr");
    let router_handle = router.shutdown_handle();
    threads.push(std::thread::spawn(move || {
        router.run().expect("router run")
    }));
    TestFleet {
        router_addr,
        worker_handles,
        router_handle,
        threads,
    }
}

impl TestFleet {
    fn stop(self) {
        self.router_handle.shutdown();
        for h in &self.worker_handles {
            h.shutdown();
        }
        for t in self.threads {
            t.join().expect("fleet thread");
        }
    }
}

/// The reference: one direct server over the same graph and config,
/// asked the same raw lines.
fn direct_responses(algorithm: &str, lines: &[String]) -> Vec<String> {
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(test_graph()),
        Arc::new(Catalog::with_builtins()),
        server_config(algorithm),
    )
    .expect("bind direct");
    let addr = server.local_addr().expect("direct addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("direct run"));
    let mut client = Client::connect(addr).expect("connect direct");
    let out = lines
        .iter()
        .map(|l| client.send_raw(l).expect("direct response"))
        .collect();
    handle.shutdown();
    thread.join().expect("direct thread");
    out
}

fn raw_query(sql: &str) -> String {
    format!(
        r#"{{"op":"query","sql":"{}"}}"#,
        sql.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

const ALGORITHMS: [&str; 7] = [
    "auto", "nd-bas", "nd-pivot", "nd-diff", "pt-bas", "pt-rnd", "pt-opt",
];

#[test]
fn router_is_byte_identical_to_direct_server_across_workers_and_algorithms() {
    // nd-bas and nd-diff reject COUNTSP: those responses are errors,
    // and the error bytes must match too.
    let lines: Vec<String> = QUERIES.iter().map(|sql| raw_query(sql)).collect();
    for algorithm in ALGORITHMS {
        let expected = direct_responses(algorithm, &lines);
        for workers in [1usize, 2, 4] {
            let fleet = spawn_fleet(workers, algorithm);
            let mut client = Client::connect(fleet.router_addr).expect("connect router");
            for (line, want) in lines.iter().zip(&expected) {
                let got = client.send_raw(line).expect("router response");
                assert_eq!(
                    &got, want,
                    "algorithm={algorithm} workers={workers} line={line}"
                );
            }
            fleet.stop();
        }
    }
}

#[test]
fn router_responses_stay_identical_after_update_mutation() {
    let mutations = "INSERT EDGE (0, 57); INSERT EDGE (3, 99); DELETE EDGE (0, 1)";
    let mut lines: Vec<String> = SCATTERABLE.iter().map(|&i| raw_query(QUERIES[i])).collect();
    lines.push(format!(r#"{{"op":"update","mutations":"{mutations}"}}"#));
    for &i in &SCATTERABLE {
        lines.push(raw_query(QUERIES[i])); // re-ask on the mutated graph
    }
    let expected = direct_responses("auto", &lines);
    let fleet = spawn_fleet(2, "auto");
    let mut client = Client::connect(fleet.router_addr).expect("connect router");
    for (line, want) in lines.iter().zip(&expected) {
        let got = client.send_raw(line).expect("router response");
        assert_eq!(&got, want, "line={line}");
    }
    fleet.stop();
}

#[test]
fn session_defines_broadcast_to_all_workers() {
    let dsl = "PATTERN wedge { ?A-?B; ?B-?C; }";
    let sql = "SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) FROM nodes";
    let lines = vec![
        format!(r#"{{"op":"define","pattern":"{dsl}"}}"#),
        raw_query(sql),
    ];
    let expected = direct_responses("auto", &lines);
    let fleet = spawn_fleet(3, "auto");
    let mut client = Client::connect(fleet.router_addr).expect("connect router");
    for (line, want) in lines.iter().zip(&expected) {
        assert_eq!(&client.send_raw(line).expect("response"), want, "{line}");
    }
    // A second router session must NOT see the first session's pattern,
    // exactly like a second direct connection would not.
    let mut other = Client::connect(fleet.router_addr).expect("second connect");
    let resp = other.query(sql).expect("query undefined pattern");
    assert!(resp.is_error(), "defines must stay session-local");
    fleet.stop();
}

#[test]
fn killed_worker_has_its_shard_rescattered_to_a_survivor() {
    let sql = QUERIES[0];
    let expected = direct_responses("auto", &[raw_query(sql)]).remove(0);
    let fleet = spawn_fleet(2, "auto");
    let mut client = Client::connect(fleet.router_addr).expect("connect router");

    // Warm: both workers answer their shard.
    assert_eq!(client.send_raw(&raw_query(sql)).expect("warm"), expected);

    // Kill worker 0. The router session holds an open connection to it;
    // the next scatter hits a dead socket mid-gather and must re-send
    // shard 0/2 to the survivor, still producing identical bytes.
    fleet.worker_handles[0].shutdown();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        client.send_raw(&raw_query(sql)).expect("after kill"),
        expected,
        "query after worker kill must be byte-identical"
    );

    let stats = client.stats().expect("router stats");
    assert_eq!(stats.stat("router_workers_total"), Some(2));
    assert_eq!(stats.stat("router_workers_up"), Some(1));
    assert!(
        stats.stat("router_worker_failures").unwrap_or(0) >= 1,
        "failure must be counted"
    );
    assert!(
        stats.stat("router_rescattered_shards").unwrap_or(0) >= 1,
        "re-scatter must be counted"
    );

    // New sessions keep working against the surviving worker.
    let mut fresh = Client::connect(fleet.router_addr).expect("fresh connect");
    assert_eq!(fresh.send_raw(&raw_query(sql)).expect("fresh"), expected);
    fleet.stop();
}

#[test]
fn router_stats_aggregate_worker_counters_and_latency() {
    let fleet = spawn_fleet(2, "auto");
    let mut client = Client::connect(fleet.router_addr).expect("connect router");
    let _ = client.send_raw(&raw_query(QUERIES[0])).expect("query");
    let stats = client.stats().expect("stats");
    // Two workers each executed one shard of the query.
    assert_eq!(stats.stat("latency_query_count"), Some(2));
    assert_eq!(stats.stat("queries_executed"), Some(2));
    assert_eq!(stats.stat("router_scattered_queries"), Some(1));
    let min = stats.stat("latency_query_min_us").expect("min row");
    let mean = stats.stat("latency_query_mean_us").expect("mean row");
    let max = stats.stat("latency_query_max_us").expect("max row");
    assert!(
        min <= mean && mean <= max,
        "min {min} mean {mean} max {max}"
    );
    fleet.stop();
}

/// Materialized views through the router: worker `j` pins shard `j/n`
/// of the view, a scattered query's shard `j/n` then probes it, and
/// every response — materialize ack, view-served rows, post-update
/// rows (refreshed in place), drop ack, and the census rows after the
/// drop — must be byte-identical to a single direct server's.
#[test]
fn materialized_views_through_the_router_match_a_direct_server() {
    let sql = QUERIES[0];
    let lines = vec![
        r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1 MATCHES"}"#.to_string(),
        raw_query(sql),
        r#"{"op":"update","mutations":"INSERT EDGE (5, 60)"}"#.to_string(),
        raw_query(sql),
        r#"{"op":"drop_view","sql":"DROP VIEW clq3_unlb RADIUS 1"}"#.to_string(),
        raw_query(sql),
        // A second drop errors; the error bytes must match too.
        r#"{"op":"drop_view","sql":"DROP VIEW clq3_unlb RADIUS 1"}"#.to_string(),
    ];
    let expected = direct_responses("auto", &lines);
    for workers in [1usize, 2, 4] {
        let fleet = spawn_fleet(workers, "auto");
        let mut client = Client::connect(fleet.router_addr).expect("connect router");
        for (line, want) in lines.iter().zip(&expected) {
            let got = client.send_raw(line).expect("router response");
            assert_eq!(&got, want, "workers={workers} line={line}");
        }
        // Every worker pinned, probed, refreshed, and dropped its shard
        // of the view; the merged stats sum the fleet's counters.
        let stats = client.stats().expect("router stats");
        let w = workers as i64;
        assert_eq!(stats.stat("view_entries"), Some(0), "workers={workers}");
        assert_eq!(
            stats.stat("view_materializations"),
            Some(w),
            "workers={workers}"
        );
        assert_eq!(stats.stat("view_drops"), Some(w), "workers={workers}");
        assert_eq!(stats.stat("view_refreshes"), Some(w), "workers={workers}");
        assert!(
            stats.stat("view_hits").unwrap_or(0) >= w,
            "workers={workers}: each shard probe must hit its worker's view"
        );
        assert_eq!(
            stats.stat("view_refresh_errors"),
            Some(0),
            "workers={workers}"
        );
        fleet.stop();
    }
}

// --- continuous subscriptions through the router ---

const SUB_SQL: &str = "SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes";
const UPDATES: [&str; 3] = [
    "INSERT EDGE (0, 57); INSERT EDGE (3, 99); DELETE EDGE (0, 1)",
    "INSERT EDGE (5, 60)",
    "INSERT EDGE (7, 80); DELETE EDGE (5, 60)",
];

fn table(resp: egocensus::server::Response) -> egocensus::server::TableData {
    match resp {
        egocensus::server::Response::Table(t) => t,
        other => panic!("expected a table, got {other:?}"),
    }
}

/// Subscribe + mutate on one direct server; returns the ack table and
/// the frame pushed for each update script.
fn direct_subscription_frames(
    updates: &[&str],
) -> (
    egocensus::server::TableData,
    Vec<egocensus::server::NotifyFrame>,
) {
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(test_graph()),
        Arc::new(Catalog::with_builtins()),
        server_config("auto"),
    )
    .expect("bind direct");
    let addr = server.local_addr().expect("direct addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("direct run"));
    let mut client = Client::connect(addr).expect("connect direct");
    let ack = table(client.subscribe(SUB_SQL).expect("subscribe"));
    let mut frames = Vec::new();
    for script in updates {
        table(client.update(script).expect("update"));
        let mut f = client.drain_notifications();
        assert_eq!(f.len(), 1, "one frame per update");
        frames.push(f.remove(0));
    }
    handle.shutdown();
    thread.join().expect("direct thread");
    (ack, frames)
}

/// The router's merged subscription frames — legs concatenated in shard
/// order — must be byte-identical to a single direct server's, ack
/// included, and unsubscribing must stop the pushes.
#[test]
fn subscription_frames_through_the_router_match_a_direct_server() {
    let (want_ack, want_frames) = direct_subscription_frames(&UPDATES);
    for workers in [1usize, 2, 4] {
        let fleet = spawn_fleet(workers, "auto");
        let mut client = Client::connect(fleet.router_addr).expect("connect router");
        let ack = table(client.subscribe(SUB_SQL).expect("subscribe"));
        assert_eq!(ack, want_ack, "workers={workers}");
        let id = ack.stat("subscription").expect("sub id") as u64;
        for (script, want) in UPDATES.iter().zip(&want_frames) {
            table(client.update(script).expect("update"));
            let mut frames = client.drain_notifications();
            assert_eq!(frames.len(), 1, "workers={workers} script={script}");
            assert_eq!(&frames.remove(0), want, "workers={workers} script={script}");
        }
        table(client.unsubscribe(id).expect("unsubscribe"));
        table(
            client
                .update("INSERT EDGE (9, 70)")
                .expect("post-unsubscribe update"),
        );
        assert!(
            client.drain_notifications().is_empty(),
            "no frames after unsubscribe"
        );
        fleet.stop();
    }
}

/// Killing a worker that carries subscription legs must not lose the
/// subscription: the router re-homes the dead shard onto a survivor and
/// keeps pushing frames identical to a direct server's.
#[test]
fn subscriber_survives_a_worker_killed_mid_push() {
    let (_, want_frames) = direct_subscription_frames(&UPDATES);
    let fleet = spawn_fleet(2, "auto");
    let mut client = Client::connect(fleet.router_addr).expect("connect router");
    table(client.subscribe(SUB_SQL).expect("subscribe"));
    table(client.update(UPDATES[0]).expect("update 1"));
    let mut frames = client.drain_notifications();
    assert_eq!(frames.len(), 1);
    assert_eq!(&frames.remove(0), &want_frames[0]);

    // Kill worker 0 mid-subscription. The router notices on its next
    // touch of the dead connection (idle poll or update broadcast),
    // re-subscribes shard 0/2 on the survivor, and emits a coalesced
    // catch-up frame covering whatever the client has not seen — here
    // nothing has changed since generation 1, so any catch-up frame is
    // an empty re-acknowledgment.
    fleet.worker_handles[0].shutdown();
    std::thread::sleep(Duration::from_millis(400));
    while let Some(f) = client
        .poll_notification(Duration::from_millis(100))
        .expect("poll catch-up")
    {
        assert!(
            f.rows.is_empty() && f.generation <= 1,
            "catch-up must not invent rows: {f:?}"
        );
    }

    // Updates keep flowing, frames stay byte-identical to direct.
    for (script, want) in UPDATES[1..].iter().zip(&want_frames[1..]) {
        table(client.update(script).expect("update after kill"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = client.drain_notifications();
        while got.is_empty() && std::time::Instant::now() < deadline {
            if let Some(f) = client
                .poll_notification(Duration::from_millis(50))
                .expect("poll")
            {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 1, "script={script}");
        assert_eq!(&got.remove(0), want, "script={script}");
    }

    let stats = client.stats().expect("router stats");
    assert!(
        stats.stat("router_legs_recovered").unwrap_or(0) >= 1,
        "recovery must be counted"
    );
    assert_eq!(stats.stat("router_subscriptions_created"), Some(1));
    fleet.stop();
}
