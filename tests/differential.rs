//! Property-based differential testing: every optimized census algorithm
//! must agree with the ND-BAS extract-and-match oracle on arbitrary
//! graphs, patterns, and radii.

use egocensus::census::{run_census_with, Algorithm, CensusSpec, Clustering, PtConfig, PtOrdering};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

/// An arbitrary undirected labeled graph from an edge-probability matrix
/// seedable by proptest.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..24, any::<u64>(), 1u16..4).prop_map(|(n, seed, labels)| {
        // Deterministic pseudo-random edges from the seed (splitmix-style),
        // density ~25%.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % labels as u64) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 4 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN n1 { ?A; }").unwrap(),
        Pattern::parse("PATTERN e { ?A-?B; }").unwrap(),
        Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap(),
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap(),
        Pattern::parse("PATTERN open { ?A-?B; ?B-?C; ?A!-?C; }").unwrap(),
        Pattern::parse("PATTERN lt { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; }").unwrap(),
        Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_match_nd_bas(g in arb_graph(), k in 0u32..4, pi in 0usize..7) {
        let pats = patterns();
        let p = &pats[pi];
        let spec = CensusSpec::single(p, k);
        let oracle = run_census_with(&g, &spec, Algorithm::NdBaseline, &PtConfig::default())
            .unwrap();
        let configs = [
            (Algorithm::NdPivot, PtConfig::default()),
            (Algorithm::NdDiff, PtConfig::default()),
            (Algorithm::PtBaseline, PtConfig::default()),
            (Algorithm::PtOpt, PtConfig::default()),
            (
                Algorithm::PtOpt,
                PtConfig { num_centers: 0, clustering: Clustering::None, ..PtConfig::default() },
            ),
            (
                Algorithm::PtOpt,
                PtConfig { clustering: Clustering::Random(3), ..PtConfig::default() },
            ),
            (
                Algorithm::PtRandom,
                PtConfig { ordering: PtOrdering::Random, ..PtConfig::default() },
            ),
            (
                Algorithm::PtOpt,
                PtConfig { use_distance_shortcuts: false, ..PtConfig::default() },
            ),
            (Algorithm::Auto, PtConfig::default()),
        ];
        for (algo, cfg) in configs {
            let got = run_census_with(&g, &spec, algo, &cfg).unwrap();
            for n in g.node_ids() {
                prop_assert_eq!(
                    got.get(n),
                    oracle.get(n),
                    "algo={:?} pattern={} k={} node={:?}",
                    algo, p.name(), k, n
                );
            }
        }
    }

    #[test]
    fn focal_subsets_consistent(g in arb_graph(), k in 0u32..3) {
        // Counts restricted to a focal subset equal the all-nodes counts on
        // that subset.
        let pats = patterns();
        let p = &pats[3]; // triangle
        let all = run_census_with(
            &g,
            &CensusSpec::single(p, k),
            Algorithm::NdPivot,
            &PtConfig::default(),
        )
        .unwrap();
        let subset: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
        let spec = CensusSpec::single(p, k)
            .with_focal(egocensus::census::FocalNodes::Set(subset.clone()));
        for algo in [Algorithm::NdPivot, Algorithm::PtOpt, Algorithm::NdDiff] {
            let got = run_census_with(&g, &spec, algo, &PtConfig::default()).unwrap();
            for &n in &subset {
                prop_assert_eq!(got.get(n), all.get(n), "algo={:?} node={:?}", algo, n);
            }
        }
    }

    #[test]
    fn counts_monotone_in_k(g in arb_graph(), pi in 0usize..7) {
        // A larger radius can only see more matches.
        let pats = patterns();
        let p = &pats[pi];
        let mut prev: Option<Vec<u64>> = None;
        for k in 0..4u32 {
            let cv = run_census_with(
                &g,
                &CensusSpec::single(p, k),
                Algorithm::NdPivot,
                &PtConfig::default(),
            )
            .unwrap();
            let counts: Vec<u64> = g.node_ids().map(|n| cv.get(n)).collect();
            if let Some(prev) = &prev {
                for (a, b) in prev.iter().zip(&counts) {
                    prop_assert!(b >= a, "count decreased as k grew");
                }
            }
            prev = Some(counts);
        }
    }

    #[test]
    fn large_k_equals_component_total(g in arb_graph()) {
        // With k >= diameter, every node of a connected component counts
        // every match inside that component.
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let k = g.num_nodes() as u32; // >= any diameter
        let cv = run_census_with(
            &g,
            &CensusSpec::single(&p, k),
            Algorithm::NdPivot,
            &PtConfig::default(),
        )
        .unwrap();
        let oracle = run_census_with(
            &g,
            &CensusSpec::single(&p, k),
            Algorithm::NdBaseline,
            &PtConfig::default(),
        )
        .unwrap();
        for n in g.node_ids() {
            prop_assert_eq!(cv.get(n), oracle.get(n));
        }
    }
}
