//! Property-based tests for the pairwise (intersection/union) census
//! algorithms of Appendix B, against a brute-force oracle.

use egocensus::census::pairwise::{
    brute_force_pair, run_pair_census, PairCensusSpec, PairKind, PairSelector,
};
use egocensus::census::Algorithm;
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..16, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 2) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN n { ?A; }").unwrap(),
        Pattern::parse("PATTERN e { ?A-?B; }").unwrap(),
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap(),
        Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pairwise_algorithms_match_brute_force(
        g in arb_graph(),
        pi in 0usize..4,
        k in 1u32..3,
        union in any::<bool>(),
    ) {
        let pats = patterns();
        let p = &pats[pi];
        let kind = if union { PairKind::Union } else { PairKind::Intersection };
        let spec = match kind {
            PairKind::Intersection => PairCensusSpec::intersection(p, k, PairSelector::AllPairs),
            PairKind::Union => PairCensusSpec::union(p, k, PairSelector::AllPairs),
        };
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
        ] {
            let counts = run_pair_census(&g, &spec, algo).unwrap();
            for a in g.node_ids() {
                for b in g.node_ids() {
                    if b <= a {
                        continue;
                    }
                    let want = brute_force_pair(&g, p, k, kind, a, b);
                    prop_assert_eq!(
                        counts.get(a, b),
                        want,
                        "{:?} {:?} k={} pair=({},{})",
                        algo, kind, k, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn selector_restriction_is_a_projection(g in arb_graph(), k in 1u32..3) {
        // Counts under a restricted selector match the AllPairs counts on
        // the selected pairs.
        let pats = patterns();
        let p = &pats[2]; // triangle
        let all = run_pair_census(
            &g,
            &PairCensusSpec::intersection(p, k, PairSelector::AllPairs),
            Algorithm::NdPivot,
        )
        .unwrap();
        let members: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
        let among = run_pair_census(
            &g,
            &PairCensusSpec::intersection(p, k, PairSelector::Among(members.clone())),
            Algorithm::PtOpt,
        )
        .unwrap();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                prop_assert_eq!(among.get(a, b), all.get(a, b), "pair ({},{})", a, b);
            }
        }
    }

    #[test]
    fn intersection_bounded_by_union(g in arb_graph(), k in 1u32..3, pi in 0usize..4) {
        let pats = patterns();
        let p = &pats[pi];
        let inter = run_pair_census(
            &g,
            &PairCensusSpec::intersection(p, k, PairSelector::AllPairs),
            Algorithm::NdPivot,
        )
        .unwrap();
        let uni = run_pair_census(
            &g,
            &PairCensusSpec::union(p, k, PairSelector::AllPairs),
            Algorithm::NdPivot,
        )
        .unwrap();
        for a in g.node_ids() {
            for b in g.node_ids() {
                if b <= a {
                    continue;
                }
                prop_assert!(inter.get(a, b) <= uni.get(a, b));
            }
        }
    }
}
