//! End-to-end tests for the four example queries of Table I.

use egocensus::graph::{GraphBuilder, Label, NodeId};
use egocensus::query::{QueryEngine, Value};

/// Two triangles sharing node 2, chain 4-5-6 (undirected).
fn undirected_fixture() -> egocensus::graph::Graph {
    let mut b = GraphBuilder::undirected();
    b.add_nodes(7, Label(0));
    for (x, y) in [
        (0u32, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (3, 4),
        (2, 4),
        (4, 5),
        (5, 6),
    ] {
        b.add_edge(NodeId(x), NodeId(y));
    }
    b.build()
}

#[test]
fn row1_single_node_count() {
    // SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes
    // counts the size of each 2-hop neighborhood (including the ego).
    let g = undirected_fixture();
    let mut e = QueryEngine::new(&g);
    e.catalog_mut().define("PATTERN single_node {?A;}").unwrap();
    let t = e
        .execute("SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes")
        .unwrap();
    // |N_2(0)| = {0,1,2,3,4} = 5; |N_2(6)| = {4,5,6} = 3.
    assert_eq!(t.rows()[0][1], Value::Int(5));
    assert_eq!(t.rows()[6][1], Value::Int(3));
}

#[test]
fn row2_single_edge_intersection() {
    // SELECT n1.ID, n2.ID, COUNTP(single_edge,
    //        SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
    // FROM nodes AS n1, nodes AS n2
    let g = undirected_fixture();
    let mut e = QueryEngine::new(&g);
    e.catalog_mut()
        .define("PATTERN single_edge {?A-?B;}")
        .unwrap();
    let t = e
        .execute(
            "SELECT n1.ID, n2.ID, \
             COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
             FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 3",
        )
        .unwrap();
    assert_eq!(t.num_rows(), 1);
    // N_1(0) = {0,1,2}, N_1(3) = {2,3,4}: intersection {2} has no edges.
    assert_eq!(t.rows()[0][2], Value::Int(0));

    let t2 = e
        .execute(
            "SELECT n1.ID, n2.ID, \
             COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
             FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 1",
        )
        .unwrap();
    // N_1(0) ∩ N_1(1) = {0,1,2}: edges 0-1, 1-2, 0-2.
    assert_eq!(t2.rows()[0][2], Value::Int(3));
}

#[test]
fn row3_square_census() {
    // A 4-cycle 0-1-2-3 with a tail 3-4.
    let mut b = GraphBuilder::undirected();
    b.add_nodes(5, Label(0));
    for (x, y) in [(0u32, 1), (1, 2), (2, 3), (3, 0), (3, 4)] {
        b.add_edge(NodeId(x), NodeId(y));
    }
    let g = b.build();
    let mut e = QueryEngine::new(&g);
    e.catalog_mut()
        .define("PATTERN square { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }")
        .unwrap();
    let t = e
        .execute("SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes")
        .unwrap();
    // Every cycle member sees the square within 2 hops; node 4 does too
    // (all square nodes are within 2 hops of it... check: d(4,1) = 3).
    assert_eq!(t.rows()[0][1], Value::Int(1));
    assert_eq!(t.rows()[3][1], Value::Int(1));
    assert_eq!(t.rows()[4][1], Value::Int(0)); // node 1 is 3 hops away
}

#[test]
fn row4_coordinator_triad() {
    // Directed org graph: 0 -> 1 -> 2 (all label 1, open) is a coordinator
    // triad for node 1; 3 -> 4 -> 5 has mixed labels; 6 -> 7 -> 8 closed.
    let mut b = GraphBuilder::directed();
    for label in [1u16, 1, 1, 1, 2, 1, 1, 1, 1] {
        b.add_node(Label(label));
    }
    for (x, y) in [(0u32, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8), (6, 8)] {
        b.add_edge(NodeId(x), NodeId(y));
    }
    let g = b.build();
    let mut e = QueryEngine::new(&g);
    e.catalog_mut()
        .define(
            "PATTERN triad {
                ?A->?B; ?B->?C; ?A!->?C;
                [?A.LABEL=?B.LABEL];
                [?B.LABEL=?C.LABEL];
                SUBPATTERN coordinator {?B;}
            }",
        )
        .unwrap();
    let t = e
        .execute("SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes")
        .unwrap();
    let counts: Vec<i64> = t.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
    // Node 1 coordinates 0->1->2. Node 4 has mixed labels; node 7's triad
    // is closed by 6->8. Everything else is zero.
    assert_eq!(counts, vec![0, 1, 0, 0, 0, 0, 0, 0, 0]);
}
