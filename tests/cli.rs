//! End-to-end tests for the `egocensus` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo puts integration-test binaries under target/<profile>/deps;
    // the CLI lives one level up.
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push(format!("egocensus{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn egocensus");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tempfile(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("egocensus-cli-test-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn generate_stats_query_roundtrip() {
    let path = tempfile("g1.txt");
    let (ok, out, err) = run(&[
        "generate", "--model", "ba", "--nodes", "500", "--param", "3", "--labels", "4", "--seed",
        "7", "-o", &path,
    ]);
    assert!(ok, "generate failed: {err}");
    assert!(out.contains("500 nodes"), "{out}");

    let (ok, out, _) = run(&["stats", &path]);
    assert!(ok);
    assert!(out.contains("nodes:       500"), "{out}");
    assert!(out.contains("labels:      4"));

    let (ok, out, err) = run(&[
        "query",
        &path,
        "--define",
        "PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }",
        "--csv",
        "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY 2 DESC LIMIT 5",
    ]);
    assert!(ok, "query failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 6, "header + 5 rows: {out}");
    assert!(lines[0].starts_with("ID,"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn match_subcommand_counts_triangles() {
    let path = tempfile("g2.txt");
    run(&[
        "generate", "--model", "ws", "--nodes", "200", "--param", "3", "--seed", "5", "-o", &path,
    ]);
    let (ok, out, err) = run(&[
        "match",
        &path,
        "--pattern",
        "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("distinct matches"), "{out}");

    // CN and GQL agree on the reported count.
    let (_, out_gql, _) = run(&[
        "match",
        &path,
        "--pattern",
        "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
        "--matcher",
        "gql",
    ]);
    let count = |s: &str| {
        s.split_whitespace()
            .next()
            .and_then(|w| w.parse::<u64>().ok())
            .expect("count prefix")
    };
    assert_eq!(count(&out), count(&out_gql));
    std::fs::remove_file(&path).ok();
}

#[test]
fn topk_subcommand() {
    let path = tempfile("g3.txt");
    run(&[
        "generate", "--model", "ba", "--nodes", "300", "--param", "4", "--seed", "3", "-o", &path,
    ]);
    let (ok, out, err) = run(&[
        "topk",
        &path,
        "--pattern",
        "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
        "--k",
        "1",
        "--top",
        "3",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("top 3"), "{out}");
    assert!(out.contains("exactly evaluated"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn edge_list_files_auto_detected() {
    let path = tempfile("snap.txt");
    std::fs::write(&path, "# comment\n0 1\n1 2\n2 0\n").unwrap();
    let (ok, out, err) = run(&["stats", &path]);
    assert!(ok, "{err}");
    assert!(out.contains("nodes:       3"), "{out}");
    assert!(out.contains("triangles:   1"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn errors_are_reported() {
    let (ok, _, err) = run(&["stats", "/nonexistent/graph.txt"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");

    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"), "{err}");

    let path = tempfile("g4.txt");
    run(&["generate", "--nodes", "50", "--param", "2", "-o", &path]);
    let (ok, _, err) = run(&["query", &path, "SELECT BROKEN"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");
    std::fs::remove_file(&path).ok();
}
