//! End-to-end loopback tests for the `ego-server` network front end:
//! an in-process [`Server`] on an ephemeral port, exercised by real TCP
//! clients, checked against direct [`QueryEngine`] execution.

use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::graph::Graph;
use egocensus::query::{Catalog, QueryEngine, Value};
use egocensus::server::{Client, Response, Server, ServerConfig, ShutdownHandle, TableData};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

const SEED: u64 = 0xC0FFEE;

fn test_graph() -> Graph {
    let mut r = rng(99);
    let g = barabasi_albert(250, 3, &mut r);
    assign_random_labels(&g, 3, &mut r)
}

/// Spawn a server over a fresh copy of the test graph; returns the
/// address, a shutdown handle, and the serving thread to join.
fn spawn_server(config: ServerConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<()>) {
    let graph = Arc::new(test_graph());
    let server = Server::bind(
        ("127.0.0.1", 0),
        graph,
        Arc::new(Catalog::with_builtins()),
        config,
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn config() -> ServerConfig {
    ServerConfig {
        pool_threads: 4,
        exec_threads: 1,
        seed: SEED,
        ..ServerConfig::default()
    }
}

/// Run `sql` directly against the same graph the server loaded.
fn direct(sql: &str) -> TableData {
    let g = test_graph();
    let mut engine = QueryEngine::with_builtins(&g);
    engine.set_threads(1);
    engine.set_seed(SEED);
    TableData::from_table(&engine.execute(sql).expect("direct execution"))
}

fn expect_table(resp: Response) -> TableData {
    match resp {
        Response::Table(t) => t,
        Response::Error { message } => panic!("unexpected error response: {message}"),
        Response::Notify(f) => panic!("unexpected notify frame: {f:?}"),
    }
}

const QUERIES: [&str; 4] = [
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 2)) FROM nodes ORDER BY 2 DESC LIMIT 10",
    "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 50",
    "SELECT n1.ID, n2.ID, COUNTP(clq3_unlb, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
     FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 3",
];

#[test]
fn concurrent_clients_match_direct_execution() {
    let (addr, handle, thread) = spawn_server(config());

    // Four clients issue different queries concurrently; each result
    // must equal the direct single-threaded QueryEngine result.
    let workers: Vec<_> = QUERIES
        .iter()
        .map(|&sql| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let served = expect_table(client.query(sql).expect("query"));
                (sql, served)
            })
        })
        .collect();
    for w in workers {
        let (sql, served) = w.join().expect("client thread");
        assert_eq!(served, direct(sql), "server disagrees with direct: {sql}");
    }

    handle.shutdown();
    thread.join().expect("server thread");
}

#[test]
fn repeat_query_is_served_from_cache_byte_identically() {
    let (addr, handle, thread) = spawn_server(config());
    let mut client = Client::connect(addr).expect("connect");

    let sql = QUERIES[1];
    let raw = format!(
        r#"{{"op":"query","sql":"{}"}}"#,
        sql.replace('\\', "\\\\").replace('"', "\\\"")
    );
    let cold = client.send_raw(&raw).expect("cold query");
    let stats_after_cold = client.stats().expect("stats");
    assert_eq!(stats_after_cold.stat("cache_hits"), Some(0));
    assert_eq!(stats_after_cold.stat("cache_misses"), Some(1));
    assert_eq!(stats_after_cold.stat("queries_executed"), Some(1));

    // Same statement again — and once more from a *different* connection
    // with a different spelling: both must come back byte-identical
    // without executing any traversal work.
    let warm = client.send_raw(&raw).expect("warm query");
    assert_eq!(cold, warm, "cache hit must be byte-identical");

    let respelled = sql.replace("SELECT", "select ").replace("FROM", "from");
    let mut other = Client::connect(addr).expect("second connect");
    let warm2 = other.send_raw(&format!(
        r#"{{"op":"query","sql":"{}"}}"#,
        respelled.replace('"', "\\\"")
    ));
    assert_eq!(cold, warm2.expect("respelled query"));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.stat("cache_hits"), Some(2));
    assert_eq!(stats.stat("cache_misses"), Some(1));
    assert_eq!(
        stats.stat("queries_executed"),
        Some(1),
        "cache hits must not re-execute the census"
    );

    handle.shutdown();
    thread.join().expect("server thread");
}

#[test]
fn concurrent_repeats_after_warm_all_hit_the_cache() {
    let (addr, handle, thread) = spawn_server(config());
    let sql = QUERIES[0];

    // Warm sequentially so the concurrent round is deterministic.
    let mut warmup = Client::connect(addr).expect("connect");
    let expected = expect_table(warmup.query(sql).expect("warm query"));

    let n = 6;
    let workers: Vec<_> = (0..n)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                expect_table(client.query(sql).expect("query"))
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("client thread"), expected);
    }

    let stats = warmup.stats().expect("stats");
    assert_eq!(stats.stat("cache_hits"), Some(n as i64));
    assert_eq!(stats.stat("cache_misses"), Some(1));
    assert_eq!(stats.stat("queries_executed"), Some(1));

    handle.shutdown();
    thread.join().expect("server thread");
}

#[test]
fn malformed_requests_get_errors_without_killing_the_connection() {
    let (addr, handle, thread) = spawn_server(config());
    let mut client = Client::connect(addr).expect("connect");

    for bad in [
        "this is not json",
        r#"{"op":"frobnicate"}"#,
        r#"{"sql":"SELECT ID FROM nodes"}"#,
        r#"{"op":"query"}"#,
        r#"{"op":"query","sql":"SELECT FROM WHERE"}"#,
        r#"{"op":"define","pattern":"PATTERN broken {"}"#,
    ] {
        match client.request_raw_as_response(bad) {
            Response::Error { .. } => {}
            Response::Table(_) => panic!("expected an error for: {bad}"),
            Response::Notify(_) => unreachable!("request() filters notify frames"),
        }
    }

    // The connection survived all of it.
    let pong = expect_table(client.ping().expect("ping after errors"));
    assert_eq!(pong.columns, vec!["reply".to_string()]);

    handle.shutdown();
    thread.join().expect("server thread");
}

#[test]
fn session_defines_are_isolated_and_duplicates_rejected() {
    let (addr, handle, thread) = spawn_server(config());

    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");

    let dsl = "PATTERN mine { ?A-?B; ?B-?C; }";
    expect_table(a.define(dsl).expect("define"));

    // Redefining in the same session is an error...
    match a.define(dsl).expect("duplicate define") {
        Response::Error { message } => {
            assert!(
                message.contains("already defined"),
                "unexpected message: {message}"
            );
        }
        Response::Table(_) => panic!("duplicate define must be rejected"),
        Response::Notify(_) => unreachable!("request() filters notify frames"),
    }
    // ...as is shadowing a shared builtin...
    match a.define("PATTERN clq3_unlb { ?A-?B; }").expect("shadow") {
        Response::Error { message } => assert!(message.contains("already defined")),
        Response::Table(_) => panic!("shadowing a builtin must be rejected"),
        Response::Notify(_) => unreachable!("request() filters notify frames"),
    }
    // ...but session B never saw A's pattern.
    match b
        .query("SELECT ID, COUNTP(mine, SUBGRAPH(ID, 1)) FROM nodes LIMIT 1")
        .expect("query undefined")
    {
        Response::Error { .. } => {}
        Response::Table(_) => panic!("B must not see A's session patterns"),
        Response::Notify(_) => unreachable!("request() filters notify frames"),
    }
    expect_table(b.define(dsl).expect("define in b"));

    handle.shutdown();
    thread.join().expect("server thread");
}

#[test]
fn shutdown_request_over_the_wire_stops_the_server() {
    let (addr, _handle, thread) = spawn_server(config());
    let mut client = Client::connect(addr).expect("connect");
    expect_table(client.shutdown().expect("shutdown request"));
    thread
        .join()
        .expect("server thread joins after wire shutdown");
}

trait RawResponse {
    fn request_raw_as_response(&mut self, line: &str) -> Response;
}

impl RawResponse for Client {
    fn request_raw_as_response(&mut self, line: &str) -> Response {
        let raw = self.send_raw(line).expect("raw round-trip");
        Response::decode(&raw).expect("decodable response")
    }
}

// --- continuous subscriptions over the wire ---

const SUB_SQL: &str = "SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes";
const COUNT_SQL: &str = "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes";

/// `(focal, column, old, new)` rows expected from two count tables.
fn expect_rows(before: &TableData, after: &TableData, column: &str) -> Vec<Vec<Value>> {
    use std::collections::BTreeMap;
    let to_map = |t: &TableData| -> BTreeMap<i64, i64> {
        t.rows
            .iter()
            .map(|r| {
                let id = r[0].as_int().expect("focal id");
                let count = r[1].as_int().expect("count");
                (id, count)
            })
            .collect()
    };
    let (b, a) = (to_map(before), to_map(after));
    b.iter()
        .filter(|(id, old)| a[id] != **old)
        .map(|(id, old)| {
            vec![
                Value::Int(*id),
                Value::Str(column.to_string()),
                Value::Int(*old),
                Value::Int(a[id]),
            ]
        })
        .collect()
}

/// A subscriber whose connection drops can reconnect, re-subscribe, and
/// keep receiving correct deltas: the new baseline is the current graph,
/// so pushed `old` values are exactly what a fresh query just returned.
#[test]
fn subscriber_survives_reconnect_with_fresh_baseline() {
    let (addr, handle, thread) = spawn_server(config());

    // First incarnation: subscribe, mutate, receive the delta frame.
    let mut a = Client::connect(addr).expect("connect a");
    let q0 = expect_table(a.query(COUNT_SQL).expect("query before"));
    let ack = expect_table(a.subscribe(SUB_SQL).expect("subscribe"));
    assert_eq!(ack.stat("generation"), Some(0));
    expect_table(
        a.update("INSERT EDGE (0, 57); DELETE EDGE (0, 1)")
            .expect("update 1"),
    );
    let q1 = expect_table(a.query(COUNT_SQL).expect("query after 1"));
    let frames = a.drain_notifications();
    assert_eq!(frames.len(), 1, "one frame per update");
    assert_eq!(frames[0].generation, 1);
    let column = frames[0].columns[0].clone();
    assert_eq!(frames[0].rows, expect_rows(&q0, &q1, &column));

    // Drop the connection: the server-side session unsubscribes on its
    // way out, so the next update evaluates nothing for it.
    drop(a);

    // Second incarnation: re-subscribe at the current generation and
    // receive deltas relative to the *current* graph, not the original.
    let mut b = Client::connect(addr).expect("connect b");
    let ack2 = expect_table(b.subscribe(SUB_SQL).expect("re-subscribe"));
    assert_eq!(ack2.stat("generation"), Some(1));
    expect_table(b.update("INSERT EDGE (3, 99)").expect("update 2"));
    let q2 = expect_table(b.query(COUNT_SQL).expect("query after 2"));
    let frames = b.drain_notifications();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].generation, 2);
    assert_eq!(frames[0].rows, expect_rows(&q1, &q2, &column));

    // The dropped subscription really is gone: one live, two created.
    let stats = b.stats().expect("stats");
    assert_eq!(stats.stat("continuous_subscriptions"), Some(1));
    assert_eq!(stats.stat("continuous_created"), Some(2));

    handle.shutdown();
    thread.join().expect("server thread");
}
