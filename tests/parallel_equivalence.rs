//! Property-based equivalence tests for the unified parallel execution
//! layer: for every algorithm family, query shape (COUNTP/COUNTSP), focal
//! selection, and thread count, the parallel path must produce counts
//! bit-identical to the sequential path on random graphs.

use egocensus::census::pairwise::{run_pair_census_with, PairCensusSpec, PairSelector};
use egocensus::census::{
    run_census_exec, run_census_with, run_pair_census_exec, Algorithm, CensusSpec, ExecConfig,
    FocalNodes, PtConfig,
};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 2) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

/// COUNTP patterns plus one with a subpattern for COUNTSP.
fn countp_patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN e { ?A-?B; }").unwrap(),
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap(),
        Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap(),
    ]
}

fn countsp_pattern() -> Pattern {
    Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap()
}

const ALL_ALGOS: [Algorithm; 7] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

/// COUNTSP is rejected by ND-BAS and ND-DIFF.
const COUNTSP_ALGOS: [Algorithm; 5] = [
    Algorithm::NdPivot,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn countp_parallel_equals_sequential(
        g in arb_graph(),
        pi in 0usize..3,
        k in 1u32..3,
        explicit_focal in any::<bool>(),
    ) {
        let pats = countp_patterns();
        let p = &pats[pi];
        let mut spec = CensusSpec::single(p, k);
        if explicit_focal {
            let set: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
            spec = spec.with_focal(FocalNodes::Set(set));
        }
        let config = PtConfig::default();
        for algo in ALL_ALGOS {
            let seq = run_census_with(&g, &spec, algo, &config).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = run_census_exec(
                    &g, &spec, algo, &config, &ExecConfig::with_threads(threads),
                ).unwrap();
                prop_assert_eq!(
                    &par, &seq,
                    "{:?} threads={} focal={}", algo, threads, explicit_focal
                );
            }
        }
    }

    #[test]
    fn countsp_parallel_equals_sequential(
        g in arb_graph(),
        k in 0u32..3,
        explicit_focal in any::<bool>(),
    ) {
        let p = countsp_pattern();
        let mut spec = CensusSpec::single(&p, k).with_subpattern("one");
        if explicit_focal {
            let set: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 3 != 0).collect();
            spec = spec.with_focal(FocalNodes::Set(set));
        }
        let config = PtConfig::default();
        for algo in COUNTSP_ALGOS {
            let seq = run_census_with(&g, &spec, algo, &config).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = run_census_exec(
                    &g, &spec, algo, &config, &ExecConfig::with_threads(threads),
                ).unwrap();
                prop_assert_eq!(
                    &par, &seq,
                    "{:?} threads={} focal={}", algo, threads, explicit_focal
                );
            }
        }
    }

    #[test]
    fn pairwise_parallel_equals_sequential(
        g in arb_graph(),
        k in 1u32..3,
        union in any::<bool>(),
    ) {
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec = if union {
            PairCensusSpec::union(&p, k, PairSelector::AllPairs)
        } else {
            PairCensusSpec::intersection(&p, k, PairSelector::AllPairs)
        };
        let config = PtConfig::default();
        for algo in [Algorithm::NdBaseline, Algorithm::NdPivot, Algorithm::PtOpt] {
            let seq = run_pair_census_with(&g, &spec, algo, &config).unwrap();
            for threads in [2usize, 4, 8] {
                let par = run_pair_census_exec(
                    &g, &spec, algo, &config, &ExecConfig::with_threads(threads),
                ).unwrap();
                prop_assert_eq!(par.len(), seq.len(), "{:?} threads={}", algo, threads);
                for (a, b, c) in seq.iter() {
                    prop_assert_eq!(
                        par.get(a, b), c,
                        "{:?} threads={} pair=({},{})", algo, threads, a, b
                    );
                }
            }
        }
    }
}
