//! End-to-end pipeline tests: generate → serialize → reload → query.

use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::graph::io;
use egocensus::pattern::builtin;
use egocensus::query::{QueryEngine, Value};

#[test]
fn generate_serialize_reload_census() {
    let mut r = rng(31);
    let g = barabasi_albert(400, 4, &mut r);
    let g = assign_random_labels(&g, 4, &mut r);

    // Roundtrip through the text format.
    let text = io::to_string(&g);
    let g2 = io::from_str(&text).expect("reload");
    assert_eq!(g2.num_nodes(), g.num_nodes());
    assert_eq!(g2.num_edges(), g.num_edges());

    // The census result is identical on the reloaded graph.
    let p = builtin::clq3();
    let spec = CensusSpec::single(&p, 2);
    let a = run_census(&g, &spec, Algorithm::PtOpt).unwrap();
    let b = run_census(&g2, &spec, Algorithm::PtOpt).unwrap();
    for n in g.node_ids() {
        assert_eq!(a.get(n), b.get(n));
    }
}

#[test]
fn sql_on_generated_graph_matches_api() {
    let mut r = rng(77);
    let g = barabasi_albert(300, 3, &mut r);

    let mut engine = QueryEngine::new(&g);
    engine
        .catalog_mut()
        .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
        .unwrap();
    let table = engine
        .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
        .unwrap();

    let tri = egocensus::pattern::Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
    let api = run_census(&g, &CensusSpec::single(&tri, 1), Algorithm::Auto).unwrap();
    assert_eq!(table.num_rows(), g.num_nodes());
    for row in table.rows() {
        let id = row[0].as_int().unwrap() as u32;
        assert_eq!(
            row[1],
            Value::Int(api.get(egocensus::graph::NodeId(id)) as i64)
        );
    }
}

#[test]
fn builtin_catalog_queries_run() {
    let mut r = rng(13);
    let g = barabasi_albert(200, 4, &mut r);
    let g = assign_random_labels(&g, 4, &mut r);
    let engine = QueryEngine::with_builtins(&g);
    for pattern in ["clq3_unlb", "clq3", "sqr", "path3", "star3", "single_edge"] {
        let sql = format!("SELECT ID, COUNTP({pattern}, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 20");
        let t = engine
            .execute(&sql)
            .unwrap_or_else(|e| panic!("{pattern}: {e}"));
        assert_eq!(t.num_rows(), 20, "{pattern}");
    }
}

#[test]
fn parallel_census_agrees_end_to_end() {
    let mut r = rng(99);
    let g = barabasi_albert(500, 4, &mut r);
    let p = builtin::clq3_unlabeled();
    let spec = CensusSpec::single(&p, 2);
    let matches = egocensus::census::global_matches(&g, &p);
    let seq = egocensus::census::nd_pivot::run(&g, &spec, &matches).unwrap();
    let par = egocensus::census::parallel::run_nd_pivot_parallel(&g, &spec, &matches, 4).unwrap();
    for n in g.node_ids() {
        assert_eq!(seq.get(n), par.get(n));
    }
}
