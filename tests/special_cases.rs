//! Section II's claim that classic ego-centric measures are special cases
//! of pattern census, verified against direct implementations:
//!
//! * degree = single-node count in the 1-hop neighborhood, minus the ego;
//! * local triangle count = triangle census anchored on the ego;
//! * clustering coefficient derives from the two above;
//! * Jaccard coefficient = node counts over 1-hop intersection and union.

use egocensus::census::pairwise::{run_pair_census, PairCensusSpec, PairSelector};
use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::datagen::{barabasi_albert, rng};
use egocensus::graph::stats;
use egocensus::pattern::Pattern;

#[test]
fn degree_is_a_census() {
    let g = barabasi_albert(300, 3, &mut rng(5));
    let node = Pattern::parse("PATTERN n { ?A; }").unwrap();
    let counts = run_census(&g, &CensusSpec::single(&node, 1), Algorithm::NdPivot).unwrap();
    for n in g.node_ids() {
        // The 1-hop ball includes the ego itself.
        assert_eq!(counts.get(n) as usize, g.degree(n) + 1, "node {n:?}");
    }
}

#[test]
fn local_triangles_is_a_countsp_census() {
    let g = barabasi_albert(300, 4, &mut rng(6));
    let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN me {?A;} }").unwrap();
    let spec = CensusSpec::single(&tri, 0).with_subpattern("me");
    let counts = run_census(&g, &spec, Algorithm::NdPivot).unwrap();
    for n in g.node_ids() {
        assert_eq!(
            counts.get(n) as usize,
            stats::local_triangles(&g, n),
            "node {n:?}"
        );
    }
}

#[test]
fn clustering_coefficient_from_census() {
    let g = barabasi_albert(200, 4, &mut rng(7));
    let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN me {?A;} }").unwrap();
    let spec = CensusSpec::single(&tri, 0).with_subpattern("me");
    let tri_counts = run_census(&g, &spec, Algorithm::PtOpt).unwrap();
    for n in g.node_ids() {
        let d = g.degree(n);
        let cc = if d < 2 {
            0.0
        } else {
            tri_counts.get(n) as f64 / (d * (d - 1) / 2) as f64
        };
        assert!(
            (cc - stats::local_clustering(&g, n)).abs() < 1e-12,
            "node {n:?}: census {cc} vs direct {}",
            stats::local_clustering(&g, n)
        );
    }
}

#[test]
fn jaccard_from_pairwise_census() {
    let g = barabasi_albert(120, 3, &mut rng(8));
    let node = Pattern::parse("PATTERN n { ?A; }").unwrap();
    let inter = run_pair_census(
        &g,
        &PairCensusSpec::intersection(&node, 1, PairSelector::AllPairs),
        Algorithm::NdPivot,
    )
    .unwrap();
    let uni = run_pair_census(
        &g,
        &PairCensusSpec::union(&node, 1, PairSelector::AllPairs),
        Algorithm::NdPivot,
    )
    .unwrap();
    for a in g.node_ids() {
        for b in g.node_ids() {
            if b <= a {
                continue;
            }
            // The census counts closed balls (ego included); Jaccard uses
            // open neighborhoods. The closed-ball census of N1(a) ∩ N1(b)
            // equals |N(a) ∩ N(b)| plus each endpoint that lies in the
            // other's ball, so compare against the closed-ball formula.
            let ia: Vec<_> = {
                let mut v: Vec<_> = g.neighbors(a).to_vec();
                v.push(a);
                v.sort();
                v
            };
            let ib: Vec<_> = {
                let mut v: Vec<_> = g.neighbors(b).to_vec();
                v.push(b);
                v.sort();
                v
            };
            let inter_direct =
                egocensus::graph::neighborhood::intersect_sorted(&ia, &ib).len() as u64;
            let union_direct = ia.len() as u64 + ib.len() as u64 - inter_direct;
            assert_eq!(inter.get(a, b), inter_direct, "pair ({a},{b}) intersection");
            assert_eq!(uni.get(a, b), union_direct, "pair ({a},{b}) union");
        }
    }
}

#[test]
fn k_clustering_generalization_runs() {
    // The k-clustering-coefficient generalization (edges in k-hop balls):
    // just check it is monotone in k and consistent across algorithms.
    let g = barabasi_albert(150, 3, &mut rng(9));
    let edge = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
    let c1 = run_census(&g, &CensusSpec::single(&edge, 1), Algorithm::NdPivot).unwrap();
    let c2 = run_census(&g, &CensusSpec::single(&edge, 2), Algorithm::PtOpt).unwrap();
    let c2b = run_census(&g, &CensusSpec::single(&edge, 2), Algorithm::NdDiff).unwrap();
    for n in g.node_ids() {
        assert!(c2.get(n) >= c1.get(n));
        assert_eq!(c2.get(n), c2b.get(n));
    }
}
