//! Property-based tests for the future-work extensions: top-k census,
//! sampling approximation, and the pattern DSL printer round-trip.

use egocensus::census::{approx, global_matches, topk, CensusSpec};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::{to_dsl, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n, Label(0));
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn topk_matches_exhaustive(g in arb_graph(), k in 0u32..3, kr in 1usize..6) {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, k);
        let fast = topk::top_k_census(&g, &spec, &m, kr).unwrap();
        let slow = topk::top_k_exhaustive(&g, &spec, &m, kr).unwrap();
        prop_assert_eq!(fast.top, slow, "k={} kr={}", k, kr);
    }

    #[test]
    fn full_sample_approx_is_exact(g in arb_graph(), k in 0u32..3) {
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, k);
        let exact = egocensus::census::nd_pivot::run(&g, &spec, &m).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = approx::approx_census(&g, &spec, &m, m.len(), &mut rng).unwrap();
        for n in g.node_ids() {
            prop_assert!((est.get(n) - exact.get(n) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn approx_estimates_are_nonnegative_and_bounded(
        g in arb_graph(),
        sample_frac in 1usize..4,
        seed in any::<u64>(),
    ) {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let s = (m.len() / sample_frac).max(1).min(m.len().max(1));
        let mut rng = StdRng::seed_from_u64(seed);
        let est = approx::approx_census(&g, &spec, &m, s, &mut rng).unwrap();
        // Estimates cannot exceed |M| (every node's true count is <= |M|,
        // and the estimator scales a subset count by |M|/s <= |M|).
        for n in g.node_ids() {
            let e = est.get(n);
            prop_assert!(e >= 0.0);
            prop_assert!(e <= m.len() as f64 + 1e-9, "estimate {} > |M| {}", e, m.len());
        }
    }

    #[test]
    fn random_pattern_dsl_roundtrips(
        n_nodes in 1usize..6,
        edge_bits in any::<u32>(),
        direct_bits in any::<u32>(),
        neg_bit in any::<u32>(),
        label_bits in any::<u32>(),
    ) {
        // Construct a random small pattern programmatically...
        let mut b = Pattern::builder("rand");
        let names = ["A", "B", "C", "D", "E"];
        let nodes: Vec<_> = names.iter().take(n_nodes).map(|v| b.node(v)).collect();
        let mut bit = 0;
        for i in 0..n_nodes {
            for j in (i + 1)..n_nodes {
                let present = (edge_bits >> bit) & 1 == 1;
                let directed = (direct_bits >> bit) & 1 == 1;
                let negated = (neg_bit >> bit) & 1 == 1;
                bit += 1;
                if !present {
                    continue;
                }
                match (directed, negated) {
                    (false, false) => b.edge(nodes[i], nodes[j]),
                    (true, false) => b.directed_edge(nodes[i], nodes[j]),
                    (false, true) => b.negated_edge(nodes[i], nodes[j]),
                    (true, true) => b.negated_directed_edge(nodes[i], nodes[j]),
                };
            }
        }
        for (i, &v) in nodes.iter().enumerate() {
            if (label_bits >> i) & 1 == 1 {
                b.label(v, egocensus::graph::Label((i % 4) as u16));
            }
        }
        let p = b.build();

        // ...and require to_dsl -> parse to reproduce it exactly.
        let dsl = to_dsl(&p);
        let q = Pattern::parse(&dsl).unwrap();
        prop_assert_eq!(p.num_nodes(), q.num_nodes());
        for v in p.nodes() {
            prop_assert_eq!(p.var_name(v), q.var_name(v));
            prop_assert_eq!(p.label(v), q.label(v));
        }
        let norm = |p: &Pattern| {
            let mut pos: Vec<_> = p.positive_edges().iter().map(|e| (e.a, e.b, e.directed)).collect();
            pos.sort();
            let mut neg: Vec<_> = p.negative_edges().iter().map(|e| (e.a, e.b, e.directed)).collect();
            neg.sort();
            (pos, neg)
        };
        prop_assert_eq!(norm(&p), norm(&q));
    }
}
