//! Property-based equivalence for the batched census engine: evaluating
//! N patterns as one [`run_batch_exec`] call must produce counts
//! bit-identical to N sequential [`run_census_exec`] runs — for every
//! algorithm, batch size 1–4, random radii, random graphs, and both
//! threads=1 and threads=auto — while doing **no more** traversal work.

use egocensus::census::{
    run_batch, run_batch_exec, run_census_exec, run_census_exec_instrumented, Algorithm,
    BatchStage, CensusSpec, ExecConfig, FocalNodes, PtConfig,
};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 2) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::parse("PATTERN e { ?A-?B; }").unwrap(),
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap(),
        Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap(),
        Pattern::parse("PATTERN n { ?A; }").unwrap(),
    ]
}

const ALL_ALGOS: [Algorithm; 7] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: batched == sequential, bit for bit, for
    /// every algorithm, at one thread and at auto threads.
    #[test]
    fn batched_counts_equal_sequential(
        g in arb_graph(),
        nspecs in 1usize..5,
        ks in prop::collection::vec(0u32..4, 4..5),
        shift in 0usize..4,
        explicit_focal in any::<bool>(),
    ) {
        let pats = patterns();
        let config = PtConfig::default();
        let mut specs: Vec<CensusSpec<'_>> = Vec::new();
        for i in 0..nspecs {
            let mut s = CensusSpec::single(&pats[(i + shift) % pats.len()], ks[i]);
            if explicit_focal {
                let set: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
                s = s.with_focal(FocalNodes::Set(set));
            }
            specs.push(s);
        }
        for algo in ALL_ALGOS {
            for threads in [1usize, 0] {
                let exec = ExecConfig::with_threads(threads);
                let batch = run_batch_exec(&g, &specs, algo, &config, &exec, &[]).unwrap();
                for (i, spec) in specs.iter().enumerate() {
                    let seq = run_census_exec(&g, spec, algo, &config, &exec).unwrap();
                    prop_assert_eq!(
                        &batch.counts[i], &seq,
                        "{:?} threads={} spec {}", algo, threads, i
                    );
                }
            }
        }
    }

    /// The batch never does more neighborhood work than N sequential
    /// ND-PVOT runs (ND-PVOT only: the other families report different
    /// or zero traversal stats sequentially, so the comparison is not
    /// meaningful for them).
    #[test]
    fn batched_nd_pivot_never_visits_more(
        g in arb_graph(),
        nspecs in 1usize..5,
        ks in prop::collection::vec(1u32..4, 4..5),
    ) {
        let pats = patterns();
        let config = PtConfig::default();
        let specs: Vec<CensusSpec<'_>> = (0..nspecs)
            .map(|i| CensusSpec::single(&pats[i % pats.len()], ks[i]))
            .collect();
        let batch = run_batch(&g, &specs, Algorithm::NdPivot, &config).unwrap();
        let mut seq_nodes = 0u64;
        let mut seq_edges = 0u64;
        for spec in &specs {
            let (_, ts) = run_census_exec_instrumented(
                &g, spec, Algorithm::NdPivot, &config, &ExecConfig::sequential(),
            ).unwrap();
            seq_nodes += ts.nodes_expanded;
            seq_edges += ts.edges_traversed;
        }
        prop_assert!(
            batch.stats.nodes_expanded <= seq_nodes,
            "batch expanded {} > sequential {}", batch.stats.nodes_expanded, seq_nodes
        );
        prop_assert!(
            batch.stats.edges_traversed <= seq_edges,
            "batch traversed {} > sequential {}", batch.stats.edges_traversed, seq_edges
        );
        if nspecs > 1 {
            prop_assert!(batch.stats.nodes_expanded < seq_nodes,
                "a multi-spec batch must share sweeps");
        }
    }

    /// COUNTSP specs batch correctly through ND-PVOT and the PT family.
    #[test]
    fn batched_countsp_equals_sequential(
        g in arb_graph(),
        k1 in 0u32..3,
        k2 in 0u32..3,
    ) {
        let p = Pattern::parse(
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }"
        ).unwrap();
        let e = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let config = PtConfig::default();
        let specs = vec![
            CensusSpec::single(&p, k1).with_subpattern("one"),
            CensusSpec::single(&e, k2),
        ];
        for algo in [Algorithm::NdPivot, Algorithm::PtOpt, Algorithm::PtRandom, Algorithm::Auto] {
            let batch = run_batch(&g, &specs, algo, &config).unwrap();
            for (i, spec) in specs.iter().enumerate() {
                let seq = run_census_exec(
                    &g, spec, algo, &config, &ExecConfig::sequential(),
                ).unwrap();
                prop_assert_eq!(&batch.counts[i], &seq, "{:?} spec {}", algo, i);
            }
        }
    }
}

/// The acceptance-criteria scenario, deterministically: a 4-pattern
/// batch over the bundled two-triangle fixture does strictly fewer
/// neighborhood extractions than 4 sequential runs, with equal counts.
#[test]
fn four_pattern_batch_on_fixture_shares_one_sweep() {
    let mut b = GraphBuilder::undirected();
    b.add_nodes(7, Label(0));
    for (x, y) in [
        (0u32, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (3, 4),
        (2, 4),
        (4, 5),
        (5, 6),
    ] {
        b.add_edge(NodeId(x), NodeId(y));
    }
    let g = b.build();
    let pats = patterns();
    let config = PtConfig::default();
    let specs: Vec<CensusSpec<'_>> = pats.iter().map(|p| CensusSpec::single(p, 2)).collect();

    let batch = run_batch(&g, &specs, Algorithm::NdPivot, &config).unwrap();
    assert_eq!(
        batch.stages,
        vec![BatchStage::NdSweep {
            pivot: vec![0, 1, 2, 3],
            baseline: vec![],
            k_max: 2
        }]
    );

    let mut seq_nodes = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let (cv, ts) = run_census_exec_instrumented(
            &g,
            spec,
            Algorithm::NdPivot,
            &config,
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(batch.counts[i], cv, "spec {i}");
        seq_nodes += ts.nodes_expanded;
    }
    // One shared sweep: |V| extractions instead of 4·|V|.
    assert_eq!(batch.stats.nodes_expanded, g.num_nodes() as u64);
    assert_eq!(seq_nodes, 4 * g.num_nodes() as u64);
    assert!(batch.stats.nodes_expanded < seq_nodes);
}
