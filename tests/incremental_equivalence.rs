//! Property-based equivalence tests for the incremental census engine:
//! applying a random edge-delta and re-censusing only the dirty focal
//! nodes must produce counts bit-identical to a full recompute on the
//! mutated graph — for every algorithm family, query shape, and thread
//! count. A deterministic fixture additionally pins the headline claim:
//! a localized delta dirties strictly fewer focal nodes than `|V|`.

use egocensus::census::{
    run_census_exec, Algorithm, CensusSpec, CountVector, ExecConfig, FocalNodes, PtConfig,
};
use egocensus::dynamic::{dirty_focal_nodes, update_batch_exec, update_census_exec, DeltaGraph};
use egocensus::graph::{Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label((next() % 2) as u16));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 3 == 0 {
                    b.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        b.build()
    })
}

/// Apply `ops` pseudo-random mutations (inserts and deletes; no-ops such
/// as deleting an absent edge are allowed and exercised deliberately).
fn random_delta(base: Arc<Graph>, seed: u64, ops: usize) -> DeltaGraph {
    let n = base.num_nodes() as u64;
    let mut delta = DeltaGraph::new(base);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..ops {
        let a = NodeId((next() % n) as u32);
        let b = NodeId((next() % n) as u32);
        if a == b {
            continue;
        }
        if next() % 2 == 0 {
            delta.insert_edge(a, b).unwrap();
        } else {
            delta.delete_edge(a, b).unwrap();
        }
    }
    delta
}

const ALL_ALGOS: [Algorithm; 7] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

/// COUNTSP is rejected by ND-BAS and ND-DIFF.
const COUNTSP_ALGOS: [Algorithm; 5] = [
    Algorithm::NdPivot,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_countp_equals_full_recompute(
        g in arb_graph(),
        seed in any::<u64>(),
        ops in 1usize..6,
        k in 1u32..3,
        explicit_focal in any::<bool>(),
    ) {
        let g = Arc::new(g);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let mut spec = CensusSpec::single(&p, k);
        if explicit_focal {
            let set: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
            spec = spec.with_focal(FocalNodes::Set(set));
        }
        let delta = random_delta(g.clone(), seed, ops);
        let config = PtConfig::default();
        for algo in ALL_ALGOS {
            for threads in [1usize, 4] {
                let exec = ExecConfig::with_threads(threads);
                let previous = run_census_exec(&g, &spec, algo, &config, &exec).unwrap();
                let update =
                    update_census_exec(&delta, &spec, &previous, algo, &config, &exec).unwrap();
                let fresh =
                    run_census_exec(&update.graph, &spec, algo, &config, &exec).unwrap();
                prop_assert_eq!(
                    &update.counts[0], &fresh,
                    "{:?} threads={} focal={}", algo, threads, explicit_focal
                );
            }
        }
    }

    #[test]
    fn incremental_countsp_equals_full_recompute(
        g in arb_graph(),
        seed in any::<u64>(),
        ops in 1usize..6,
        k in 0u32..3,
    ) {
        let g = Arc::new(g);
        let p =
            Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
        let spec = CensusSpec::single(&p, k).with_subpattern("one");
        let delta = random_delta(g.clone(), seed, ops);
        let config = PtConfig::default();
        for algo in COUNTSP_ALGOS {
            for threads in [1usize, 4] {
                let exec = ExecConfig::with_threads(threads);
                let previous = run_census_exec(&g, &spec, algo, &config, &exec).unwrap();
                let update =
                    update_census_exec(&delta, &spec, &previous, algo, &config, &exec).unwrap();
                let fresh =
                    run_census_exec(&update.graph, &spec, algo, &config, &exec).unwrap();
                prop_assert_eq!(
                    &update.counts[0], &fresh,
                    "{:?} threads={}", algo, threads
                );
            }
        }
    }

    #[test]
    fn incremental_batch_equals_full_recompute(
        g in arb_graph(),
        seed in any::<u64>(),
        ops in 1usize..6,
    ) {
        let g = Arc::new(g);
        let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let path = Pattern::parse("PATTERN p3 { ?A-?B; ?B-?C; }").unwrap();
        // Two patterns at two radii: the batched path must splice each
        // spec's counts with its own per-radius dirty set.
        let specs = [CensusSpec::single(&tri, 1), CensusSpec::single(&path, 2)];
        let delta = random_delta(g.clone(), seed, ops);
        let config = PtConfig::default();
        let exec = ExecConfig::with_threads(2);
        let previous: Vec<CountVector> = specs
            .iter()
            .map(|s| run_census_exec(&g, s, Algorithm::Auto, &config, &exec).unwrap())
            .collect();
        let update =
            update_batch_exec(&delta, &specs, &previous, Algorithm::Auto, &config, &exec)
                .unwrap();
        for (i, spec) in specs.iter().enumerate() {
            let fresh =
                run_census_exec(&update.graph, spec, Algorithm::Auto, &config, &exec).unwrap();
            prop_assert_eq!(&update.counts[i], &fresh, "spec {}", i);
        }
    }
}

/// The headline property on a deterministic fixture: a localized delta
/// on a large sparse graph dirties a strictly proper subset of the focal
/// nodes, and the incremental result is still exact.
#[test]
fn localized_delta_dirties_strictly_fewer_than_all_nodes() {
    // A 200-node ring: every k-ball is small, so one chord touches few.
    let n = 200u32;
    let mut b = GraphBuilder::undirected();
    b.add_nodes(n as usize, Label(0));
    for i in 0..n {
        b.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    let g = Arc::new(b.build());

    let mut delta = DeltaGraph::new(g.clone());
    assert!(delta.insert_edge(NodeId(10), NodeId(12)).unwrap());
    assert!(delta.delete_edge(NodeId(100), NodeId(101)).unwrap());

    let k = 2;
    let dirty = dirty_focal_nodes(&delta, k);
    assert!(!dirty.is_empty());
    assert!(
        dirty.len() < g.num_nodes(),
        "a localized delta must not dirty every node ({} of {})",
        dirty.len(),
        g.num_nodes()
    );
    // Exactly the nodes within k hops of a touched endpoint (union
    // graph): the chord contracts distances around 10..12, the deleted
    // edge touches 100 and 101. Ball radius 2 around four endpoints on a
    // ring with one extra chord: at most 4 * 5 nodes.
    assert!(dirty.len() <= 20, "dirty set too large: {}", dirty.len());

    let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
    let spec = CensusSpec::single(&p, k);
    let config = PtConfig::default();
    let exec = ExecConfig::with_threads(2);
    let previous = run_census_exec(&g, &spec, Algorithm::NdPivot, &config, &exec).unwrap();
    let update =
        update_census_exec(&delta, &spec, &previous, Algorithm::NdPivot, &config, &exec).unwrap();
    assert_eq!(update.stats.dirty_focal, dirty.len());
    assert_eq!(update.stats.clean_focal, g.num_nodes() - dirty.len());
    let fresh = run_census_exec(&update.graph, &spec, Algorithm::NdPivot, &config, &exec).unwrap();
    assert_eq!(update.counts[0], fresh);
    // The chord 10-12 closes triangle 10-11-12; node 11 now sees it.
    assert_eq!(update.counts[0].get(NodeId(11)), 1);
}

/// Directed overlays go through the same machinery.
#[test]
fn directed_incremental_equals_full_recompute() {
    let mut b = GraphBuilder::directed();
    b.add_nodes(30, Label(0));
    for i in 0..29u32 {
        b.add_edge(NodeId(i), NodeId(i + 1));
        if i % 3 == 0 {
            b.add_edge(NodeId(i + 1), NodeId(i));
        }
    }
    let g = Arc::new(b.build());
    let mut delta = DeltaGraph::new(g.clone());
    assert!(delta.insert_edge(NodeId(5), NodeId(9)).unwrap());
    assert!(delta.delete_edge(NodeId(12), NodeId(13)).unwrap());

    let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; }").unwrap();
    let spec = CensusSpec::single(&p, 2);
    let config = PtConfig::default();
    for algo in [Algorithm::NdPivot, Algorithm::PtOpt] {
        let exec = ExecConfig::with_threads(2);
        let previous = run_census_exec(&g, &spec, algo, &config, &exec).unwrap();
        let update = update_census_exec(&delta, &spec, &previous, algo, &config, &exec).unwrap();
        let fresh = run_census_exec(&update.graph, &spec, algo, &config, &exec).unwrap();
        assert_eq!(update.counts[0], fresh, "{algo:?}");
        assert!(update.stats.dirty_focal < g.num_nodes());
    }
}
