//! Cross-backend equivalence: the same graph loaded from the v1 text
//! format (heap-backed `Vec` store) and from the binary `.egb` format
//! (read-only mmap store) must produce bit-identical census results for
//! every algorithm family, query shape, and thread count. This is the
//! acceptance gate for the out-of-core storage layer: the backend is a
//! pure storage decision, invisible to every algorithm.

use egocensus::census::{
    run_census_exec, Algorithm, CensusSpec, CountVector, ExecConfig, PtConfig,
};
use egocensus::datagen;
use egocensus::graph::{io, Graph, GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use egocensus::query::QueryEngine;

const ALL_ALGOS: [Algorithm; 7] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

/// COUNTSP is rejected by ND-BAS and ND-DIFF.
const COUNTSP_ALGOS: [Algorithm; 5] = [
    Algorithm::NdPivot,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

/// Temp-dir scratch space, cleaned up on drop.
struct Scratch {
    dir: std::path::PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ego-store-eq-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// A labeled Barabási–Albert graph, the paper's synthetic workload.
fn ba_graph(nodes: usize) -> Graph {
    let mut rng = datagen::rng(0xE60);
    let g = datagen::barabasi_albert(nodes, 3, &mut rng);
    datagen::assign_random_labels(&g, 4, &mut rng)
}

/// Save `g` as text + binary, reload through the extension dispatcher,
/// and hand both copies (text-loaded, mmap-loaded) to `check`.
fn with_both_backends(g: &Graph, tag: &str, check: impl FnOnce(&Graph, &Graph)) {
    let s = Scratch::new(tag);
    let txt = s.path("g.txt");
    let egb = s.path("g.egb");
    io::save_path(g, &txt).unwrap();
    io::save_path(g, &egb).unwrap();
    let g_mem = io::load_path(&txt).unwrap();
    let g_map = io::load_path(&egb).unwrap();
    assert_eq!(g_mem.storage_kind(), "mem");
    assert_eq!(g_map.storage_kind(), "mmap");
    assert_eq!(g_mem.fingerprint(), g.fingerprint());
    assert_eq!(g_map.fingerprint(), g.fingerprint());
    assert!(g_map.verify_fingerprint());
    check(&g_mem, &g_map);
    // `check` borrows only for its body, so the mapping is unmapped
    // (drop) before Scratch unlinks the file.
}

fn census(g: &Graph, spec: &CensusSpec, algo: Algorithm, threads: usize) -> CountVector {
    run_census_exec(
        g,
        spec,
        algo,
        &PtConfig::default(),
        &ExecConfig::with_threads(threads),
    )
    .unwrap()
}

#[test]
fn countp_identical_across_backends_all_algorithms_and_threads() {
    let p = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
    with_both_backends(&ba_graph(300), "countp", |g_mem, g_map| {
        let spec = CensusSpec::single(&p, 1);
        for algo in ALL_ALGOS {
            for threads in 1..=4 {
                let mem = census(g_mem, &spec, algo, threads);
                let map = census(g_map, &spec, algo, threads);
                assert_eq!(mem, map, "{algo:?} threads={threads}");
            }
        }
    });
}

#[test]
fn countsp_identical_across_backends() {
    let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
    with_both_backends(&ba_graph(200), "countsp", |g_mem, g_map| {
        let spec = CensusSpec::single(&p, 1).with_subpattern("one");
        for algo in COUNTSP_ALGOS {
            for threads in 1..=4 {
                let mem = census(g_mem, &spec, algo, threads);
                let map = census(g_map, &spec, algo, threads);
                assert_eq!(mem, map, "{algo:?} threads={threads}");
            }
        }
    });
}

#[test]
fn directed_graph_identical_across_backends() {
    // Deterministic xorshift digraph: direction matters for the stored
    // out/in CSR sections, exercised here end to end.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 120u32;
    let mut b = GraphBuilder::directed();
    for _ in 0..n {
        b.add_node(Label((next() % 3) as u16));
    }
    for i in 0..n {
        for _ in 0..3 {
            let j = (next() % n as u64) as u32;
            if i != j {
                b.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    let g = b.build();
    let p = Pattern::parse("PATTERN arc { ?A->?B; }").unwrap();
    with_both_backends(&g, "directed", |g_mem, g_map| {
        assert!(g_map.is_directed());
        for v in g_mem.node_ids() {
            assert_eq!(g_mem.out_neighbors(v), g_map.out_neighbors(v));
            assert_eq!(g_mem.in_neighbors(v), g_map.in_neighbors(v));
        }
        let spec = CensusSpec::single(&p, 1);
        for algo in [Algorithm::NdPivot, Algorithm::PtOpt, Algorithm::Auto] {
            for threads in 1..=4 {
                let mem = census(g_mem, &spec, algo, threads);
                let map = census(g_map, &spec, algo, threads);
                assert_eq!(mem, map, "{algo:?} threads={threads}");
            }
        }
    });
}

#[test]
fn query_engine_csv_identical_across_backends() {
    let g = ba_graph(150);
    let s = Scratch::new("query");
    let txt = s.path("g.txt");
    let egb = s.path("g.egb");
    io::save_path(&g, &txt).unwrap();
    io::save_path(&g, &egb).unwrap();
    let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY 2 DESC, 1 LIMIT 25";
    let csv_for = |path: &std::path::Path| {
        let mut e = QueryEngine::open(path).unwrap();
        e.catalog_mut()
            .define_or_replace("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        e.execute(sql).unwrap().to_csv()
    };
    let mem_csv = csv_for(&txt);
    let map_csv = csv_for(&egb);
    assert!(!mem_csv.is_empty());
    assert_eq!(mem_csv, map_csv, "CSV output differs between backends");
}
