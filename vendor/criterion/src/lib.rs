//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness API this workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple: one
//! warm-up iteration, then `sample_size` timed iterations, reporting the
//! mean wall-clock time per iteration. No statistical analysis, HTML
//! reports, or baseline comparison — just honest numbers on stderr-free
//! stdout so `cargo bench` works offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier combining a function name with a parameter, printed as
/// `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) runs and times
/// the routine.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "{name:<40} time: {:>12}  (mean of {} samples)",
        fmt_duration(b.mean),
        b.samples
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.samples, f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _parent: self,
        }
    }

    /// Benchmark a standalone closure with the default sample size.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), 20, f);
        self
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a + black_box(b))
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| sum_to(1000)));
        group.bench_with_input(BenchmarkId::new("input", 42), &42u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| sum_to(10)));
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
