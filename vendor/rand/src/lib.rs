//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements exactly the API surface the workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, statistically solid for
//! test and benchmark workloads. It is **not** the upstream `rand`
//! implementation: streams differ from the real StdRng (ChaCha12), which
//! is fine because nothing in this repository depends on upstream
//! streams, only on seeded determinism.

use std::ops::{Range, RangeInclusive};

/// Core generator trait: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a range via [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (or `[low, high]` if `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // of the plain method is avoided without a rejection loop
                // because 128-bit headroom covers every span used here.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

pub mod distributions {
    //! The subset of `rand::distributions` backing [`Rng::gen`](crate::Rng::gen).

    use crate::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over the whole domain for
    /// integers, uniform on `[0, 1)` for floats, fair coin for bools.
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the [`Standard`](distributions::Standard)
    /// distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use crate::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++, the workspace's standard seeded generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers: the used subset of `rand::seq`.

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=5u64);
            assert!((2..=5).contains(&w));
            let x = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&x));
            let f = rng.gen_range(0.5..1.5f64);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniforms is ~0.5 ± a few percent.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!([v.as_slice()].iter().all(|s| s.choose(&mut rng).is_some()));
    }
}
