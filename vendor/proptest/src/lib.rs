//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`any`],
//! `prop::collection::vec`, and the `prop_assert*` macros. Generation is
//! purely random (seeded per test by the test's name, so failures
//! reproduce deterministically); there is **no shrinking** — a failing
//! case reports the case number and message and panics immediately.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The generator handed to strategies (a seeded [`StdRng`]).
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator derived from a test's name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name keeps seeds stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform sample from a half-open integer range.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*` and propagated out of a case body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies over one value type (the
/// backing for [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; each generation picks one arm uniformly.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Pick one of several strategies per generated value, mirroring
/// proptest's `prop_oneof!` (uniform weights only).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as _),+])
    };
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: `len` elements of `element`, length uniform in
    /// the given range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    /// Module-style access (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests. Supports the `#![proptest_config(...)]` header
/// and `fn name(arg in strategy, ...) { body }` items, each annotated with
/// regular attributes (usually `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..24, b in 0u32..4) {
            prop_assert!((3..24).contains(&a));
            prop_assert!(b < 4, "b={}", b);
        }

        #[test]
        fn tuples_and_maps(v in (1u16..4, any::<u64>()).prop_map(|(l, s)| (l as u64) + (s % 10))) {
            prop_assert!(v < 14);
        }

        #[test]
        fn vec_strategy(xs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..120)) {
            prop_assert!(xs.len() < 120);
        }
    }

    #[test]
    fn seeded_by_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
