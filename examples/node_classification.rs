//! Node classification features (Figure 1(b) of the paper): in a family
//! network, a child's risk of becoming a smoker is scored by counting
//! relatives within 3 hops who smoke *and* have a smoking parent —
//! a census over a pattern with directed edges, attribute predicates,
//! and a subpattern anchor.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::graph::{GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A synthetic multi-generation family network. Generation g has
    // 2^g families; "parent_of" edges are directed parent -> child;
    // spouses are linked undirected-style with two directed edges.
    // Smoking propagates: children of smokers smoke more often.
    let mut rng = StdRng::seed_from_u64(1234);
    let generations = 6usize;
    let per_gen = 120usize;
    let n = generations * per_gen;
    let mut b = GraphBuilder::directed();
    b.add_nodes(n, Label(0));

    let idx = |gen: usize, i: usize| NodeId((gen * per_gen + i) as u32);
    let mut smokes = vec![false; n];
    // Generation 0: 25% smokers.
    for i in 0..per_gen {
        smokes[idx(0, i).index()] = rng.gen_bool(0.25);
    }
    for gen in 1..generations {
        for i in 0..per_gen {
            let child = idx(gen, i);
            // Two parents from the previous generation.
            let p1 = idx(gen - 1, rng.gen_range(0..per_gen));
            let mut p2 = idx(gen - 1, rng.gen_range(0..per_gen));
            while p2 == p1 {
                p2 = idx(gen - 1, rng.gen_range(0..per_gen));
            }
            b.add_edge(p1, child);
            b.add_edge(p2, child);
            // Smoking heredity: 55% if either parent smokes, else 12%.
            let parent_smokes = smokes[p1.index()] || smokes[p2.index()];
            smokes[child.index()] = rng.gen_bool(if parent_smokes { 0.55 } else { 0.12 });
        }
    }
    for (i, &s) in smokes.iter().enumerate() {
        b.set_node_attr(NodeId(i as u32), "smoker", s);
    }
    let g = b.build();
    println!(
        "family network: {} people over {generations} generations, {} parent links, {} smokers",
        g.num_nodes(),
        g.num_edges(),
        smokes.iter().filter(|&&s| s).count()
    );

    // Figure 1(b): count, within each child's 3-hop neighborhood, the
    // relatives who smoke and have a smoking parent. The subpattern
    // anchors the census on the relative (?R): COUNTSP(rel, risk, S(n,3))
    // counts matches whose ?R lies within 3 hops of the ego.
    let risk = Pattern::parse(
        "PATTERN risk {
            ?P->?R;
            [?R.smoker=true];
            [?P.smoker=true];
            SUBPATTERN rel {?R;}
        }",
    )
    .unwrap();
    let spec = CensusSpec::single(&risk, 3).with_subpattern("rel");
    let counts = run_census(&g, &spec, Algorithm::NdPivot).unwrap();

    // Validate the feature: children who became smokers should have higher
    // average risk scores than those who did not.
    let last_gen: Vec<NodeId> = (0..per_gen).map(|i| idx(generations - 1, i)).collect();
    let (mut sum_smoker, mut n_smoker, mut sum_clean, mut n_clean) = (0.0, 0, 0.0, 0);
    for &child in &last_gen {
        let score = counts.get(child) as f64;
        if smokes[child.index()] {
            sum_smoker += score;
            n_smoker += 1;
        } else {
            sum_clean += score;
            n_clean += 1;
        }
    }
    let avg_smoker = sum_smoker / n_smoker.max(1) as f64;
    let avg_clean = sum_clean / n_clean.max(1) as f64;
    println!(
        "\nrisk feature over the youngest generation ({} children):",
        per_gen
    );
    println!("  avg score, children who smoke:      {avg_smoker:.2} (n={n_smoker})");
    println!("  avg score, children who don't:      {avg_clean:.2} (n={n_clean})");
    println!(
        "  feature separation: {:.2}x — usable as a collective-classification input",
        avg_smoker / avg_clean.max(0.01)
    );
    assert!(
        avg_smoker > avg_clean,
        "risk census should separate the classes"
    );
}
