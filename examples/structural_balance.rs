//! Structural balance analysis on signed networks (Section I).
//!
//! In a signed network, triangles with an odd number of negative edges
//! are unstable. This example measures each node's local instability by
//! counting unstable triangles in its 2-hop neighborhood — a pattern
//! census with edge-attribute predicates.
//!
//! ```sh
//! cargo run --example structural_balance
//! ```

use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::datagen::{assign_random_signs, rng, watts_strogatz};
use egocensus::pattern::Pattern;

fn main() {
    // A clustered small-world friendship network with ±1 edge signs.
    let mut r = rng(2024);
    let g = watts_strogatz(400, 4, 0.1, &mut r);
    let g = assign_random_signs(&g, 0.8, &mut r);
    println!(
        "signed network: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // The two unstable triangle types: exactly one negative edge, or all
    // three negative. One pattern per type suffices: pattern variables can
    // bind the single negative edge to any side of the triangle, so every
    // one-negative triangle is matched exactly once (automorphism
    // deduplication collapses the symmetric A<->B assignments).
    let one_negative = Pattern::parse(
        "PATTERN unb1 {
            ?A-?B; ?B-?C; ?A-?C;
            [EDGE(?A,?B).sign=-1];
            [EDGE(?B,?C).sign=1];
            [EDGE(?A,?C).sign=1];
        }",
    )
    .unwrap();
    let all_negative = Pattern::parse(
        "PATTERN unb3 {
            ?A-?B; ?B-?C; ?A-?C;
            [EDGE(?A,?B).sign=-1];
            [EDGE(?B,?C).sign=-1];
            [EDGE(?A,?C).sign=-1];
        }",
    )
    .unwrap();
    let all_triangles = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();

    // Census each pattern in 2-hop neighborhoods and combine.
    let k = 2;
    let mut unstable = run_census(
        &g,
        &CensusSpec::single(&all_negative, k),
        Algorithm::NdPivot,
    )
    .unwrap();
    let c = run_census(
        &g,
        &CensusSpec::single(&one_negative, k),
        Algorithm::NdPivot,
    )
    .unwrap();
    for n in g.node_ids() {
        unstable.add(n, c.get(n));
    }
    let total = run_census(
        &g,
        &CensusSpec::single(&all_triangles, k),
        Algorithm::NdPivot,
    )
    .unwrap();

    // Report the most unstable neighborhoods.
    let mut scored: Vec<(f64, u64, u64, u32)> = g
        .node_ids()
        .map(|n| {
            let u = unstable.get(n);
            let t = total.get(n);
            let frac = if t == 0 { 0.0 } else { u as f64 / t as f64 };
            (frac, u, t, n.0)
        })
        .collect();
    scored.sort_by(|a, b| b.partial_cmp(a).unwrap());

    println!("\nmost unstable 2-hop ego networks (unstable/total triangles):");
    for &(frac, u, t, n) in scored.iter().take(8) {
        println!("  node {n:>4}: {u:>3}/{t:<3} = {frac:.2}");
    }
    let global_unstable: u64 = g.node_ids().map(|n| unstable.get(n)).sum();
    let global_total: u64 = g.node_ids().map(|n| total.get(n)).sum();
    println!(
        "\naggregate instability: {:.1}% of ego-triangle observations",
        100.0 * global_unstable as f64 / global_total.max(1) as f64
    );
}
