//! Brokerage analysis (Figure 1(c) of the paper).
//!
//! In a directed transaction network where every node belongs to an
//! organization, the middle node B of a triad `A -> B -> C` (with no
//! `A -> C` shortcut) plays a brokerage role determined by the three
//! organizations:
//!
//! * **coordinator** — all three in the same organization;
//! * **gatekeeper**  — A outside, B and C inside the same organization;
//! * **representative** — A and B inside, C outside;
//! * **liaison** — all three in different organizations.
//!
//! Each role is a COUNTSP census anchored on the middle node with k = 0.
//!
//! ```sh
//! cargo run --example brokerage
//! ```

use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::graph::{GraphBuilder, Label, NodeId};
use egocensus::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A directed transaction network: 300 actors in 3 organizations
    // (labels 0, 1, 2), with org-biased random transactions.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 300u32;
    let mut b = GraphBuilder::directed();
    for _ in 0..n {
        b.add_node(Label(0));
    }
    let orgs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3u16)).collect();
    for (i, &org) in orgs.iter().enumerate() {
        b.set_label(NodeId(i as u32), Label(org));
    }
    for _ in 0..(6 * n) {
        let src = rng.gen_range(0..n);
        // 70% of transactions stay within the organization.
        let dst = if rng.gen_bool(0.7) {
            let candidates: Vec<u32> = (0..n)
                .filter(|&x| orgs[x as usize] == orgs[src as usize] && x != src)
                .collect();
            candidates[rng.gen_range(0..candidates.len())]
        } else {
            let mut d = rng.gen_range(0..n);
            while d == src {
                d = rng.gen_range(0..n);
            }
            d
        };
        b.add_edge(NodeId(src), NodeId(dst));
    }
    let g = b.build();
    println!(
        "transaction network: {} actors, {} transfers",
        g.num_nodes(),
        g.num_edges()
    );

    // Brokerage roles as COUNTSP patterns. The paper's prototype optimizes
    // LABEL = const; label-join predicates run as final filters.
    let roles: Vec<(&str, Pattern)> = vec![
        (
            "coordinator",
            Pattern::parse(
                "PATTERN coordinator_triad {
                    ?A->?B; ?B->?C; ?A!->?C;
                    [?A.LABEL=?B.LABEL];
                    [?B.LABEL=?C.LABEL];
                    SUBPATTERN broker {?B;}
                }",
            )
            .unwrap(),
        ),
        (
            "gatekeeper",
            Pattern::parse(
                "PATTERN gatekeeper_triad {
                    ?A->?B; ?B->?C; ?A!->?C;
                    [?A.LABEL!=?B.LABEL];
                    [?B.LABEL=?C.LABEL];
                    SUBPATTERN broker {?B;}
                }",
            )
            .unwrap(),
        ),
        (
            "representative",
            Pattern::parse(
                "PATTERN representative_triad {
                    ?A->?B; ?B->?C; ?A!->?C;
                    [?A.LABEL=?B.LABEL];
                    [?B.LABEL!=?C.LABEL];
                    SUBPATTERN broker {?B;}
                }",
            )
            .unwrap(),
        ),
        (
            "liaison",
            Pattern::parse(
                "PATTERN liaison_triad {
                    ?A->?B; ?B->?C; ?A!->?C;
                    [?A.LABEL!=?B.LABEL];
                    [?B.LABEL!=?C.LABEL];
                    [?A.LABEL!=?C.LABEL];
                    SUBPATTERN broker {?B;}
                }",
            )
            .unwrap(),
        ),
    ];

    println!("\nper-role brokerage leaders (COUNTSP, k = 0):");
    for (role, pattern) in &roles {
        let spec = CensusSpec::single(pattern, 0).with_subpattern("broker");
        let counts = run_census(&g, &spec, Algorithm::PtOpt).unwrap();
        let top = counts.top_k(3);
        let total = counts.total();
        print!("  {role:<15} total={total:<6} top brokers:");
        for (node, c) in top {
            print!(" {node}(org{},{c})", orgs[node.index()]);
        }
        println!();
    }
}
