//! Link prediction over a DBLP-like co-authorship network — the paper's
//! real-world experiment (Section V-B, Figure 4(h)), on the synthetic
//! stand-in dataset.
//!
//! Nine census measures (common nodes/edges/triangles at radii 1–3) plus
//! Jaccard and a random predictor are ranked by precision@K.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use egocensus::datagen::dblp::{self, DblpConfig};
use egocensus::datagen::rng;
use egocensus::linkpred::{run_experiment, ExperimentConfig};

fn main() {
    // Large, sparse communities: most future collaborators share 2-hop
    // structure (community co-membership) but few direct co-authors yet —
    // the regime where the paper found common-nodes@2 the strongest signal.
    let cfg = DblpConfig {
        num_authors: 1500,
        num_communities: 15,
        papers_per_year: 220,
        horizon_years: 10,
        split_year: 5,
        cross_community_prob: 0.05,
    };
    let data = dblp::generate(&cfg, &mut rng(2001));
    println!(
        "synthetic DBLP: {} authors, {} train collaborations, {} new test collaborations",
        data.train.num_nodes(),
        data.train.num_edges(),
        data.test_new_edges.len()
    );

    let results = run_experiment(
        &data,
        &ExperimentConfig {
            ks: vec![50, 600],
            seed: 7,
        },
    );

    println!("\n{:<14} {:>8} {:>8}", "predictor", "P@50", "P@600");
    for m in &results.measures {
        print!("{:<14}", m.name);
        for &(_, p) in &m.precision {
            print!(" {p:>8.3}");
        }
        println!();
    }

    let nodes2 = results.measure("nodes@2").unwrap().precision[0].1;
    let jaccard = results.measure("jaccard").unwrap().precision[0].1;
    println!(
        "\ncommon nodes within 2 hops vs Jaccard at K=50: {nodes2:.3} vs {jaccard:.3} \
         (the paper reports roughly 2x)"
    );
}
