//! Targeted marketing (Section I, Figure 1(a)): find the couples with
//! the most "couple pairs" — couples who are friends with other couples —
//! in their combined network.
//!
//! Relationship types live on edge attributes (`rel` = `spouse` or
//! `friend`); the couples-square pattern is censused in the union of the
//! two spouses' 2-hop neighborhoods.
//!
//! ```sh
//! cargo run --example targeted_marketing
//! ```

use egocensus::census::pairwise::{run_pair_census, PairCensusSpec, PairSelector};
use egocensus::census::Algorithm;
use egocensus::graph::{GraphBuilder, Label, NodeId};
use egocensus::pattern::builtin::couples_square;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Build a society of couples: 120 couples (240 people). Each person
    // marries their partner and befriends a few random others.
    let mut rng = StdRng::seed_from_u64(99);
    let couples = 120u32;
    let n = couples * 2;
    let mut b = GraphBuilder::undirected();
    b.add_nodes(n as usize, Label(0));
    let mut couple_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..couples {
        let a = NodeId(2 * c);
        let s = NodeId(2 * c + 1);
        b.add_edge(a, s);
        b.set_edge_attr(a, s, "rel", "spouse");
        couple_pairs.push((a, s));
    }
    for person in 0..n {
        for _ in 0..3 {
            let other = rng.gen_range(0..n);
            // No self-friendship; spouse edge already exists and the
            // builder would dedupe it, keeping the spouse attribute.
            if other == person || other == (person ^ 1) {
                continue;
            }
            let (x, y) = (NodeId(person), NodeId(other));
            b.add_edge(x, y);
            b.set_edge_attr(x, y, "rel", "friend");
        }
    }
    let g = b.build();
    println!(
        "society: {} people, {} relationships",
        g.num_nodes(),
        g.num_edges()
    );

    // The Figure 1(a) pattern: two spouse edges bridged by two friendship
    // edges. Census it in the union of each couple's 2-hop neighborhoods.
    let pattern = couples_square();
    let spec = PairCensusSpec::union(&pattern, 2, PairSelector::Pairs(couple_pairs.clone()));
    let counts = run_pair_census(&g, &spec, Algorithm::PtOpt).unwrap();

    let mut ranked: Vec<(NodeId, NodeId, u64)> = couple_pairs
        .iter()
        .map(|&(a, s)| (a, s, counts.get(a, s)))
        .collect();
    ranked.sort_by_key(|&(a, _, c)| (std::cmp::Reverse(c), a));

    println!("\ncouples with the most couple-pair structures in their combined network:");
    for &(a, s, c) in ranked.iter().take(5) {
        println!("  couple ({a}, {s}): {c} couple-pairs within 2 hops");
    }
    let zero = ranked.iter().filter(|&&(_, _, c)| c == 0).count();
    println!("\n{zero} of {couples} couples see no couple-pair at all — poor seeding targets.");
}
