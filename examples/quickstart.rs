//! Quickstart: define a pattern, run a census, query it through SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use egocensus::census::{run_census, Algorithm, CensusSpec};
use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::pattern::Pattern;
use egocensus::query::QueryEngine;

fn main() {
    // 1. A synthetic social network: preferential attachment, 500 people,
    //    |E| = 5|V| (the paper's density), 4 random labels.
    let mut r = rng(42);
    let g = barabasi_albert(500, 5, &mut r);
    let g = assign_random_labels(&g, 4, &mut r);
    println!(
        "graph: {} nodes, {} edges, {} labels",
        g.num_nodes(),
        g.num_edges(),
        g.num_labels()
    );

    // 2. A pattern in the DSL: an unlabeled triangle.
    let tri = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();

    // 3. Census: triangles in every node's 2-hop neighborhood, with the
    //    paper's pivot-indexing algorithm.
    let spec = CensusSpec::single(&tri, 2);
    let counts = run_census(&g, &spec, Algorithm::NdPivot).unwrap();
    let top = counts.top_k(5);
    println!("\ntop-5 nodes by triangles within 2 hops:");
    for (node, count) in &top {
        println!("  node {node}: {count} triangles");
    }

    // 4. The same query through the declarative SQL layer.
    let mut engine = QueryEngine::new(&g);
    engine
        .catalog_mut()
        .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
        .unwrap();
    let mut table = engine
        .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
        .unwrap();
    table.sort_desc_by(1);
    table.truncate(5);
    println!("\nvia SQL:\n{table}");

    // The two paths agree.
    let sql_top: Vec<i64> = table
        .rows()
        .iter()
        .map(|r| r[1].as_int().unwrap())
        .collect();
    let api_top: Vec<i64> = top.iter().map(|&(_, c)| c as i64).collect();
    assert_eq!(sql_top, api_top, "SQL and API must agree");
    println!("SQL and direct API agree.");
}
