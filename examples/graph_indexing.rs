//! Graph indexing (Section I, fifth motivating application): census
//! counts as *node signatures* that prune subgraph-search candidates.
//!
//! "Counts of specific structural patterns in every node's k-hop
//! neighborhood ... are regarded as node signatures and are often used
//! for subgraph pattern matching to prune the search space."
//!
//! This example builds a signature from three cheap census queries
//! (edges, triangles, and 2-paths anchored at each node), then shows how
//! signature containment prunes the candidate sets for a larger query
//! pattern before exact matching runs.
//!
//! ```sh
//! cargo run --release --example graph_indexing
//! ```

use egocensus::census::{run_census, Algorithm, CensusSpec, CountVector};
use egocensus::datagen::{assign_random_labels, barabasi_albert, rng};
use egocensus::graph::Graph;
use egocensus::matcher::{find_matches_with_stats, MatchStats, MatcherKind};
use egocensus::pattern::Pattern;

/// The signature: per node, counts of three anchored micro-patterns.
struct Signatures {
    edges: CountVector,
    triangles: CountVector,
    two_paths: CountVector,
}

fn build_signatures(g: &Graph) -> Signatures {
    let run = |text: &str, sp: &str| -> CountVector {
        let p = Pattern::parse(text).unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern(sp);
        run_census(g, &spec, Algorithm::NdPivot).unwrap()
    };
    Signatures {
        // Edges incident to the node.
        edges: run("PATTERN e { ?A-?B; SUBPATTERN me {?A;} }", "me"),
        // Triangles through the node.
        triangles: run(
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN me {?A;} }",
            "me",
        ),
        // 2-paths centered on the node.
        two_paths: run("PATTERN p { ?B-?A; ?A-?C; SUBPATTERN me {?A;} }", "me"),
    }
}

/// Minimum signature each image of a query-pattern node must carry: the
/// same three census counts evaluated on the query pattern itself.
fn required_signature(p: &Pattern, v: egocensus::pattern::PNode) -> (u64, u64, u64) {
    let deg = p.degree(v) as u64;
    let neigh = p.neighbors(v);
    let mut tri = 0u64;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if p.has_positive_edge(a, b) {
                tri += 1;
            }
        }
    }
    let two_paths = if deg >= 2 { deg * (deg - 1) / 2 } else { 0 };
    (deg, tri, two_paths)
}

fn main() {
    let mut r = rng(77);
    let g = barabasi_albert(30_000, 5, &mut r);
    let g = assign_random_labels(&g, 4, &mut r);
    println!("graph: {} nodes / {} edges", g.num_nodes(), g.num_edges());

    let t0 = std::time::Instant::now();
    let sigs = build_signatures(&g);
    println!(
        "signature index built in {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    // A demanding query: a 4-clique with a pendant (5 nodes).
    let query = Pattern::parse(
        "PATTERN k4p {
            ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; ?D-?E;
        }",
    )
    .unwrap();

    // Signature pruning: for each query node, which database nodes carry
    // at least the required counts?
    let mut survivors = vec![0usize; query.num_nodes()];
    for v in query.nodes() {
        let (need_e, need_t, need_p) = required_signature(&query, v);
        survivors[v.index()] = g
            .node_ids()
            .filter(|&n| {
                sigs.edges.get(n) >= need_e
                    && sigs.triangles.get(n) >= need_t
                    && sigs.two_paths.get(n) >= need_p
            })
            .count();
    }
    println!(
        "\nsignature-surviving candidates per query node (of {}):",
        g.num_nodes()
    );
    for v in query.nodes() {
        let (e, t, p) = required_signature(&query, v);
        println!(
            "  ?{}: {:>6} nodes  (needs edges>={e}, triangles>={t}, 2-paths>={p})",
            query.var_name(v),
            survivors[v.index()]
        );
    }

    // Ground truth from the exact matcher, with its own (profile-based)
    // candidate counts for comparison.
    let mut stats = MatchStats::default();
    let matches = find_matches_with_stats(&g, &query, MatcherKind::CandidateNeighbors, &mut stats);
    println!(
        "\nexact matching: {} matches; profile filter kept {} candidates total \
         vs signature filter's {}",
        matches.len(),
        stats.initial_candidates,
        survivors.iter().sum::<usize>(),
    );
    let reduction = stats.initial_candidates as f64 / survivors.iter().sum::<usize>().max(1) as f64;
    println!("census signatures prune {reduction:.1}x harder than 1-hop profiles");
}
