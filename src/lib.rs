//! # egocensus
//!
//! Facade crate for the ego-centric graph pattern census library, an
//! open-source reproduction of Moustafa, Deshpande & Getoor,
//! *"Ego-centric Graph Pattern Census"* (ICDE 2012).
//!
//! An ego-centric pattern census query counts the matches of a small
//! structural pattern inside every focal node's `k`-hop neighborhood (or
//! inside the intersection/union of two nodes' neighborhoods). This crate
//! re-exports the full stack:
//!
//! * [`graph`] — property graph substrate (CSR, profiles, BFS, neighborhoods).
//! * [`pattern`] — pattern model, DSL parser, pattern analysis.
//! * [`matcher`] — subgraph isomorphism (CN algorithm + GQL-style baseline).
//! * [`census`] — census evaluation algorithms (ND-BAS/PVOT/DIFF, PT-BAS/RND/OPT).
//! * [`query`] — the SQL-based declarative language.
//! * [`dynamic`] — edge-mutation overlays and incremental re-census.
//! * [`server`] — concurrent TCP front end with a pattern-keyed result cache.
//! * [`shard`] — scatter/gather router over a fleet of server workers
//!   sharing one mmap'd graph.
//! * [`datagen`] — synthetic graph generators.
//! * [`linkpred`] — the DBLP-style link prediction experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use egocensus::prelude::*;
//!
//! // A small social network: two triangles sharing node 2.
//! let mut b = GraphBuilder::undirected();
//! b.add_nodes(5, Label(0));
//! for (a, c) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(a), NodeId(c));
//! }
//! let g = b.build();
//!
//! // Count triangles in every node's 1-hop neighborhood.
//! let pattern = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
//! let spec = CensusSpec::single(&pattern, 1);
//! let counts = run_census(&g, &spec, Algorithm::NdPivot).unwrap();
//! assert_eq!(counts.get(NodeId(2)), 2); // node 2 sees both triangles
//! assert_eq!(counts.get(NodeId(0)), 1);
//! ```

pub use ego_census as census;
pub use ego_datagen as datagen;
pub use ego_dynamic as dynamic;
pub use ego_graph as graph;
pub use ego_linkpred as linkpred;
pub use ego_matcher as matcher;
pub use ego_pattern as pattern;
pub use ego_query as query;
pub use ego_server as server;
pub use ego_shard as shard;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use ego_census::pairwise::{run_pair_census, PairCensusSpec, PairSelector};
    pub use ego_census::{
        run_census, run_census_with, Algorithm, CensusSpec, CountVector, PtConfig,
    };
    pub use ego_graph::{Graph, GraphBuilder, Label, NodeId};
    pub use ego_matcher::{find_matches, MatcherKind};
    pub use ego_pattern::Pattern;
    pub use ego_query::{Catalog, QueryEngine};
}
