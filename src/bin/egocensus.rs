//! `egocensus` — command-line front end for ego-centric pattern census.
//!
//! ```text
//! egocensus generate --model ba --nodes 10000 --param 5 --labels 4 --seed 1 -o g.txt
//! egocensus stats g.txt
//! egocensus analyze g.txt
//! egocensus match g.txt --pattern 'PATTERN t { ?A-?B; ?B-?C; ?A-?C; }' [--matcher gql]
//! egocensus query g.txt --define 'PATTERN t { ... }' \
//!     'SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes ORDER BY 2 DESC LIMIT 10' [--csv]
//! egocensus topk g.txt --pattern 'PATTERN t { ... }' --k 2 --top 10
//! egocensus mutate g.txt --apply 'INSERT EDGE (4, 6); DELETE EDGE (0, 1)' \
//!     --pattern 'PATTERN t { ... }' --k 2 --verify -o g2.txt
//! egocensus serve g.txt --addr 127.0.0.1:7878 --threads 4 --cache-mb 64
//! egocensus client --addr 127.0.0.1:7878 \
//!     'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes LIMIT 10'
//! ```

use egocensus::census::{
    exec_matches, run_census_exec, topk, Algorithm, CensusSpec, ExecConfig, PtConfig,
};
use egocensus::datagen;
use egocensus::dynamic::{update_census_exec, DeltaGraph};
use egocensus::graph::{io, stats, Graph, NodeId};
use egocensus::matcher::{find_matches, MatcherKind};
use egocensus::pattern::Pattern;
use egocensus::query::{parse_mutations, Catalog, GraphStats, MutationKind, QueryEngine, Table};
use egocensus::server::{Client, Response, Server, ServerConfig};
use egocensus::shard::{Router, RouterConfig, ShardSpec, WorkerFleet};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "convert" => cmd_convert(rest),
        "stats" => cmd_stats(rest),
        "analyze" => cmd_analyze(rest),
        "match" => cmd_match(rest),
        "query" => cmd_query(rest),
        "materialize" => cmd_materialize(rest),
        "topk" => cmd_topk(rest),
        "mutate" => cmd_mutate(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand `{other}`"))
        }
    }
}

fn print_usage() {
    eprintln!(
        "egocensus — ego-centric graph pattern census

USAGE:
  egocensus generate --model <ba|er|ws> --nodes <N> [--param <M>] [--labels <L>]
                     [--seed <S>] -o <file>
  egocensus convert <graph-file> -o <file> [--force]
  egocensus stats <graph-file>
  egocensus analyze <graph-file>
  egocensus match <graph-file> --pattern <DSL> [--matcher <cn|gql>] [--threads <T>]
                  [--stats]
  egocensus query <graph-file> [--define <DSL>]... [--algorithm <name>]
                  [--threads <T>] [--csv] <SQL>
  egocensus materialize <graph-file> [--define <DSL>]... [--algorithm <name>]
                        [--threads <T>] '<MATERIALIZE ... | DROP VIEW ...>'
  egocensus topk <graph-file> --pattern <DSL> --k <radius> [--top <n>]
                 [--subpattern <name>] [--threads <T>]
  egocensus mutate <graph-file> --apply <script> [-o <file>]
                   [--pattern <DSL> --k <radius>] [--algorithm <name>]
                   [--threads <T>] [--verify]
  egocensus serve <graph-file> [--addr <host:port>] [--threads <pool>]
                  [--exec-threads <T>] [--cache-mb <MB>] [--seed <S>]
                  [--algorithm <name>] [--shard-of <M/N>] [--define <DSL>]...
                  [--view-budget-mb <MB>] [--views <file|off>]
                  [--workers <N> | --attach <host:port,...>]
  egocensus client [--addr <host:port>] [--define <DSL>]... [--update <script>]
                   [--materialize <stmt>]... [--drop-view <stmt>]...
                   [--subscribe <SQL> [--watch <secs>]]
                   [--analyze] [--stats] [--shutdown] [--csv] [<SQL>]

Graph files: `.egb` selects the binary CSR format (opened read-only via
mmap: O(1) load, physical pages shared between processes); any other
extension is the v1 text format or a SNAP-style edge list. `convert`
translates between them by extension and verifies the written graph.
Algorithms: auto (default), nd-bas, nd-pivot, nd-diff, pt-bas, pt-rnd, pt-opt.
Threads: 0 = all hardware threads (the default); results are identical
for every thread count.
Analyze: profiles the graph (degree/label/clustering statistics) and
persists the snapshot to `<graph-file>.stats`; the cost-based query
planner (see `EXPLAIN`) then picks census algorithms from measured
numbers instead of its structural heuristic. `query` and `serve` adopt
the sidecar automatically and detect staleness by graph fingerprint.
The `ANALYZE` SQL statement (and `client --analyze`) does the same
in-engine and server-side respectively.
Materialize: runs a `MATERIALIZE <pattern> RADIUS <k> [SUBPATTERN <sp>]
[MATCHES]` (or `DROP VIEW <pattern> RADIUS <k>`) statement against the
graph and persists the pinned count vector to the `<graph-file>.views`
sidecar; a later `query`, `materialize`, or `serve` on the same graph
adopts it, and COUNTP/COUNTSP over the pattern become pure lookups
(EXPLAIN shows `view:` provenance). Server-side, `client --materialize`
does the same through the `materialize` op, kept fresh across `update`s
by the incremental engine. `serve --views off` keeps views in memory
only; `--view-budget-mb` bounds the tier (largest views evicted first).
Mutate: applies an edge-mutation script (`INSERT EDGE (a, b); DELETE
EDGE (a, b); ...`) as a delta overlay; with --pattern it re-censuses
only the dirty focal nodes incrementally (--verify cross-checks against
a full recompute), and -o writes the compacted mutated graph.
Serve: loads the graph once, accepts concurrent clients over a
line-delimited JSON protocol, and memoizes repeated census queries in an
LRU result cache (--cache-mb 0 disables). --threads bounds concurrent
connections; --exec-threads parallelizes each census internally. The
`update` op (client --update) applies a mutation script server-side,
swapping the shared graph and invalidating the caches. `client
--subscribe SQL` registers a standing query and then prints the changed
rows (focal, column, old, new) the server pushes after each update,
watching for --watch seconds (default 30) before unsubscribing.
Sharding: --workers N spawns N worker subprocesses over the same graph
file (mmap'd .egb files share one physical copy) behind a scatter/gather
router; --attach fronts already-running workers instead. Responses are
byte-identical to a single server. --shard-of M/N makes a standalone
server answer only the M-th of N contiguous focal node-ID ranges."
    );
}

/// Minimal flag parser: returns (flag values, positionals).
struct Flags {
    values: Vec<(String, String)>,
    bools: Vec<String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String], bool_flags: &[&str]) -> Result<Flags, String> {
    let mut values = Vec::new();
    let mut bools = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bool_flags.contains(&name) {
                bools.push(name.to_string());
                i += 1;
            } else {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                values.push((name.to_string(), v.clone()));
                i += 2;
            }
        } else if a == "-o" {
            let v = args.get(i + 1).ok_or("-o needs a value")?;
            values.push(("out".to_string(), v.clone()));
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Flags {
        values,
        bools,
        positional,
    })
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for --{name}")),
        }
    }
}

/// Load a graph, picking the storage backend by extension: `.egb` maps
/// the binary CSR read-only; anything else auto-detects the v1 text
/// format (first non-comment line is a `graph ...` header) or a plain
/// SNAP-style edge list (`src dst` pairs; loaded as undirected).
fn load_graph(path: &str) -> Result<Graph, String> {
    io::load_path(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "auto" => Algorithm::Auto,
        "nd-bas" => Algorithm::NdBaseline,
        "nd-pivot" => Algorithm::NdPivot,
        "nd-diff" => Algorithm::NdDiff,
        "pt-bas" => Algorithm::PtBaseline,
        "pt-rnd" => Algorithm::PtRandom,
        "pt-opt" => Algorithm::PtOpt,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let model = f.get("model").unwrap_or("ba");
    let nodes: usize = f.parse("nodes", 10_000)?;
    let seed: u64 = f.parse("seed", 42)?;
    let labels: u16 = f.parse("labels", 0)?;
    let out = f.get("out").ok_or("missing -o <file>")?;

    let mut rng = datagen::rng(seed);
    let g = match model {
        "ba" => {
            let m: usize = f.parse("param", 5)?;
            datagen::barabasi_albert(nodes, m, &mut rng)
        }
        "er" => {
            let m: usize = f.parse("param", nodes * 5)?;
            datagen::erdos_renyi_gnm(nodes, m, &mut rng)
        }
        "ws" => {
            let k: usize = f.parse("param", 4)?;
            datagen::watts_strogatz(nodes, k, 0.1, &mut rng)
        }
        other => return Err(format!("unknown model `{other}` (ba, er, ws)")),
    };
    let g = if labels > 0 {
        datagen::assign_random_labels(&g, labels, &mut rng)
    } else {
        g
    };
    io::save_path(&g, out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} nodes / {} edges ({} labels) to {out}",
        g.num_nodes(),
        g.num_edges(),
        g.num_labels()
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &["force"])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let out = f.get("out").ok_or("missing -o <file>")?;
    // Refuse to clobber an existing graph: the write below truncates
    // before the source is even validated, so a typo'd -o would destroy
    // data. --force opts back in.
    if std::path::Path::new(out).exists() && !f.has("force") {
        return Err(format!(
            "{out} already exists; pass --force to overwrite it"
        ));
    }
    let g = load_graph(path)?;
    io::save_path(&g, out).map_err(|e| format!("cannot write {out}: {e}"))?;
    // Re-open what we just wrote and prove it is the same graph: equal
    // structural fingerprint (checked against the actual adjacency, not
    // the stored header field) and equal counts.
    let back = load_graph(out)?;
    if !back.verify_fingerprint() {
        return Err(format!("{out}: stored fingerprint does not match contents"));
    }
    if back.fingerprint() != g.fingerprint()
        || back.num_nodes() != g.num_nodes()
        || back.num_edges() != g.num_edges()
        || back.is_directed() != g.is_directed()
    {
        return Err(format!("{out}: converted graph differs from source"));
    }
    println!(
        "converted {path} -> {out} ({} nodes / {} edges, {} storage, fingerprint {:016x} verified)",
        back.num_nodes(),
        back.num_edges(),
        back.storage_kind(),
        back.fingerprint(),
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    println!("nodes:       {}", g.num_nodes());
    println!("edges:       {}", g.num_edges());
    println!("directed:    {}", g.is_directed());
    println!("storage:     {}", g.storage_kind());
    println!("labels:      {}", g.num_labels());
    println!("max degree:  {}", g.max_degree());
    println!("components:  {}", stats::connected_components(&g));
    println!("triangles:   {}", stats::total_triangles(&g));
    println!("avg clustering: {:.4}", stats::average_clustering(&g));
    println!("assortativity:  {:.4}", stats::degree_assortativity(&g));
    println!("diameter >=: {}", stats::diameter_lower_bound(&g, 4));
    Ok(())
}

/// `analyze <graph-file>`: profile the graph for the cost-based query
/// planner and persist the snapshot next to the graph. Reports whether
/// an existing sidecar was fresh, stale (fingerprint mismatch — e.g.
/// the graph file was regenerated), or absent.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let engine = QueryEngine::open(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let sidecar = engine
        .stats_path()
        .expect("open always derives the sidecar path")
        .to_path_buf();
    let fingerprint = engine.graph().fingerprint();
    match engine.graph_stats() {
        Some(prev) if prev.is_stale(fingerprint) => println!(
            "sidecar {} is stale (profiled {:016x}, graph is {:016x}); re-profiling",
            sidecar.display(),
            prev.fingerprint,
            fingerprint
        ),
        Some(_) => println!("sidecar {} is current; re-profiling", sidecar.display()),
        None => println!("no sidecar yet; profiling {path}"),
    }
    let table = engine.analyze().map_err(|e| e.to_string())?;
    print!("{table}");
    println!("wrote {}", sidecar.display());
    Ok(())
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &["stats"])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let pattern_text = f.get("pattern").ok_or("missing --pattern <DSL>")?;
    let g = load_graph(path)?;
    let p = Pattern::parse(pattern_text).map_err(|e| e.to_string())?;
    let kind = match f.get("matcher").unwrap_or("cn") {
        "cn" => MatcherKind::CandidateNeighbors,
        "gql" => MatcherKind::GqlStyle,
        other => return Err(format!("unknown matcher `{other}` (cn, gql)")),
    };
    let threads = ExecConfig::with_threads(f.parse("threads", 0usize)?).resolve();
    let want_stats = f.has("stats");
    let start = std::time::Instant::now();
    // Only the CN matcher has parallel candidate/extraction phases; GQL
    // runs sequentially regardless of --threads.
    let mut mstats = egocensus::matcher::MatchStats::default();
    let matches = if want_stats {
        if kind == MatcherKind::CandidateNeighbors {
            let embs = egocensus::matcher::parallel::enumerate_parallel_with_stats(
                &g,
                &p,
                threads,
                &mut mstats,
            );
            egocensus::matcher::MatchList::from_embeddings(&p, embs)
        } else {
            egocensus::matcher::find_matches_with_stats(&g, &p, kind, &mut mstats)
        }
    } else if kind == MatcherKind::CandidateNeighbors {
        exec_matches(&g, &p, threads)
    } else {
        find_matches(&g, &p, kind)
    };
    println!(
        "{} distinct matches of `{}` in {:.3}s",
        matches.len(),
        p.name(),
        start.elapsed().as_secs_f64()
    );
    if want_stats {
        println!("  initial candidates:  {}", mstats.initial_candidates);
        println!("  after pruning:       {}", mstats.pruned_candidates);
        println!("  prune iterations:    {}", mstats.prune_iterations);
        println!(
            "  extension scans:     {}",
            mstats.extension_candidates_scanned
        );
        println!("  raw embeddings:      {}", mstats.raw_embeddings);
        println!(
            "  setops kernel:       {} (merge {}, gallop {}, bitset {}, saved allocs {})",
            egocensus::graph::setops::configured_kernel().name(),
            mstats.setops.merge_calls,
            mstats.setops.gallop_calls,
            mstats.setops.bitset_calls,
            mstats.setops.saved_allocs
        );
    }
    for m in matches.iter().take(10) {
        let nodes: Vec<String> = m.nodes.iter().map(|n| n.to_string()).collect();
        println!("  ({})", nodes.join(", "));
    }
    if matches.len() > 10 {
        println!("  ... and {} more", matches.len() - 10);
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &["csv"])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let sql = f
        .positional
        .get(1)
        .ok_or("missing SQL query (quote it as one argument)")?;
    // `open` (rather than a borrowed engine over `load_graph`) adopts
    // the graph's `.stats` sidecar, so a prior `egocensus analyze` (or
    // an `ANALYZE` statement, which re-persists it) feeds the planner.
    let mut engine =
        QueryEngine::open_with_builtins(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    for def in f.get_all("define") {
        // The one-shot CLI keeps replace semantics: a --define may
        // intentionally override a preloaded builtin.
        engine
            .catalog_mut()
            .define_or_replace(def)
            .map_err(|e| e.to_string())?;
    }
    if let Some(a) = f.get("algorithm") {
        engine.set_algorithm(parse_algorithm(a)?);
    }
    if let Some(seed) = f.get("seed") {
        engine.set_seed(seed.parse().map_err(|_| "bad --seed")?);
    }
    engine.set_threads(f.parse("threads", 0usize)?);
    let table = engine.execute(sql).map_err(|e| e.to_string())?;
    if f.has("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
        println!("({} rows)", table.num_rows());
    }
    Ok(())
}

/// `materialize <graph-file> '<stmt>'`: run a `MATERIALIZE` (or `DROP
/// VIEW`) statement against the graph offline. The engine adopts the
/// graph's `.views` sidecar on open and re-persists it after the
/// statement, so a later `query` or `serve` on the same file starts
/// with the view warm — the offline counterpart of `client
/// --materialize`, analogous to `analyze` priming the `.stats` sidecar.
fn cmd_materialize(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let stmt = f
        .positional
        .get(1)
        .ok_or("missing MATERIALIZE or DROP VIEW statement (quote it as one argument)")?;
    let mut engine =
        QueryEngine::open_with_builtins(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    for def in f.get_all("define") {
        engine
            .catalog_mut()
            .define_or_replace(def)
            .map_err(|e| e.to_string())?;
    }
    if let Some(a) = f.get("algorithm") {
        engine.set_algorithm(parse_algorithm(a)?);
    }
    engine.set_threads(f.parse("threads", 0usize)?);
    let table = engine.execute(stmt).map_err(|e| e.to_string())?;
    print!("{table}");
    if let Some(sidecar) = engine.views_path() {
        println!("wrote {}", sidecar.display());
    }
    Ok(())
}

fn cmd_topk(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let pattern_text = f.get("pattern").ok_or("missing --pattern <DSL>")?;
    let g = load_graph(path)?;
    let p = Pattern::parse(pattern_text).map_err(|e| e.to_string())?;
    let k: u32 = f.parse("k", 2)?;
    let top_n: usize = f.parse("top", 10)?;
    let mut spec = CensusSpec::single(&p, k);
    if let Some(sp) = f.get("subpattern") {
        spec = spec.with_subpattern(sp);
    }
    let threads = ExecConfig::with_threads(f.parse("threads", 0usize)?).resolve();
    let matches = exec_matches(&g, &p, threads);
    let res = topk::top_k_census(&g, &spec, &matches, top_n).map_err(|e| e.to_string())?;
    println!(
        "top {} of {} focal nodes (exactly evaluated: {}):",
        res.top.len(),
        g.num_nodes(),
        res.evaluated
    );
    for (node, count) in &res.top {
        println!("  node {node}: {count}");
    }
    Ok(())
}

fn cmd_mutate(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &["verify"])?;
    let path = f.positional.first().ok_or("missing graph file")?;
    let script = f.get("apply").ok_or("missing --apply '<script>'")?;
    let stmts = parse_mutations(script).map_err(|e| e.to_string())?;
    let base = Arc::new(load_graph(path)?);
    let mut delta = DeltaGraph::new(base.clone());
    let mut changed = 0usize;
    for stmt in &stmts {
        let (a, b) = (NodeId(stmt.a), NodeId(stmt.b));
        let did = match stmt.kind {
            MutationKind::InsertEdge => delta.insert_edge(a, b),
            MutationKind::DeleteEdge => delta.delete_edge(a, b),
        }
        .map_err(|e| e.to_string())?;
        if did {
            changed += 1;
        }
    }
    println!(
        "statements:   {} ({} changed the edge set)",
        stmts.len(),
        changed
    );
    println!("net inserted: {}", delta.added().count());
    println!("net deleted:  {}", delta.removed().count());
    println!(
        "edges:        {} -> {}",
        base.num_edges(),
        delta.num_edges()
    );
    println!(
        "fingerprint:  {:016x} -> {:016x}",
        base.fingerprint(),
        delta.fingerprint()
    );

    let result_graph = if let Some(pattern_text) = f.get("pattern") {
        let algorithm_name = f.get("algorithm").unwrap_or("auto");
        let algorithm = parse_algorithm(algorithm_name)?;
        let exec = ExecConfig::with_threads(f.parse("threads", 0usize)?);
        let config = PtConfig::default();
        let p = Pattern::parse(pattern_text).map_err(|e| e.to_string())?;
        let k: u32 = f.parse("k", 2)?;
        let spec = CensusSpec::single(&p, k);
        let t0 = std::time::Instant::now();
        let previous =
            run_census_exec(&base, &spec, algorithm, &config, &exec).map_err(|e| e.to_string())?;
        let full_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let update = update_census_exec(&delta, &spec, &previous, algorithm, &config, &exec)
            .map_err(|e| e.to_string())?;
        let inc_time = t1.elapsed();
        println!("census `{}` (k={k}, {algorithm_name}):", p.name());
        println!(
            "  dirty focal:  {} of {} ({} reused from the previous run)",
            update.stats.dirty_focal,
            base.num_nodes(),
            update.stats.clean_focal
        );
        println!("  full census:  {:.3}s", full_time.as_secs_f64());
        println!("  incremental:  {:.3}s", inc_time.as_secs_f64());
        if f.has("verify") {
            let fresh = run_census_exec(&update.graph, &spec, algorithm, &config, &exec)
                .map_err(|e| e.to_string())?;
            if update.counts[0] != fresh {
                return Err("incremental counts diverge from full recompute".into());
            }
            println!("  verify:       incremental == full recompute");
        }
        update.graph
    } else {
        delta.compact()
    };
    if let Some(out) = f.get("out") {
        io::save_path(&result_graph, out).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote {} nodes / {} edges to {out}",
            result_graph.num_nodes(),
            result_graph.num_edges()
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &[])?;
    let path = f.positional.first().ok_or("missing graph file")?.clone();
    let addr = f.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let workers: usize = f.parse("workers", 0usize)?;
    if workers > 0 || f.get("attach").is_some() {
        if f.get("shard-of").is_some() {
            return Err("--shard-of configures a worker; it cannot combine with \
                        --workers/--attach (the router assigns shards per query)"
                .into());
        }
        return cmd_serve_router(&f, &path, &addr, workers);
    }
    let cache_mb: usize = f.parse("cache-mb", 64)?;
    let shard = match f.get("shard-of") {
        None => None,
        Some(text) => Some(ShardSpec::parse(text)?),
    };
    // Views persist to the graph's `.views` sidecar by default so a
    // restart is warm; `--views off` keeps the tier in memory only
    // (router-spawned workers run this way — per-shard views from N
    // workers would clobber one shared sidecar file).
    let views_path = match f.get("views") {
        Some("off") => None,
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => Some(egocensus::query::ViewRegistry::sidecar_path(
            std::path::Path::new(&path),
        )),
    };
    let view_budget_mb: usize = f.parse(
        "view-budget-mb",
        egocensus::query::DEFAULT_VIEW_BUDGET >> 20,
    )?;
    let config = ServerConfig {
        pool_threads: f.parse("threads", 4usize)?,
        exec_threads: f.parse("exec-threads", 0usize)?,
        cache_bytes: cache_mb << 20,
        seed: f.parse("seed", 0xC0FFEEu64)?,
        shard,
        algorithm: parse_algorithm(f.get("algorithm").unwrap_or("auto"))?,
        stats_path: Some(GraphStats::sidecar_path(std::path::Path::new(&path))),
        views_path,
        view_budget_bytes: view_budget_mb << 20,
        ..ServerConfig::default()
    };
    let graph = Arc::new(load_graph(&path)?);
    let mut base = Catalog::with_builtins();
    for def in f.get_all("define") {
        base.define_or_replace(def).map_err(|e| e.to_string())?;
    }
    let server = Server::bind(&addr, graph, Arc::new(base), config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts parse this line to learn the ephemeral port; flush past
    // any pipe buffering before blocking in the accept loop.
    println!("listening on {local}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())?;
    println!("server stopped");
    Ok(())
}

/// `serve --workers N` / `serve --attach a,b`: a scatter/gather router
/// in front of a worker fleet. With `--workers` the fleet is spawned
/// here — one `egocensus serve` subprocess per worker, all mapping the
/// same graph file, each bound to an ephemeral port — and torn down
/// when the router stops. With `--attach` the router fronts workers
/// someone else started (e.g. on other machines sharing the file).
fn cmd_serve_router(f: &Flags, path: &str, addr: &str, workers: usize) -> Result<(), String> {
    let (fleet, worker_addrs) = match f.get("attach") {
        Some(list) => {
            let addrs = list
                .split(',')
                .map(|a| {
                    a.trim()
                        .parse::<std::net::SocketAddr>()
                        .map_err(|e| format!("bad --attach address `{a}`: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            (None, addrs)
        }
        None => {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate the egocensus binary: {e}"))?;
            let fleet = WorkerFleet::spawn(workers, |_j| {
                let mut c = std::process::Command::new(&exe);
                c.arg("serve").arg(path).args(["--addr", "127.0.0.1:0"]);
                // Workers keep views in memory: each pins a different
                // focal shard of a view, and N workers persisting to the
                // graph's one shared `.views` sidecar would clobber it.
                c.args(["--views", "off"]);
                for flag in [
                    "threads",
                    "exec-threads",
                    "cache-mb",
                    "seed",
                    "algorithm",
                    "view-budget-mb",
                ] {
                    if let Some(v) = f.get(flag) {
                        c.arg(format!("--{flag}")).arg(v);
                    }
                }
                for def in f.get_all("define") {
                    c.arg("--define").arg(def);
                }
                c
            })
            .map_err(|e| e.to_string())?;
            for w in fleet.infos() {
                println!("worker {} listening on {} (pid {})", w.index, w.addr, w.pid);
            }
            let addrs = fleet.addrs();
            (Some(fleet), addrs)
        }
    };
    let router = Router::bind(addr, &worker_addrs, RouterConfig::default())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = router.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {local}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    router.run().map_err(|e| e.to_string())?;
    drop(fleet); // kill spawned workers before reporting the stop
    println!("server stopped");
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args, &["csv", "analyze", "stats", "shutdown"])?;
    let addr = f.get("addr").unwrap_or("127.0.0.1:7878");
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let print = |resp: Response| -> Result<(), String> {
        match resp {
            Response::Table(t) => {
                let mut table = Table::new(t.columns);
                for row in t.rows {
                    table.push_row(row);
                }
                if f.has("csv") {
                    print!("{}", table.to_csv());
                } else {
                    print!("{table}");
                    println!("({} rows)", table.num_rows());
                }
                Ok(())
            }
            Response::Error { message } => Err(format!("server error: {message}")),
            Response::Notify(_) => unreachable!("request() filters notify frames"),
        }
    };
    for def in f.get_all("define") {
        match client.define(def).map_err(|e| e.to_string())? {
            Response::Table(_) => {}
            Response::Error { message } => return Err(format!("server error: {message}")),
            Response::Notify(_) => unreachable!("request() filters notify frames"),
        }
    }
    for script in f.get_all("update") {
        print(client.update(script).map_err(|e| e.to_string())?)?;
    }
    // Materialize (and drop) before any query so `client --materialize
    // '...' 'SELECT ...'` probes the view it just pinned.
    for stmt in f.get_all("materialize") {
        print(client.materialize(stmt).map_err(|e| e.to_string())?)?;
    }
    for stmt in f.get_all("drop-view") {
        print(client.drop_view(stmt).map_err(|e| e.to_string())?)?;
    }
    // Analyze before any query so `--analyze 'EXPLAIN ...'` shows the
    // cost-model basis the fresh snapshot enables.
    if f.has("analyze") {
        print(client.analyze().map_err(|e| e.to_string())?)?;
    }
    if let Some(sql) = f.positional.first() {
        print(client.query(sql).map_err(|e| e.to_string())?)?;
    }
    if let Some(sql) = f.get("subscribe") {
        let watch_secs: u64 = f.parse("watch", 30u64)?;
        let ack = match client.subscribe(sql).map_err(|e| e.to_string())? {
            Response::Table(t) => t,
            Response::Error { message } => return Err(format!("server error: {message}")),
            Response::Notify(_) => unreachable!("request() filters notify frames"),
        };
        let id = ack.stat("subscription").ok_or("malformed subscribe ack")? as u64;
        print(Response::Table(ack))?;
        println!("watching for {watch_secs}s (updates push changed rows)...");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(watch_secs);
        while std::time::Instant::now() < deadline {
            let frame = client
                .poll_notification(std::time::Duration::from_millis(200))
                .map_err(|e| e.to_string())?;
            let Some(frame) = frame else { continue };
            println!(
                "notify subscription={} generation={}",
                frame.subscription, frame.generation
            );
            // Frame rows are [focal, column, old, new]; `frame.columns`
            // names the subscribed aggregates, not these display columns.
            let mut table =
                Table::new(["FOCAL", "COLUMN", "OLD", "NEW"].map(String::from).to_vec());
            for row in frame.rows {
                table.push_row(row);
            }
            if f.has("csv") {
                print!("{}", table.to_csv());
            } else {
                print!("{table}");
                println!("({} rows)", table.num_rows());
            }
            std::io::stdout().flush().ok();
        }
        client.unsubscribe(id).map_err(|e| e.to_string())?;
    }
    if f.has("stats") {
        print(Response::Table(client.stats().map_err(|e| e.to_string())?))?;
    }
    if f.has("shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("shutdown requested");
    }
    Ok(())
}
