//! Cost-based algorithm selection (`Algorithm::Auto`).
//!
//! Section V's findings: node-driven wins when the pattern is
//! unselective (many matches — Fig 4(c)); pattern-driven wins when the
//! pattern is selective (few matches — Fig 4(d)) and is insensitive to
//! focal selectivity (Fig 4(e)). Both families pay for the global match
//! enumeration anyway, so the chooser runs after it and compares the two
//! cardinalities that drive the asymptotics: |matches| · |V_P| (work per
//! pattern-driven traversal seed) versus |focal| (BFS count for
//! node-driven).

use crate::result::{CensusError, CountVector};
use crate::spec::{CensusSpec, PtConfig};
use ego_graph::Graph;
use ego_matcher::MatchList;

/// Multiplier applied to the focal count: pattern-driven is chosen when
/// `|matches| * |V_P| < PT_FACTOR * |focal|`. The factor reflects that a
/// per-node bounded BFS (ND) is cheaper than a per-match multi-source
/// expansion (PT) of the same radius.
pub const PT_FACTOR: usize = 4;

/// Decide which algorithm `Auto` resolves to (exposed for tests/benches).
pub fn choose(g: &Graph, spec: &CensusSpec<'_>, matches: &MatchList) -> crate::Algorithm {
    let focal = spec.focal().count(g).max(1);
    let match_work = matches.len() * spec.pattern().num_nodes().max(1);
    if match_work < PT_FACTOR * focal {
        crate::Algorithm::PtOpt
    } else {
        crate::Algorithm::NdPivot
    }
}

/// Run the chosen algorithm.
pub fn run_auto(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
) -> Result<CountVector, CensusError> {
    match choose(g, spec, matches) {
        crate::Algorithm::PtOpt => crate::pt_opt::run(g, spec, matches, config),
        _ => crate::nd_pivot::run(g, spec, matches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FocalNodes;
    use crate::{global_matches, Algorithm};
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(30, Label(0));
        for i in 0..29u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        // A single triangle at the start.
        b.add_edge(NodeId(0), NodeId(2));
        b.build()
    }

    #[test]
    fn selective_pattern_chooses_pattern_driven() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        assert_eq!(m.len(), 1);
        let spec = CensusSpec::single(&p, 2);
        assert_eq!(choose(&g, &spec, &m), Algorithm::PtOpt);
    }

    #[test]
    fn unselective_pattern_chooses_node_driven() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        // 30 edges of matches vs 2 focal nodes: node-driven.
        let spec =
            CensusSpec::single(&p, 2).with_focal(FocalNodes::Set(vec![NodeId(0), NodeId(1)]));
        assert_eq!(choose(&g, &spec, &m), Algorithm::NdPivot);
    }

    #[test]
    fn auto_produces_correct_counts_either_way() {
        let g = fixture();
        for pat_text in ["PATTERN t { ?A-?B; ?B-?C; ?A-?C; }", "PATTERN e { ?A-?B; }"] {
            let p = Pattern::parse(pat_text).unwrap();
            let spec = CensusSpec::single(&p, 1);
            let auto = crate::run_census(&g, &spec, Algorithm::Auto).unwrap();
            let oracle = crate::run_census(&g, &spec, Algorithm::NdBaseline).unwrap();
            for n in g.node_ids() {
                assert_eq!(auto.get(n), oracle.get(n), "{pat_text} node {n:?}");
            }
        }
    }
}
