//! PT-OPT: the optimized pattern-driven algorithm (Section IV-B,
//! Algorithm 4) with all five optimizations:
//!
//! 1. **Simultaneous traversal** — one relaxation-based expansion per
//!    cluster of matches maintains `PMD_m[n]`, an upper bound on
//!    `d(m, n)` for every anchor node `m`, instead of one BFS per anchor.
//! 2. **Distance shortcuts** — `PMD` between two anchors of the same
//!    match is initialized from the pattern distance
//!    `d(μ⁻¹(m), μ⁻¹(m'))`, which upper-bounds the graph distance.
//! 3. **Best-first ordering** — the node with minimum
//!    `score(n) = Σ_m PMD_m[n]` is expanded next, via the O(1)
//!    array-bucket queue (scores are bounded by `(k+1)·|anchors|`).
//! 4. **Center-based expansion** — precomputed center distances seed
//!    exact values for the centers and triangle-inequality bounds
//!    `min_c d(m,c) + d(c,n')` for first-touched nodes.
//! 5. **Pattern match clustering** — K-means over center-distance
//!    feature vectors groups overlapping matches into shared traversals.

use crate::centers::CenterIndex;
use crate::clustering::cluster_matches;
use crate::result::{CensusError, CountVector};
use crate::spec::{CensusSpec, PtConfig, PtOrdering};
use crate::tstats::TraversalStats;
use ego_graph::{FastHashMap, Graph, NodeId};
use ego_matcher::MatchList;
use ego_pattern::analysis::{PatternAnalysis, UNREACHABLE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run PT-OPT (or PT-RND, via `config.ordering`) over precomputed matches.
pub fn run(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
) -> Result<CountVector, CensusError> {
    run_instrumented(g, spec, matches, config).map(|(cv, _)| cv)
}

/// [`run`] with traversal-cost instrumentation (edge scans, node
/// expansions, queue reinsertions) — the disk-I/O proxy metrics the
/// paper's optimizations target.
pub fn run_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
) -> Result<(CountVector, TraversalStats), CensusError> {
    let mut tstats = TraversalStats::default();
    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask.clone());
    let Some(plan) = plan(g, spec, matches, config, &mut tstats)? else {
        return Ok((counts, tstats));
    };
    execute_groups(
        g,
        spec.k(),
        &plan,
        matches,
        &plan.groups,
        config,
        &mask,
        &mut counts,
        &mut tstats,
    );
    Ok((counts, tstats))
}

/// The shared, group-independent PT-OPT state: anchors, pattern analysis,
/// the center index for PMD initialization, and the match clustering.
/// Built once (seeded from `config.seed`); group subsets can then be
/// processed in any order — or on any thread — because each group's
/// contribution to the counts is purely additive.
pub(crate) struct PtPlan {
    pub(crate) anchors: Vec<ego_pattern::PNode>,
    pub(crate) analysis: PatternAnalysis,
    pub(crate) centers: CenterIndex,
    pub(crate) groups: Vec<Vec<u32>>,
}

/// Build the [`PtPlan`]: centers + clustering, consuming RNG state exactly
/// as the sequential path always has. Returns `Ok(None)` when there are no
/// matches (nothing to traverse). `tstats` accrues the index build cost.
pub(crate) fn plan(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
    tstats: &mut TraversalStats,
) -> Result<Option<PtPlan>, CensusError> {
    let anchors = spec.anchor_nodes()?;
    if matches.is_empty() {
        return Ok(None);
    }
    let k = spec.k();
    assert!(k < u16::MAX as u32, "k too large for PMD storage");

    let p = spec.pattern();
    let analysis = PatternAnalysis::new(p);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // One center index serves both PMD initialization and clustering
    // features; Fig 4(f) varies the former while pinning the latter.
    let cluster_center_count = config.clustering_centers.unwrap_or(config.num_centers);
    let total = config.num_centers.max(cluster_center_count);
    let full_centers = if total > 0 {
        CenterIndex::build(g, total, config.center_strategy, &mut rng)
    } else {
        CenterIndex::empty()
    };
    tstats.index_edges += full_centers.build_edges();
    let pmd_centers = full_centers.take(config.num_centers);
    let cluster_centers = full_centers.take(cluster_center_count);

    let groups = cluster_matches(
        matches,
        &cluster_centers,
        config.clustering,
        config.max_auto_clusters,
        config.kmeans_iters,
        &mut rng,
    );
    Ok(Some(PtPlan {
        anchors,
        analysis,
        centers: pmd_centers,
        groups,
    }))
}

/// Process a subset of the plan's match groups, accumulating into `counts`
/// and `tstats`. Each group's counting contribution is additive and
/// independent of every other group, so partitioning `plan.groups` across
/// workers and summing the per-worker counts reproduces the sequential
/// result exactly. The RNG only drives pop order under
/// [`PtOrdering::Random`], which cannot change the counts (the relaxation
/// converges to the same fixed point in any order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_groups(
    g: &Graph,
    k: u32,
    plan: &PtPlan,
    matches: &MatchList,
    groups: &[Vec<u32>],
    config: &PtConfig,
    mask: &[bool],
    counts: &mut CountVector,
    tstats: &mut TraversalStats,
) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queue = TraversalQueue::new(config.ordering, &mut rng);
    for group in groups {
        process_cluster(
            g,
            k,
            &plan.anchors,
            &plan.analysis,
            matches,
            group,
            &plan.centers,
            &mut queue,
            mask,
            counts,
            tstats,
            config.use_distance_shortcuts,
        );
    }
}

/// Queue abstraction: bucket best-first (PT-OPT) or random pop (PT-RND).
pub(crate) struct TraversalQueue<'r> {
    pub(crate) ordering: PtOrdering,
    bucket: crate::bucket_queue::BucketQueue,
    random: Vec<u32>,
    rng: &'r mut StdRng,
}

impl<'r> TraversalQueue<'r> {
    pub(crate) fn new(ordering: PtOrdering, rng: &'r mut StdRng) -> Self {
        TraversalQueue {
            ordering,
            bucket: crate::bucket_queue::BucketQueue::new(0),
            random: Vec::new(),
            rng,
        }
    }

    pub(crate) fn reset(&mut self, max_score: usize) {
        match self.ordering {
            PtOrdering::BestFirst => self.bucket = crate::bucket_queue::BucketQueue::new(max_score),
            PtOrdering::Random => self.random.clear(),
        }
    }

    pub(crate) fn push(&mut self, score: usize, item: u32) {
        match self.ordering {
            PtOrdering::BestFirst => self.bucket.push(score, item),
            PtOrdering::Random => self.random.push(item),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(usize, u32)> {
        match self.ordering {
            PtOrdering::BestFirst => self.bucket.pop_min(),
            PtOrdering::Random => {
                if self.random.is_empty() {
                    None
                } else {
                    let i = self.rng.gen_range(0..self.random.len());
                    Some((0, self.random.swap_remove(i)))
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_cluster(
    g: &Graph,
    k: u32,
    anchors: &[ego_pattern::PNode],
    analysis: &PatternAnalysis,
    matches: &MatchList,
    group: &[u32],
    centers: &CenterIndex,
    queue: &mut TraversalQueue<'_>,
    mask: &[bool],
    counts: &mut CountVector,
    tstats: &mut TraversalStats,
    use_distance_shortcuts: bool,
) {
    let inf = (k + 1) as u16;

    // Unique anchor nodes across the cluster, each with a dense position.
    let mut anchor_pos: FastHashMap<u32, u16> = FastHashMap::default();
    let mut anchor_nodes: Vec<NodeId> = Vec::new();
    // Per match in the group: the positions of its anchors.
    let mut match_positions: Vec<Vec<u16>> = Vec::with_capacity(group.len());
    for &mi in group {
        let m = &matches[mi as usize];
        let mut positions = Vec::with_capacity(anchors.len());
        for &a in anchors {
            let img = m.image(a);
            let pos = *anchor_pos.entry(img.0).or_insert_with(|| {
                anchor_nodes.push(img);
                (anchor_nodes.len() - 1) as u16
            });
            positions.push(pos);
        }
        match_positions.push(positions);
    }
    let na = anchor_nodes.len();
    let max_score = (inf as usize) * na;

    // d(anchor, center) matrix for triangle-inequality initialization.
    let anchor_center: Vec<Vec<u32>> = anchor_nodes
        .iter()
        .map(|&a| {
            (0..centers.len())
                .map(|ci| centers.distance(ci, a))
                .collect()
        })
        .collect();

    // PMD: per visited node, per anchor position, current distance bound.
    let mut pmd: FastHashMap<u32, Vec<u16>> = FastHashMap::default();
    // Best known score per node, for lazy stale-entry skipping.
    let mut best_score: FastHashMap<u32, u32> = FastHashMap::default();
    queue.reset(max_score);

    // --- Initialization ---
    // Anchors: distance 0 to themselves, pattern-distance shortcuts to
    // co-match anchors.
    for (pos, &a) in anchor_nodes.iter().enumerate() {
        let mut row = vec![inf; na];
        row[pos] = 0;
        pmd.insert(a.0, row);
    }
    for (gi, &mi) in group.iter().enumerate() {
        if !use_distance_shortcuts {
            break;
        }
        let m = &matches[mi as usize];
        let positions = &match_positions[gi];
        for (ai, &pa) in anchors.iter().enumerate() {
            let img_a = m.image(pa);
            let row = pmd.get_mut(&img_a.0).expect("anchor row exists");
            for (bi, &pb) in anchors.iter().enumerate() {
                if ai == bi {
                    continue;
                }
                let d = analysis.distance(pb, pa);
                if d != UNREACHABLE && (d as u16) < row[positions[bi] as usize] {
                    // PMD_{m_b}[img_a] bound from the pattern graph.
                    row[positions[bi] as usize] = d as u16;
                }
            }
        }
    }
    // Centers: exact distances (never reinserted — relaxation cannot beat
    // an exact value).
    for (ci, &c) in centers.centers().iter().enumerate().take(centers.len()) {
        let row: Vec<u16> = (0..na)
            .map(|pos| {
                let d = anchor_center[pos][ci];
                if d == u32::MAX {
                    inf
                } else {
                    (d as u16).min(inf)
                }
            })
            .collect();
        // Merge (a center may coincide with an anchor).
        match pmd.get_mut(&c.0) {
            Some(existing) => {
                for (e, r) in existing.iter_mut().zip(&row) {
                    *e = (*e).min(*r);
                }
            }
            None => {
                pmd.insert(c.0, row);
            }
        }
    }

    // Queue everything initialized.
    let score_of = |row: &[u16]| -> usize { row.iter().map(|&v| v as usize).sum() };
    let mut seeds: Vec<u32> = pmd.keys().copied().collect();
    seeds.sort_unstable(); // determinism
    for nraw in seeds {
        let s = score_of(&pmd[&nraw]);
        best_score.insert(nraw, s as u32);
        queue.push(s, nraw);
    }

    // --- Traversal ---
    let mut row_buf: Vec<u16> = Vec::with_capacity(na);
    while let Some((popped_score, nraw)) = queue.pop() {
        let row = match pmd.get(&nraw) {
            Some(r) => r,
            None => continue,
        };
        // Lazy stale check (best-first only; random pops carry score 0).
        if matches!(queue.ordering, PtOrdering::BestFirst)
            && best_score.get(&nraw).map(|&s| s as usize) != Some(popped_score)
        {
            continue;
        }
        // Expansion gate: expand only if some anchor is strictly closer
        // than k (otherwise neighbors cannot be within k of anything new).
        if !row.iter().any(|&v| (v as u32) < k) {
            continue;
        }
        tstats.nodes_expanded += 1;
        tstats.edges_traversed += g.degree(NodeId(nraw)) as u64;
        row_buf.clear();
        row_buf.extend_from_slice(row);

        for &nb in g.neighbors(NodeId(nraw)) {
            let entry = pmd.entry(nb.0);
            let mut changed = false;
            let row_nb = match entry {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let r = o.into_mut();
                    for pos in 0..na {
                        let cand = row_buf[pos].saturating_add(1).min(inf);
                        if cand < r[pos] {
                            r[pos] = cand;
                            changed = true;
                        }
                    }
                    r
                }
                std::collections::hash_map::Entry::Vacant(vac) => {
                    // First touch: combine relaxation with center bounds.
                    let mut r = vec![inf; na];
                    for pos in 0..na {
                        let mut v = row_buf[pos].saturating_add(1).min(inf);
                        for (ci, &dac) in anchor_center[pos].iter().enumerate() {
                            let dcn = centers.distance(ci, nb);
                            if dac != u32::MAX && dcn != u32::MAX {
                                let bound = (dac + dcn).min(inf as u32) as u16;
                                if bound < v {
                                    v = bound;
                                }
                            }
                        }
                        r[pos] = v;
                    }
                    changed = true;
                    vac.insert(r)
                }
            };
            if changed {
                let s = score_of(row_nb);
                let stale = best_score
                    .get(&nb.0)
                    .map(|&old| s < old as usize)
                    .unwrap_or(true);
                if stale {
                    if best_score.insert(nb.0, s as u32).is_some() {
                        // Decrease-key on an already-seen node: a
                        // reinsertion in the paper's Figure 2 sense.
                        tstats.reinsertions += 1;
                    }
                    queue.push(s, nb.0);
                }
            }
        }
    }

    // --- Counting ---
    // N[M] = visited nodes within k of every anchor of M, intersected with
    // the focal set.
    for (nraw, row) in &pmd {
        let n = NodeId(*nraw);
        if !mask[n.index()] {
            continue;
        }
        for positions in &match_positions {
            if positions.iter().all(|&pos| row[pos as usize] as u32 <= k) {
                counts.increment(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Clustering, FocalNodes};
    use crate::{global_matches, nd_bas, nd_pivot, CenterStrategy};
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn configs() -> Vec<PtConfig> {
        vec![
            PtConfig::default(),
            PtConfig {
                num_centers: 0,
                clustering: Clustering::None,
                ..PtConfig::default()
            },
            PtConfig {
                num_centers: 3,
                center_strategy: CenterStrategy::Random,
                clustering: Clustering::Random(2),
                ..PtConfig::default()
            },
            PtConfig {
                ordering: PtOrdering::Random,
                ..PtConfig::default()
            },
            PtConfig {
                num_centers: 2,
                clustering: Clustering::KMeans(2),
                ..PtConfig::default()
            },
        ]
    }

    #[test]
    fn agrees_with_nd_bas_across_configs() {
        let g = fixture();
        for pat_text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN e { ?A-?B; }",
            "PATTERN p3 { ?A-?B; ?B-?C; }",
        ] {
            let p = Pattern::parse(pat_text).unwrap();
            let m = global_matches(&g, &p);
            for k in 0..4 {
                let spec = CensusSpec::single(&p, k);
                let oracle = nd_bas::run(&g, &spec).unwrap();
                for (ci, cfg) in configs().iter().enumerate() {
                    let fast = run(&g, &spec, &m, cfg).unwrap();
                    for n in g.node_ids() {
                        assert_eq!(
                            fast.get(n),
                            oracle.get(n),
                            "{pat_text} k={k} cfg={ci} node={n:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn subpattern_agrees_with_nd_pivot() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
        let m = global_matches(&g, &p);
        for k in 0..3 {
            let spec = CensusSpec::single(&p, k).with_subpattern("one");
            let expect = nd_pivot::run(&g, &spec, &m).unwrap();
            let got = run(&g, &spec, &m, &PtConfig::default()).unwrap();
            for n in g.node_ids() {
                assert_eq!(got.get(n), expect.get(n), "k={k} node={n:?}");
            }
        }
    }

    #[test]
    fn focal_mask_respected() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec =
            CensusSpec::single(&p, 2).with_focal(FocalNodes::Set(vec![NodeId(0), NodeId(6)]));
        let counts = run(&g, &spec, &m, &PtConfig::default()).unwrap();
        assert_eq!(counts.get(NodeId(0)), 2);
        assert_eq!(counts.get(NodeId(6)), 0);
        assert_eq!(counts.get(NodeId(2)), 0); // non-focal
    }

    #[test]
    fn empty_matches_short_circuits() {
        let g = fixture();
        let p = Pattern::parse("PATTERN k4 { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let counts = run(&g, &spec, &m, &PtConfig::default()).unwrap();
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn disconnected_graph_components() {
        // Matches in one component must not leak counts into another.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.add_edge(NodeId(3), NodeId(4));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 3);
        let counts = run(&g, &spec, &m, &PtConfig::default()).unwrap();
        assert_eq!(counts.get(NodeId(0)), 1);
        assert_eq!(counts.get(NodeId(3)), 0);
        assert_eq!(counts.get(NodeId(5)), 0);
    }

    #[test]
    fn k_zero_single_anchor() {
        let g = fixture();
        let p = Pattern::parse("PATTERN n { ?A; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 0);
        let counts = run(&g, &spec, &m, &PtConfig::default()).unwrap();
        for n in g.node_ids() {
            assert_eq!(counts.get(n), 1);
        }
    }
}
