//! Pairwise census queries over `SUBGRAPH-INTERSECTION` and
//! `SUBGRAPH-UNION` neighborhoods (Section II + Appendix B).
//!
//! A pairwise query counts, for pairs of nodes `(n1, n2)`, the matches
//! contained in `N_k(n1) ∩ N_k(n2)` (intersection) or `N_k(n1) ∪ N_k(n2)`
//! (union). Used for link prediction and entity resolution; the paper's
//! DBLP experiment (Fig 4(h)) is nine such queries.
//!
//! Algorithms (mirroring the single-node suite):
//! * **ND-BAS** — extract the intersection/union subgraph per pair, match
//!   inside it.
//! * **ND-PVOT** — per the appendix: the per-node BFS is replaced by
//!   per-pair combined distances `max(d1, d2)` (intersection) or
//!   `min(d1, d2)` (union); the pivot index and distance shortcuts apply
//!   unchanged. Per-node `k`-hop lists are computed once and merged per
//!   pair.
//! * **PT-BAS / PT-OPT** — per the appendix: after the match-centric
//!   traversal, a match is credited to every pair in `N[M] × N[M]` for
//!   intersection; for union, visited nodes are grouped by the *coverage
//!   mask* of anchors they reach, and mask pairs whose union covers all
//!   anchors contribute their node pairs.

use crate::centers::CenterIndex;
use crate::result::{CensusError, CountVector};
use crate::spec::{FocalNodes, PtConfig};
use ego_graph::bfs::BfsScratch;
use ego_graph::subgraph::InducedSubgraph;
use ego_graph::{neighborhood, FastHashMap, FastHashSet, Graph, NodeId};
use ego_matcher::{find_matches, MatcherKind};
use ego_pattern::analysis::{PatternAnalysis, UNREACHABLE};
use ego_pattern::{PNode, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Intersection or union semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairKind {
    /// `SUBGRAPH-INTERSECTION(n1, n2, k)`.
    Intersection,
    /// `SUBGRAPH-UNION(n1, n2, k)`.
    Union,
}

/// Which pairs to census.
#[derive(Clone, Debug)]
pub enum PairSelector {
    /// Every unordered pair of distinct nodes (`n1.ID > n2.ID` in SQL).
    AllPairs,
    /// Every unordered pair within a node subset.
    Among(Vec<NodeId>),
    /// An explicit list of pairs (normalized to unordered).
    Pairs(Vec<(NodeId, NodeId)>),
}

impl PairSelector {
    /// Enumerate the selected pairs, normalized `(lo, hi)`, deduplicated.
    pub fn pairs(&self, g: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut out = match self {
            PairSelector::AllPairs => {
                let n = g.num_nodes() as u32;
                let mut v = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
                for a in 0..n {
                    for b in (a + 1)..n {
                        v.push((NodeId(a), NodeId(b)));
                    }
                }
                v
            }
            PairSelector::Among(nodes) => {
                let mut ns = nodes.clone();
                ns.sort_unstable();
                ns.dedup();
                let mut v = Vec::new();
                for i in 0..ns.len() {
                    for j in (i + 1)..ns.len() {
                        v.push((ns[i], ns[j]));
                    }
                }
                v
            }
            PairSelector::Pairs(ps) => ps
                .iter()
                .filter(|(a, b)| a != b)
                .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The set of nodes participating in any selected pair.
    pub fn participants(&self, g: &Graph) -> Vec<NodeId> {
        match self {
            PairSelector::AllPairs => g.node_ids().collect(),
            PairSelector::Among(nodes) => {
                let mut v = nodes.clone();
                v.sort_unstable();
                v.dedup();
                v
            }
            PairSelector::Pairs(ps) => {
                let mut v: Vec<NodeId> = ps.iter().flat_map(|&(a, b)| [a, b]).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }
}

/// A pairwise census query.
#[derive(Clone, Debug)]
pub struct PairCensusSpec<'a> {
    pattern: &'a Pattern,
    k: u32,
    kind: PairKind,
    selector: PairSelector,
    subpattern: Option<String>,
}

impl<'a> PairCensusSpec<'a> {
    /// `COUNTP(pattern, SUBGRAPH-INTERSECTION(n1, n2, k))`.
    pub fn intersection(pattern: &'a Pattern, k: u32, selector: PairSelector) -> Self {
        PairCensusSpec {
            pattern,
            k,
            kind: PairKind::Intersection,
            selector,
            subpattern: None,
        }
    }

    /// `COUNTP(pattern, SUBGRAPH-UNION(n1, n2, k))`.
    pub fn union(pattern: &'a Pattern, k: u32, selector: PairSelector) -> Self {
        PairCensusSpec {
            pattern,
            k,
            kind: PairKind::Union,
            selector,
            subpattern: None,
        }
    }

    /// The pattern.
    pub fn pattern(&self) -> &'a Pattern {
        self.pattern
    }

    /// Radius.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Intersection or union.
    pub fn kind(&self) -> PairKind {
        self.kind
    }

    /// Pair selection.
    pub fn selector(&self) -> &PairSelector {
        &self.selector
    }

    /// Replace the pair selection (used by the parallel layer to restrict
    /// a clone of the spec to one shard of pairs).
    pub fn with_selector(mut self, selector: PairSelector) -> Self {
        self.selector = selector;
        self
    }

    /// `COUNTSP` over pairwise neighborhoods: only the named subpattern's
    /// images must fall inside the intersection/union.
    pub fn with_subpattern(mut self, name: &str) -> Self {
        self.subpattern = Some(name.to_string());
        self
    }

    /// The subpattern name, if any.
    pub fn subpattern_name(&self) -> Option<&str> {
        self.subpattern.as_deref()
    }

    /// Anchor pattern nodes (subpattern members, or all nodes).
    pub fn anchor_nodes(&self) -> Result<Vec<PNode>, CensusError> {
        match &self.subpattern {
            None => Ok(self.pattern.nodes().collect()),
            Some(name) => self
                .pattern
                .subpattern(name)
                .map(|sp| sp.nodes.clone())
                .ok_or_else(|| CensusError::UnknownSubpattern(name.clone())),
        }
    }
}

/// Per-pair counts, keyed by the normalized pair.
#[derive(Clone, Debug, Default)]
pub struct PairCounts {
    map: FastHashMap<u64, u64>,
}

fn pair_key(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo.0 as u64) << 32) | hi.0 as u64
}

impl PairCounts {
    /// The count for `(a, b)` (order-insensitive, 0 if never incremented).
    pub fn get(&self, a: NodeId, b: NodeId) -> u64 {
        self.map.get(&pair_key(a, b)).copied().unwrap_or(0)
    }

    /// Add `delta` to the pair's count.
    pub fn add(&mut self, a: NodeId, b: NodeId, delta: u64) {
        *self.map.entry(pair_key(a, b)).or_insert(0) += delta;
    }

    /// Number of pairs with nonzero counts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pair has a count.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(a, b, count)` with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.map.iter().map(|(&key, &c)| {
            (
                NodeId((key >> 32) as u32),
                NodeId((key & 0xFFFF_FFFF) as u32),
                c,
            )
        })
    }

    /// Add every count of `other` into `self`. Pair shards are disjoint,
    /// so the parallel merge is a plain additive union of the maps.
    pub fn merge_add(&mut self, other: &PairCounts) {
        for (&key, &c) in &other.map {
            *self.map.entry(key).or_insert(0) += c;
        }
    }

    /// The `k` highest-count pairs (ties by pair order).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, NodeId, u64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by_key(|&(a, b, c)| (std::cmp::Reverse(c), a, b));
        v.truncate(k);
        v
    }
}

/// Run a pairwise census query.
pub fn run_pair_census(
    g: &Graph,
    spec: &PairCensusSpec<'_>,
    algorithm: crate::Algorithm,
) -> Result<PairCounts, CensusError> {
    run_pair_census_with(g, spec, algorithm, &PtConfig::default())
}

/// [`run_pair_census`] with explicit pattern-driven tuning.
pub fn run_pair_census_with(
    g: &Graph,
    spec: &PairCensusSpec<'_>,
    algorithm: crate::Algorithm,
    config: &PtConfig,
) -> Result<PairCounts, CensusError> {
    use crate::Algorithm::*;
    match algorithm {
        NdBaseline => nd_bas_pairwise(g, spec),
        NdPivot | NdDiff => nd_pivot_pairwise(g, spec),
        PtBaseline => pt_pairwise(
            g,
            spec,
            &PtConfig {
                num_centers: 0,
                clustering: crate::spec::Clustering::None,
                ..config.clone()
            },
        ),
        PtOpt | Auto => pt_pairwise(g, spec, config),
        PtRandom => pt_pairwise(
            g,
            spec,
            &PtConfig {
                ordering: crate::spec::PtOrdering::Random,
                ..config.clone()
            },
        ),
    }
}

/// ND-BAS, pairwise: extract each pair's neighborhood subgraph and match.
fn nd_bas_pairwise(g: &Graph, spec: &PairCensusSpec<'_>) -> Result<PairCounts, CensusError> {
    let p = spec.pattern();
    if spec.subpattern_name().is_some() {
        return Err(CensusError::Unsupported(
            "pairwise ND-BAS cannot evaluate COUNTSP; use ND-PVOT or PT".into(),
        ));
    }
    if !p.node_predicates().is_empty() || !p.edge_predicates().is_empty() {
        return Err(CensusError::Unsupported(
            "pairwise ND-BAS supports structural/label patterns only".into(),
        ));
    }
    let mut counts = PairCounts::default();
    let mut scratch = BfsScratch::new(g.num_nodes());
    for (a, b) in spec.selector().pairs(g) {
        let nodes = match spec.kind() {
            PairKind::Intersection => {
                neighborhood::khop_intersection(g, &mut scratch, a, b, spec.k())
            }
            PairKind::Union => neighborhood::khop_union(g, &mut scratch, a, b, spec.k()),
        };
        if nodes.len() < p.num_nodes() {
            continue;
        }
        let sub = InducedSubgraph::extract(g, &nodes);
        let m = find_matches(&sub.graph, p, MatcherKind::CandidateNeighbors);
        if !m.is_empty() {
            counts.add(a, b, m.len() as u64);
        }
    }
    Ok(counts)
}

/// ND-PVOT, pairwise (Appendix B): per-node k-hop lists computed once,
/// combined per pair with max/min distances.
fn nd_pivot_pairwise(g: &Graph, spec: &PairCensusSpec<'_>) -> Result<PairCounts, CensusError> {
    let p = spec.pattern();
    let k = spec.k();
    let anchors: Vec<PNode> = spec.anchor_nodes()?;
    let analysis = PatternAnalysis::with_pivot_candidates(p, Some(&anchors));
    let pivot = analysis.pivot();
    let mut max_v = 0u32;
    let mut has_unreachable = false;
    for &a in &anchors {
        match analysis.distance(pivot, a) {
            UNREACHABLE => has_unreachable = true,
            d => max_v = max_v.max(d),
        }
    }

    let matches = find_matches(g, p, MatcherKind::CandidateNeighbors);
    let pmi = crate::nd_pivot::PivotIndex::build(&matches, pivot);

    // Per participant: sorted (node, dist) k-hop list.
    let participants = spec.selector().participants(g);
    let mut khop: FastHashMap<u32, Vec<(NodeId, u16)>> = FastHashMap::default();
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut buf = Vec::new();
    for &n in &participants {
        buf.clear();
        scratch.bounded_bfs(g, n, k, &mut buf);
        let mut list: Vec<(NodeId, u16)> = buf
            .iter()
            .map(|&m| (m, scratch.distance(m) as u16))
            .collect();
        list.sort_unstable();
        khop.insert(n.0, list);
    }

    let mut counts = PairCounts::default();
    let mut combined: Vec<(NodeId, u16)> = Vec::new();
    for (a, b) in spec.selector().pairs(g) {
        let la = &khop[&a.0];
        let lb = &khop[&b.0];
        combined.clear();
        merge_pair(la, lb, spec.kind(), &mut combined);
        if combined.is_empty() {
            continue;
        }
        // Membership set for explicit containment checks.
        let member: FastHashSet<u32> = combined.iter().map(|&(n, _)| n.0).collect();
        let mut total = 0u64;
        for &(np, d) in &combined {
            let bucket = pmi.get(np);
            if bucket.is_empty() {
                continue;
            }
            if !has_unreachable && d as u32 + max_v <= k {
                total += bucket.len() as u64;
            } else {
                for &mi in bucket {
                    let m = &matches[mi as usize];
                    // Anchors at pattern distance > k - d can stick out of
                    // BOTH/EITHER ball; checking membership in the combined
                    // set is exact for both kinds.
                    let ok = anchors.iter().all(|&x| {
                        let dp = analysis.distance(pivot, x);
                        if dp != UNREACHABLE && dp + d as u32 <= k {
                            true
                        } else {
                            member.contains(&m.image(x).0)
                        }
                    });
                    if ok {
                        total += 1;
                    }
                }
            }
        }
        if total > 0 {
            counts.add(a, b, total);
        }
    }
    Ok(counts)
}

/// Merge two sorted (node, dist) lists under intersection (max) or union
/// (min) distance semantics.
fn merge_pair(
    la: &[(NodeId, u16)],
    lb: &[(NodeId, u16)],
    kind: PairKind,
    out: &mut Vec<(NodeId, u16)>,
) {
    let (mut i, mut j) = (0, 0);
    match kind {
        PairKind::Intersection => {
            while i < la.len() && j < lb.len() {
                match la[i].0.cmp(&lb[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push((la[i].0, la[i].1.max(lb[j].1)));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        PairKind::Union => {
            while i < la.len() || j < lb.len() {
                if j >= lb.len() || (i < la.len() && la[i].0 < lb[j].0) {
                    out.push(la[i]);
                    i += 1;
                } else if i >= la.len() || lb[j].0 < la[i].0 {
                    out.push(lb[j]);
                    j += 1;
                } else {
                    out.push((la[i].0, la[i].1.min(lb[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Pattern-driven pairwise evaluation: run the single-node PT machinery to
/// get per-node anchor distances, then credit pairs.
fn pt_pairwise(
    g: &Graph,
    spec: &PairCensusSpec<'_>,
    config: &PtConfig,
) -> Result<PairCounts, CensusError> {
    let p = spec.pattern();
    let k = spec.k();
    let matches = find_matches(g, p, MatcherKind::CandidateNeighbors);
    let mut counts = PairCounts::default();
    if matches.is_empty() {
        return Ok(counts);
    }
    let anchors: Vec<PNode> = spec.anchor_nodes()?;
    assert!(anchors.len() <= 32, "pattern too large for coverage masks");
    let analysis = PatternAnalysis::new(p);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let centers = if config.num_centers > 0 {
        CenterIndex::build(g, config.num_centers, config.center_strategy, &mut rng)
    } else {
        CenterIndex::empty()
    };
    let groups = crate::clustering::cluster_matches(
        &matches,
        &centers,
        config.clustering,
        config.max_auto_clusters,
        config.kmeans_iters,
        &mut rng,
    );

    // Allowed participants & explicit pair restriction.
    let allowed: FastHashSet<u32> = spec
        .selector()
        .participants(g)
        .iter()
        .map(|n| n.0)
        .collect();
    let explicit_pairs: Option<FastHashSet<u64>> = match spec.selector() {
        PairSelector::Pairs(ps) => Some(ps.iter().map(|&(a, b)| pair_key(a, b)).collect()),
        _ => None,
    };
    let pair_ok = |a: NodeId, b: NodeId| -> bool {
        match &explicit_pairs {
            Some(set) => set.contains(&pair_key(a, b)),
            None => true,
        }
    };

    // Reuse the single-node PT-OPT counting by running its traversal per
    // cluster via the CensusSpec plumbing is not possible (it aggregates);
    // instead run a local traversal per match group.
    let full_mask: u32 = if anchors.len() == 32 {
        u32::MAX
    } else {
        (1u32 << anchors.len()) - 1
    };

    let _ = &analysis; // pattern distances upper-bound graph distances;
                       // exact per-anchor BFS supersedes them here.
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut buf = Vec::new();
    for group in &groups {
        // Shared traversal within the cluster: matches grouped by the
        // K-means step overlap heavily, so each distinct anchor image is
        // BFSed once for the whole group instead of once per match —
        // this is where clustering pays off for pairwise queries.
        let mut ball_cache: FastHashMap<u32, Vec<NodeId>> = FastHashMap::default();
        for &mi in group {
            let m = &matches[mi as usize];
            for &a in &anchors {
                let img = m.image(a);
                if let std::collections::hash_map::Entry::Vacant(vac) = ball_cache.entry(img.0) {
                    buf.clear();
                    scratch.bounded_bfs(g, img, k, &mut buf);
                    let mut ball: Vec<NodeId> = buf
                        .iter()
                        .copied()
                        .filter(|n| allowed.contains(&n.0))
                        .collect();
                    ball.sort_unstable();
                    vac.insert(ball);
                }
            }
        }
        for &mi in group {
            let m = &matches[mi as usize];
            match spec.kind() {
                PairKind::Intersection => {
                    // Chain of sorted intersections over the anchor balls —
                    // no per-node hashing needed for this kind.
                    let mut balls: Vec<&[NodeId]> = anchors
                        .iter()
                        .map(|&a| ball_cache[&m.image(a).0].as_slice())
                        .collect();
                    // Anchor images within a match are distinct, so the
                    // balls are distinct; start from the smallest.
                    balls.sort_by_key(|b| b.len());
                    let mut full: Vec<NodeId> = balls[0].to_vec();
                    let mut tmp: Vec<NodeId> = Vec::new();
                    let mut sstats = ego_graph::setops::SetOpStats::default();
                    for b in &balls[1..] {
                        if full.is_empty() {
                            break;
                        }
                        ego_graph::setops::intersect_into(&full, b, &mut tmp, &mut sstats);
                        std::mem::swap(&mut full, &mut tmp);
                    }
                    for i in 0..full.len() {
                        for j in (i + 1)..full.len() {
                            if pair_ok(full[i], full[j]) {
                                counts.add(full[i], full[j], 1);
                            }
                        }
                    }
                }
                PairKind::Union => {
                    let mut cover: FastHashMap<u32, u32> = FastHashMap::default();
                    for (ai, &a) in anchors.iter().enumerate() {
                        let img = m.image(a);
                        for &n in &ball_cache[&img.0] {
                            *cover.entry(n.0).or_insert(0) |= 1 << ai;
                        }
                    }
                    // Group nodes by coverage mask; pairs of masks whose
                    // union covers every anchor contribute. Nodes covering
                    // NO anchor still pair with full-coverage nodes (the
                    // other endpoint alone satisfies the union), so the
                    // implicit mask-0 group must be materialized.
                    let mut by_mask: FastHashMap<u32, Vec<NodeId>> = FastHashMap::default();
                    for (&n, &mask) in &cover {
                        by_mask.entry(mask).or_default().push(NodeId(n));
                    }
                    if by_mask.contains_key(&full_mask) && full_mask != 0 {
                        let zero_group: Vec<NodeId> = allowed
                            .iter()
                            .filter(|raw| !cover.contains_key(raw))
                            .map(|&raw| NodeId(raw))
                            .collect();
                        if !zero_group.is_empty() {
                            by_mask.entry(0).or_default().extend(zero_group);
                        }
                    }
                    let mut masks: Vec<u32> = by_mask.keys().copied().collect();
                    masks.sort_unstable();
                    for (i, &ma) in masks.iter().enumerate() {
                        for &mb in &masks[i..] {
                            if ma | mb != full_mask {
                                continue;
                            }
                            let ga = &by_mask[&ma];
                            if ma == mb {
                                for x in 0..ga.len() {
                                    for y in (x + 1)..ga.len() {
                                        if pair_ok(ga[x], ga[y]) {
                                            counts.add(ga[x], ga[y], 1);
                                        }
                                    }
                                }
                            } else {
                                let gb = &by_mask[&mb];
                                for &x in ga {
                                    for &y in gb {
                                        if x != y && pair_ok(x, y) {
                                            counts.add(x, y, 1);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(counts)
}

/// Convenience wrapper: the Jaccard coefficient of two nodes' 1-hop
/// neighborhoods, expressible as two census queries (node-pattern counts
/// over intersection and union), computed directly (Section I notes this
/// equivalence).
pub fn jaccard(g: &Graph, a: NodeId, b: NodeId) -> f64 {
    let na = g.neighbors(a);
    let nb = g.neighbors(b);
    let inter = neighborhood::intersect_sorted(na, nb).len();
    let uni = na.len() + nb.len() - inter;
    if uni == 0 {
        0.0
    } else {
        inter as f64 / uni as f64
    }
}

/// Single-node-census view of a pairwise result: fix `a` and produce the
/// counts of `(a, x)` for all `x` as a [`CountVector`] (useful for tests).
pub fn slice_for(g: &Graph, counts: &PairCounts, a: NodeId) -> CountVector {
    let spec_mask = FocalNodes::All.mask(g);
    let mut cv = CountVector::new(g.num_nodes(), spec_mask);
    for n in g.node_ids() {
        if n != a {
            cv.set(n, counts.get(a, n));
        }
    }
    cv
}

/// Validation helper shared by tests: a CensusSpec whose neighborhood is
/// the pair's intersection/union — evaluated by brute force (used as the
/// differential-testing oracle for the fast paths).
pub fn brute_force_pair(
    g: &Graph,
    p: &Pattern,
    k: u32,
    kind: PairKind,
    a: NodeId,
    b: NodeId,
) -> u64 {
    brute_force_pair_anchored(g, p, k, kind, a, b, &p.nodes().collect::<Vec<_>>())
}

/// [`brute_force_pair`] restricted to subpattern anchors.
pub fn brute_force_pair_anchored(
    g: &Graph,
    p: &Pattern,
    k: u32,
    kind: PairKind,
    a: NodeId,
    b: NodeId,
    anchors: &[PNode],
) -> u64 {
    let mut scratch = BfsScratch::new(g.num_nodes());
    let nodes = match kind {
        PairKind::Intersection => neighborhood::khop_intersection(g, &mut scratch, a, b, k),
        PairKind::Union => neighborhood::khop_union(g, &mut scratch, a, b, k),
    };
    let member: FastHashSet<u32> = nodes.iter().map(|n| n.0).collect();
    let matches = find_matches(g, p, MatcherKind::CandidateNeighbors);
    matches
        .iter()
        .filter(|m| anchors.iter().all(|&v| member.contains(&m.image(v).0)))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use ego_graph::{GraphBuilder, Label};

    /// Two triangles sharing node 2 plus chain 4-5-6.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn all_algorithms_agree_with_brute_force() {
        let g = fixture();
        for pat_text in [
            "PATTERN n { ?A; }",
            "PATTERN e { ?A-?B; }",
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
        ] {
            let p = Pattern::parse(pat_text).unwrap();
            for kind in [PairKind::Intersection, PairKind::Union] {
                for k in 1..3u32 {
                    let spec = match kind {
                        PairKind::Intersection => {
                            PairCensusSpec::intersection(&p, k, PairSelector::AllPairs)
                        }
                        PairKind::Union => PairCensusSpec::union(&p, k, PairSelector::AllPairs),
                    };
                    for algo in [
                        Algorithm::NdBaseline,
                        Algorithm::NdPivot,
                        Algorithm::PtBaseline,
                        Algorithm::PtOpt,
                    ] {
                        let counts = run_pair_census(&g, &spec, algo).unwrap();
                        for a in g.node_ids() {
                            for b in g.node_ids() {
                                if b <= a {
                                    continue;
                                }
                                let want = brute_force_pair(&g, &p, k, kind, a, b);
                                assert_eq!(
                                    counts.get(a, b),
                                    want,
                                    "{pat_text} {kind:?} k={k} {algo:?} pair=({a},{b})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_pair_selector() {
        let g = fixture();
        let p = Pattern::parse("PATTERN n { ?A; }").unwrap();
        let spec = PairCensusSpec::intersection(
            &p,
            1,
            PairSelector::Pairs(vec![(NodeId(1), NodeId(3)), (NodeId(3), NodeId(1))]),
        );
        let counts = run_pair_census(&g, &spec, Algorithm::NdPivot).unwrap();
        // N_1(1) = {0,1,2}, N_1(3) = {2,3,4} -> intersection {2}.
        assert_eq!(counts.get(NodeId(1), NodeId(3)), 1);
        assert_eq!(counts.get(NodeId(3), NodeId(1)), 1);
        assert_eq!(counts.len(), 1); // dedup of the reversed pair
    }

    #[test]
    fn among_selector_counts_only_members() {
        let g = fixture();
        let p = Pattern::parse("PATTERN n { ?A; }").unwrap();
        let spec = PairCensusSpec::intersection(
            &p,
            1,
            PairSelector::Among(vec![NodeId(0), NodeId(1), NodeId(2)]),
        );
        let counts = run_pair_census(&g, &spec, Algorithm::PtOpt).unwrap();
        for (a, b, _) in counts.iter() {
            assert!(a.0 <= 2 && b.0 <= 2, "unexpected pair ({a},{b})");
        }
        assert!(counts.get(NodeId(0), NodeId(1)) > 0);
    }

    #[test]
    fn top_k_pairs() {
        let g = fixture();
        let p = Pattern::parse("PATTERN n { ?A; }").unwrap();
        let spec = PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs);
        let counts = run_pair_census(&g, &spec, Algorithm::NdPivot).unwrap();
        let top = counts.top_k(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].2 >= top[1].2 && top[1].2 >= top[2].2);
    }

    #[test]
    fn jaccard_values() {
        let g = fixture();
        // N(0) = {1,2}, N(4) = {2,3,5}: intersection {2}, union {1,2,3,5}.
        assert!((jaccard(&g, NodeId(0), NodeId(4)) - 0.25).abs() < 1e-12);
        assert_eq!(jaccard(&g, NodeId(6), NodeId(6)), 1.0);
        // Disconnected singleton vs anything.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(2, Label(0));
        let g2 = b.build();
        assert_eq!(jaccard(&g2, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn pairwise_countsp_agrees_with_brute_force() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
        let anchors = vec![p.node_by_name("A").unwrap()];
        for kind in [PairKind::Intersection, PairKind::Union] {
            let spec = match kind {
                PairKind::Intersection => {
                    PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs)
                }
                PairKind::Union => PairCensusSpec::union(&p, 1, PairSelector::AllPairs),
            }
            .with_subpattern("one");
            for algo in [Algorithm::NdPivot, Algorithm::PtOpt, Algorithm::PtBaseline] {
                let counts = run_pair_census(&g, &spec, algo).unwrap();
                for a in g.node_ids() {
                    for b in g.node_ids() {
                        if b <= a {
                            continue;
                        }
                        let want = brute_force_pair_anchored(&g, &p, 1, kind, a, b, &anchors);
                        assert_eq!(counts.get(a, b), want, "{kind:?} {algo:?} pair=({a},{b})");
                    }
                }
            }
        }
        // ND-BAS rejects COUNTSP.
        let spec =
            PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs).with_subpattern("one");
        assert!(run_pair_census(&g, &spec, Algorithm::NdBaseline).is_err());
        // Unknown subpattern rejected.
        let bad =
            PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs).with_subpattern("nope");
        assert!(run_pair_census(&g, &bad, Algorithm::NdPivot).is_err());
    }

    #[test]
    fn union_counts_superset_of_intersection() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let si = PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs);
        let su = PairCensusSpec::union(&p, 1, PairSelector::AllPairs);
        let ci = run_pair_census(&g, &si, Algorithm::NdPivot).unwrap();
        let cu = run_pair_census(&g, &su, Algorithm::NdPivot).unwrap();
        for a in g.node_ids() {
            for b in g.node_ids() {
                if b <= a {
                    continue;
                }
                assert!(cu.get(a, b) >= ci.get(a, b), "pair ({a},{b})");
            }
        }
    }
}
