//! Parallel census evaluation (an extension beyond the paper).
//!
//! ND-PVOT's per-focal-node work is embarrassingly parallel once the
//! global match set and pivot index are built: each thread gets a shard
//! of the focal nodes and its own BFS scratch. Counts are merged by
//! disjointness (each node belongs to exactly one shard). Uses
//! `std::thread::scope` — no extra dependencies.

use crate::result::{CensusError, CountVector};
use crate::spec::{CensusSpec, FocalNodes};
use ego_graph::Graph;
use ego_matcher::MatchList;

/// Run ND-PVOT with `threads` worker threads. Results are identical to
/// the sequential [`crate::nd_pivot::run`].
pub fn run_nd_pivot_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<CountVector, CensusError> {
    let threads = threads.max(1);
    let focal = spec.focal().nodes(g);
    if threads == 1 || focal.len() < 2 * threads {
        return crate::nd_pivot::run(g, spec, matches);
    }
    spec.validate(g)?;

    let chunk = focal.len().div_ceil(threads);
    let shards: Vec<&[ego_graph::NodeId]> = focal.chunks(chunk).collect();

    let results: Vec<Result<CountVector, CensusError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard_spec = CensusSpec::single(spec.pattern(), spec.k())
                    .with_focal(FocalNodes::Set(shard.to_vec()));
                let shard_spec = match spec.subpattern_name() {
                    Some(name) => shard_spec.with_subpattern(name),
                    None => shard_spec,
                };
                scope.spawn(move || crate::nd_pivot::run(g, &shard_spec, matches))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("census worker panicked"))
            .collect()
    });

    let mask = spec.focal().mask(g);
    let mut merged = CountVector::new(g.num_nodes(), mask);
    for r in results {
        let cv = r?;
        for (n, c) in cv.iter_focal() {
            merged.set(n, c);
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_matches;
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;

    fn ring_with_chords(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n as usize, Label(0));
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 2) % n));
        }
        b.build()
    }

    #[test]
    fn matches_sequential_results() {
        let g = ring_with_chords(64);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let seq = crate::nd_pivot::run(&g, &spec, &m).unwrap();
        for threads in [2, 3, 8] {
            let par = run_nd_pivot_parallel(&g, &spec, &m, threads).unwrap();
            for n in g.node_ids() {
                assert_eq!(par.get(n), seq.get(n), "threads={threads} node={n:?}");
            }
        }
    }

    #[test]
    fn small_focal_set_falls_back() {
        let g = ring_with_chords(16);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1)
            .with_focal(FocalNodes::Set(vec![NodeId(3)]));
        let cv = run_nd_pivot_parallel(&g, &spec, &m, 8).unwrap();
        assert!(cv.get(NodeId(3)) > 0);
    }

    #[test]
    fn subpattern_parallel() {
        let g = ring_with_chords(32);
        let p = Pattern::parse(
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN s {?A;} }",
        )
        .unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1).with_subpattern("s");
        let seq = crate::nd_pivot::run(&g, &spec, &m).unwrap();
        let par = run_nd_pivot_parallel(&g, &spec, &m, 4).unwrap();
        for n in g.node_ids() {
            assert_eq!(par.get(n), seq.get(n));
        }
    }
}
