//! Unified parallel census execution (an extension beyond the paper).
//!
//! Every algorithm family has a natural unit of independent work, and all
//! of them merge by plain addition — so each gains a deterministic
//! parallel path whose counts are **bit-identical** to the sequential run:
//!
//! * **ND-BAS / ND-PVOT / ND-DIFF** — per-focal-node counts depend only on
//!   that node's neighborhood, so the focal set is sharded and each worker
//!   runs the sequential algorithm on a shard-restricted clone of the
//!   spec (all other spec fields — subpattern, radius, pattern —
//!   preserved verbatim). ND-DIFF keeps its differential chain *within*
//!   each shard, with a per-worker BFS scratch.
//! * **PT-BAS** — each match contributes independent `+1`s, so the match
//!   list is split into contiguous ranges and per-range counts are summed.
//! * **PT-OPT / PT-RND** — the seeded plan (centers + clustering) is built
//!   once; each match *group*'s traversal contribution is additive, so
//!   groups are partitioned across workers. The PMD relaxation converges
//!   to the same fixed point in any pop order, so even PT-RND's
//!   thread-local RNGs cannot change the counts (only queue-order cost
//!   metrics such as reinsertions may shift).
//! * **Pairwise INTERSECTION / UNION** — per-pair counts are independent
//!   of which other pairs are in the selector, so the normalized pair list
//!   is sharded into explicit [`PairSelector::Pairs`] sub-queries.
//!
//! Traversal statistics merge with [`TraversalStats::add`]. For the
//! shard/range/group parallel paths the totals equal the sequential run's
//! (the same work is done, just partitioned); ND-DIFF is the exception —
//! restarting the chain at each shard boundary does genuinely different
//! (slightly more) traversal work, which the stats report faithfully.
//!
//! Uses `std::thread::scope` — no extra dependencies.

use crate::result::{CensusError, CountVector};
use crate::spec::{CensusSpec, FocalNodes, PtConfig, PtOrdering};
use crate::tstats::TraversalStats;
use crate::Algorithm;
use ego_graph::{Graph, NodeId};
use ego_matcher::MatchList;
use ego_pattern::Pattern;

/// How a census query is executed: thread count (and room for future
/// execution knobs such as shard granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads. `0` means "auto": resolve to
    /// `std::thread::available_parallelism()` at run time.
    pub threads: usize,
}

impl ExecConfig {
    /// Single-threaded execution (exactly the sequential code paths).
    pub fn sequential() -> Self {
        ExecConfig { threads: 1 }
    }

    /// Use every available hardware thread.
    pub fn auto() -> Self {
        ExecConfig { threads: 0 }
    }

    /// Use exactly `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig { threads }
    }

    /// The concrete worker count this config resolves to.
    pub fn resolve(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::auto()
    }
}

/// Compute the global match list, using the parallel matcher when more
/// than one thread is available. The embedding set (and hence the
/// deduplicated match list) is identical to the sequential matcher's.
pub fn exec_matches(g: &Graph, p: &Pattern, threads: usize) -> MatchList {
    if threads > 1 {
        MatchList::from_embeddings(p, ego_matcher::parallel::enumerate_parallel(g, p, threads))
    } else {
        crate::global_matches(g, p)
    }
}

/// Run any census algorithm under an [`ExecConfig`]. Counts are identical
/// to [`crate::run_census_with`] for every algorithm and thread count.
pub fn run_census_exec(
    g: &Graph,
    spec: &CensusSpec<'_>,
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<CountVector, CensusError> {
    run_census_exec_instrumented(g, spec, algorithm, config, exec).map(|(cv, _)| cv)
}

/// [`run_census_exec`] with merged per-thread traversal statistics.
pub fn run_census_exec_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<(CountVector, TraversalStats), CensusError> {
    spec.validate(g)?;
    let threads = exec.resolve();
    if algorithm == Algorithm::NdBaseline {
        // ND-BAS needs no global match phase.
        return run_nd_bas_parallel(g, spec, threads).map(|cv| (cv, TraversalStats::default()));
    }
    let matches = exec_matches(g, spec.pattern(), threads);
    match algorithm {
        Algorithm::NdBaseline => unreachable!("handled above"),
        Algorithm::NdPivot => run_nd_pivot_parallel_instrumented(g, spec, &matches, threads),
        Algorithm::NdDiff => run_nd_diff_parallel_instrumented(g, spec, &matches, threads),
        Algorithm::PtBaseline => run_pt_bas_parallel_instrumented(g, spec, &matches, threads),
        Algorithm::PtOpt => run_pt_opt_parallel_instrumented(g, spec, &matches, config, threads),
        Algorithm::PtRandom => {
            let cfg = PtConfig {
                ordering: PtOrdering::Random,
                ..config.clone()
            };
            run_pt_opt_parallel_instrumented(g, spec, &matches, &cfg, threads)
        }
        Algorithm::Auto => match crate::chooser::choose(g, spec, &matches) {
            Algorithm::PtOpt => {
                run_pt_opt_parallel_instrumented(g, spec, &matches, config, threads)
            }
            _ => run_nd_pivot_parallel_instrumented(g, spec, &matches, threads),
        },
    }
}

/// Shard the focal set and run `run_shard` on a spec clone restricted to
/// each shard. `run_shard(spec)` must produce counts that depend only on
/// the spec's own focal nodes; shard counts then merge by addition
/// (shards are disjoint, so each node is written by exactly one worker).
fn focal_shard_run<F>(
    g: &Graph,
    spec: &CensusSpec<'_>,
    threads: usize,
    run_shard: F,
) -> Result<(CountVector, TraversalStats), CensusError>
where
    F: Fn(&CensusSpec<'_>) -> Result<(CountVector, TraversalStats), CensusError> + Sync,
{
    let threads = threads.max(1);
    let focal = spec.focal().nodes(g);
    if threads == 1 || focal.len() < 2 * threads {
        return run_shard(spec);
    }
    spec.validate(g)?;

    let chunk = focal.len().div_ceil(threads);
    let shards: Vec<&[NodeId]> = focal.chunks(chunk).collect();

    let results: Vec<Result<(CountVector, TraversalStats), CensusError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    // Clone the whole spec so every field (subpattern,
                    // radius, pattern — and anything added later) carries
                    // over; only the focal set is overridden.
                    let shard_spec = spec.clone().with_focal(FocalNodes::Set(shard.to_vec()));
                    let run_shard = &run_shard;
                    scope.spawn(move || run_shard(&shard_spec))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("census worker panicked"))
                .collect()
        });

    let mask = spec.focal().mask(g);
    let mut merged = CountVector::new(g.num_nodes(), mask);
    let mut tstats = TraversalStats::default();
    for r in results {
        let (cv, ts) = r?;
        merged.merge_add(&cv);
        tstats.add(&ts);
    }
    Ok((merged, tstats))
}

/// Run ND-BAS with `threads` workers over focal shards. Identical counts
/// to the sequential [`crate::nd_bas::run`].
pub fn run_nd_bas_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    threads: usize,
) -> Result<CountVector, CensusError> {
    focal_shard_run(g, spec, threads, |s| {
        crate::nd_bas::run(g, s).map(|cv| (cv, TraversalStats::default()))
    })
    .map(|(cv, _)| cv)
}

/// Run ND-PVOT with `threads` worker threads. Results are identical to
/// the sequential [`crate::nd_pivot::run`].
pub fn run_nd_pivot_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<CountVector, CensusError> {
    run_nd_pivot_parallel_instrumented(g, spec, matches, threads).map(|(cv, _)| cv)
}

/// [`run_nd_pivot_parallel`] with merged per-thread traversal statistics.
pub fn run_nd_pivot_parallel_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<(CountVector, TraversalStats), CensusError> {
    focal_shard_run(g, spec, threads, |s| {
        crate::nd_pivot::run_instrumented(g, s, matches)
    })
}

/// Run ND-DIFF with `threads` workers: each shard runs its own
/// differential chain (per-worker BFS scratch), which restarts at the
/// shard boundary but produces exactly the sequential counts — each
/// node's count is its neighborhood's match total regardless of how the
/// chain reached it.
pub fn run_nd_diff_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<CountVector, CensusError> {
    run_nd_diff_parallel_instrumented(g, spec, matches, threads).map(|(cv, _)| cv)
}

/// [`run_nd_diff_parallel`] with merged per-thread traversal statistics.
pub fn run_nd_diff_parallel_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<(CountVector, TraversalStats), CensusError> {
    focal_shard_run(g, spec, threads, |s| {
        crate::nd_diff::run_instrumented(g, s, matches)
    })
}

/// Run PT-BAS with `threads` workers over contiguous match ranges.
/// Identical counts to the sequential [`crate::pt_bas::run`].
pub fn run_pt_bas_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<CountVector, CensusError> {
    run_pt_bas_parallel_instrumented(g, spec, matches, threads).map(|(cv, _)| cv)
}

/// [`run_pt_bas_parallel`] with merged per-thread traversal statistics.
pub fn run_pt_bas_parallel_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    threads: usize,
) -> Result<(CountVector, TraversalStats), CensusError> {
    let threads = threads.max(1);
    let n = matches.len();
    if threads == 1 || n < 2 * threads {
        return crate::pt_bas::run_instrumented(g, spec, matches);
    }
    spec.validate(g)?;

    let chunk = n.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();

    let results: Vec<Result<(CountVector, TraversalStats), CensusError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        crate::pt_bas::run_range_instrumented(g, spec, matches, range)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("census worker panicked"))
                .collect()
        });

    let mut merged = CountVector::new(g.num_nodes(), spec.focal().mask(g));
    let mut tstats = TraversalStats::default();
    for r in results {
        let (cv, ts) = r?;
        merged.merge_add(&cv);
        tstats.add(&ts);
    }
    Ok((merged, tstats))
}

/// Run PT-OPT (or PT-RND via `config.ordering`) with `threads` workers
/// over partitions of the match clustering. The seeded plan (centers +
/// K-means groups) is built once, exactly as the sequential path builds
/// it; group traversals then contribute additively. Identical counts to
/// the sequential [`crate::pt_opt::run`].
pub fn run_pt_opt_parallel(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
    threads: usize,
) -> Result<CountVector, CensusError> {
    run_pt_opt_parallel_instrumented(g, spec, matches, config, threads).map(|(cv, _)| cv)
}

/// [`run_pt_opt_parallel`] with merged per-thread traversal statistics.
pub fn run_pt_opt_parallel_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    config: &PtConfig,
    threads: usize,
) -> Result<(CountVector, TraversalStats), CensusError> {
    let threads = threads.max(1);
    let mut tstats = TraversalStats::default();
    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask.clone());
    let Some(plan) = crate::pt_opt::plan(g, spec, matches, config, &mut tstats)? else {
        return Ok((counts, tstats));
    };
    if threads == 1 || plan.groups.len() < 2 {
        crate::pt_opt::execute_groups(
            g,
            spec.k(),
            &plan,
            matches,
            &plan.groups,
            config,
            &mask,
            &mut counts,
            &mut tstats,
        );
        return Ok((counts, tstats));
    }

    let chunk = plan.groups.len().div_ceil(threads.min(plan.groups.len()));
    let results: Vec<(CountVector, TraversalStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .groups
            .chunks(chunk)
            .map(|group_chunk| {
                let plan = &plan;
                let mask = &mask;
                scope.spawn(move || {
                    let mut local = CountVector::new(g.num_nodes(), mask.clone());
                    let mut ts = TraversalStats::default();
                    crate::pt_opt::execute_groups(
                        g,
                        spec.k(),
                        plan,
                        matches,
                        group_chunk,
                        config,
                        mask,
                        &mut local,
                        &mut ts,
                    );
                    (local, ts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("census worker panicked"))
            .collect()
    });

    for (cv, ts) in results {
        counts.merge_add(&cv);
        tstats.add(&ts);
    }
    Ok((counts, tstats))
}

/// Run a pairwise census query under an [`ExecConfig`]: the normalized
/// pair list is sharded into explicit [`crate::pairwise::PairSelector::Pairs`]
/// sub-queries evaluated sequentially per worker. Per-pair counts do not
/// depend on which other pairs are selected, so the merged result is
/// identical to [`crate::pairwise::run_pair_census_with`].
pub fn run_pair_census_exec(
    g: &Graph,
    spec: &crate::pairwise::PairCensusSpec<'_>,
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<crate::pairwise::PairCounts, CensusError> {
    use crate::pairwise::{run_pair_census_with, PairCounts, PairSelector};
    let threads = exec.resolve().max(1);
    let pairs = spec.selector().pairs(g);
    if threads == 1 || pairs.len() < 2 * threads {
        return run_pair_census_with(g, spec, algorithm, config);
    }

    let chunk = pairs.len().div_ceil(threads);
    let shards: Vec<&[(NodeId, NodeId)]> = pairs.chunks(chunk).collect();

    let results: Vec<Result<PairCounts, CensusError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard_spec = spec
                    .clone()
                    .with_selector(PairSelector::Pairs(shard.to_vec()));
                scope.spawn(move || run_pair_census_with(g, &shard_spec, algorithm, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("census worker panicked"))
            .collect()
    });

    let mut merged = PairCounts::default();
    for r in results {
        merged.merge_add(&r?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_matches;
    use crate::pairwise::{PairCensusSpec, PairSelector};
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;

    fn ring_with_chords(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n as usize, Label(0));
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 2) % n));
        }
        b.build()
    }

    #[test]
    fn matches_sequential_results() {
        let g = ring_with_chords(64);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let seq = crate::nd_pivot::run(&g, &spec, &m).unwrap();
        for threads in [2, 3, 8] {
            let par = run_nd_pivot_parallel(&g, &spec, &m, threads).unwrap();
            for n in g.node_ids() {
                assert_eq!(par.get(n), seq.get(n), "threads={threads} node={n:?}");
            }
        }
    }

    #[test]
    fn small_focal_set_falls_back() {
        let g = ring_with_chords(16);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(3)]));
        let cv = run_nd_pivot_parallel(&g, &spec, &m, 8).unwrap();
        assert!(cv.get(NodeId(3)) > 0);
    }

    #[test]
    fn subpattern_parallel() {
        let g = ring_with_chords(32);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN s {?A;} }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1).with_subpattern("s");
        let seq = crate::nd_pivot::run(&g, &spec, &m).unwrap();
        let par = run_nd_pivot_parallel(&g, &spec, &m, 4).unwrap();
        for n in g.node_ids() {
            assert_eq!(par.get(n), seq.get(n));
        }
    }

    #[test]
    fn every_family_matches_sequential() {
        let g = ring_with_chords(48);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let config = PtConfig::default();
        for threads in [2, 4, 7] {
            let seq = crate::nd_bas::run(&g, &spec).unwrap();
            let par = run_nd_bas_parallel(&g, &spec, threads).unwrap();
            assert_eq!(par, seq, "nd_bas threads={threads}");

            let seq = crate::nd_diff::run(&g, &spec, &m).unwrap();
            let par = run_nd_diff_parallel(&g, &spec, &m, threads).unwrap();
            assert_eq!(par, seq, "nd_diff threads={threads}");

            let seq = crate::pt_bas::run(&g, &spec, &m).unwrap();
            let par = run_pt_bas_parallel(&g, &spec, &m, threads).unwrap();
            assert_eq!(par, seq, "pt_bas threads={threads}");

            let seq = crate::pt_opt::run(&g, &spec, &m, &config).unwrap();
            let par = run_pt_opt_parallel(&g, &spec, &m, &config, threads).unwrap();
            assert_eq!(par, seq, "pt_opt threads={threads}");
        }
    }

    #[test]
    fn pt_bas_stats_are_thread_invariant() {
        let g = ring_with_chords(40);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1);
        let (_, seq) = crate::pt_bas::run_instrumented(&g, &spec, &m).unwrap();
        for threads in [2, 5] {
            let (_, par) = run_pt_bas_parallel_instrumented(&g, &spec, &m, threads).unwrap();
            assert_eq!(
                par.edges_traversed, seq.edges_traversed,
                "threads={threads}"
            );
            assert_eq!(par.nodes_expanded, seq.nodes_expanded, "threads={threads}");
        }
    }

    #[test]
    fn exec_dispatch_matches_run_census() {
        let g = ring_with_chords(40);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 1);
        let config = PtConfig::default();
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtRandom,
            Algorithm::PtOpt,
            Algorithm::Auto,
        ] {
            let seq = crate::run_census_with(&g, &spec, algo, &config).unwrap();
            for exec in [ExecConfig::sequential(), ExecConfig::with_threads(4)] {
                let par = run_census_exec(&g, &spec, algo, &config, &exec).unwrap();
                assert_eq!(par, seq, "{algo:?} exec={exec:?}");
            }
        }
    }

    #[test]
    fn exec_config_resolution() {
        assert_eq!(ExecConfig::sequential().resolve(), 1);
        assert_eq!(ExecConfig::with_threads(3).resolve(), 3);
        assert!(ExecConfig::auto().resolve() >= 1);
        assert_eq!(ExecConfig::default(), ExecConfig::auto());
    }

    #[test]
    fn pairwise_exec_matches_sequential() {
        let g = ring_with_chords(20);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        for spec in [
            PairCensusSpec::intersection(&p, 1, PairSelector::AllPairs),
            PairCensusSpec::union(&p, 1, PairSelector::AllPairs),
        ] {
            for algo in [Algorithm::NdPivot, Algorithm::PtOpt] {
                let seq =
                    crate::pairwise::run_pair_census_with(&g, &spec, algo, &PtConfig::default())
                        .unwrap();
                let par = run_pair_census_exec(
                    &g,
                    &spec,
                    algo,
                    &PtConfig::default(),
                    &ExecConfig::with_threads(4),
                )
                .unwrap();
                assert_eq!(par.len(), seq.len(), "{algo:?}");
                for (a, b, c) in seq.iter() {
                    assert_eq!(par.get(a, b), c, "{algo:?} pair=({a},{b})");
                }
            }
        }
    }

    #[test]
    fn errors_propagate_from_workers() {
        let g = ring_with_chords(32);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        // ND-DIFF rejects COUNTSP; the subpattern must survive the shard
        // spec cloning for the rejection to fire on every worker.
        let p2 = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN s {?A;} }").unwrap();
        let spec = CensusSpec::single(&p2, 1).with_subpattern("s");
        assert!(run_nd_diff_parallel(&g, &spec, &m, 4).is_err());
    }
}
