//! K-means clustering (MacQueen), used to group nearby pattern matches.
//!
//! Points are dense `f32` rows in a flat buffer. Initialization samples
//! distinct points (Forgy); empty clusters are re-seeded from the point
//! farthest from its centroid, so the requested `k` is honored whenever
//! there are at least `k` distinct points.

use rand::seq::SliceRandom;
use rand::Rng;

/// Cluster `points` (row-major, `dim` columns) into `k` groups with at
/// most `iters` Lloyd iterations. Returns per-point cluster assignments
/// in `0..k_effective` where `k_effective = k.min(num_points)`.
pub fn kmeans<R: Rng>(points: &[f32], dim: usize, k: usize, iters: usize, rng: &mut R) -> Vec<u32> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(points.len() % dim, 0, "points not divisible by dim");
    let n = points.len() / dim;
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);

    // Forgy init on a random permutation of rows.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for &i in order.iter().take(k) {
        centroids.extend_from_slice(&points[i * dim..(i + 1) * dim]);
    }

    let mut assign = vec![0u32; n];
    let mut counts = vec![0u32; k];
    for _ in 0..iters.max(1) {
        // Assignment step.
        let mut changed = false;
        for i in 0..n {
            let row = &points[i * dim..(i + 1) * dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let cen = &centroids[c * dim..(c + 1) * dim];
                let d = sq_dist(row, cen);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best as u32 {
                assign[i] = best as u32;
                changed = true;
            }
        }

        // Update step.
        centroids.iter_mut().for_each(|x| *x = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for i in 0..n {
            let c = assign[i] as usize;
            counts[c] += 1;
            let row = &points[i * dim..(i + 1) * dim];
            let cen = &mut centroids[c * dim..(c + 1) * dim];
            for (a, b) in cen.iter_mut().zip(row) {
                *a += b;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                for x in &mut centroids[c * dim..(c + 1) * dim] {
                    *x *= inv;
                }
            }
        }

        // Re-seed empty clusters from the worst-fit point.
        for c in 0..k {
            if counts[c] == 0 {
                let (worst, _) = (0..n)
                    .map(|i| {
                        let row = &points[i * dim..(i + 1) * dim];
                        let cen =
                            &centroids[assign[i] as usize * dim..(assign[i] as usize + 1) * dim];
                        (i, sq_dist(row, cen))
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("n > 0");
                let row = points[worst * dim..(worst + 1) * dim].to_vec();
                centroids[c * dim..(c + 1) * dim].copy_from_slice(&row);
                assign[worst] = c as u32;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    assign
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn separates_two_blobs() {
        // Blob A around (0,0), blob B around (10,10).
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push((i % 5) as f32 * 0.1);
            pts.push((i % 3) as f32 * 0.1);
        }
        for i in 0..20 {
            pts.push(10.0 + (i % 5) as f32 * 0.1);
            pts.push(10.0 + (i % 3) as f32 * 0.1);
        }
        let assign = kmeans(&pts, 2, 2, 20, &mut rng());
        let first = assign[0];
        assert!(assign[..20].iter().all(|&a| a == first));
        assert!(assign[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![0.0f32, 1.0, 2.0]; // 3 points in 1D
        let assign = kmeans(&pts, 1, 10, 5, &mut rng());
        assert_eq!(assign.len(), 3);
        // With k = n every point can sit in its own cluster.
        let mut sorted = assign.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn single_cluster() {
        let pts = vec![1.0f32; 12];
        let assign = kmeans(&pts, 3, 1, 5, &mut rng());
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_input() {
        let assign = kmeans(&[], 4, 3, 5, &mut rng());
        assert!(assign.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let pts: Vec<f32> = (0..60).map(|i| (i * 7 % 13) as f32).collect();
        let a = kmeans(&pts, 2, 4, 10, &mut StdRng::seed_from_u64(5));
        let b = kmeans(&pts, 2, 4, 10, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn assignments_in_range() {
        let pts: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let assign = kmeans(&pts, 1, 7, 10, &mut rng());
        assert!(assign.iter().all(|&a| a < 7));
    }
}
