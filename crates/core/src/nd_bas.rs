//! ND-BAS: the node-driven baseline (Section IV-A).
//!
//! For every focal node, extract the `k`-hop neighborhood subgraph
//! `S(n, k)` and run the pattern matcher inside it. Correct but "suffers
//! from repeated and overlapping computations, especially for k ≥ 2, and
//! is computationally infeasible in practice" — it exists as the paper's
//! strawman and as a differential-testing oracle for the fast algorithms.

use crate::result::{CensusError, CountVector};
use crate::spec::CensusSpec;
use ego_graph::bfs::BfsScratch;
use ego_graph::subgraph::InducedSubgraph;
use ego_graph::Graph;
use ego_matcher::{find_matches, MatcherKind};

/// Run the baseline. Subpattern queries are rejected: a COUNTSP match may
/// extend beyond `S(n, k)`, which per-neighborhood matching cannot see.
pub fn run(g: &Graph, spec: &CensusSpec<'_>) -> Result<CountVector, CensusError> {
    if spec.subpattern_name().is_some() {
        return Err(CensusError::Unsupported(
            "ND-BAS cannot evaluate COUNTSP queries; use ND-PVOT or PT-OPT".into(),
        ));
    }
    let p = spec.pattern();
    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask);
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut nodes = Vec::new();

    // Attribute predicates reference the ORIGINAL graph; extracted
    // subgraphs carry labels but not attributes, so patterns with
    // attribute/edge predicates must translate ids. We handle this by
    // rejecting them here (the other algorithms support them); label-only
    // patterns — the common case and everything in the paper's
    // evaluation — run directly on the subgraph.
    if !p.node_predicates().is_empty() || !p.edge_predicates().is_empty() {
        return Err(CensusError::Unsupported(
            "ND-BAS supports structural/label patterns only; \
             use ND-PVOT or PT-OPT for attribute predicates"
                .into(),
        ));
    }

    for n in spec.focal().nodes(g) {
        nodes.clear();
        scratch.bounded_bfs(g, n, spec.k(), &mut nodes);
        nodes.sort_unstable();
        let sub = InducedSubgraph::extract(g, &nodes);
        let matches = find_matches(&sub.graph, p, MatcherKind::CandidateNeighbors);
        counts.set(n, matches.len() as u64);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FocalNodes;
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;

    /// Two triangles sharing node 2 plus a pendant chain 4-5-6.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn triangle_counts_k1() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 1);
        let counts = run(&g, &spec).unwrap();
        assert_eq!(counts.get(NodeId(0)), 1);
        assert_eq!(counts.get(NodeId(2)), 2); // sees both triangles
        assert_eq!(counts.get(NodeId(4)), 1);
        assert_eq!(counts.get(NodeId(6)), 0);
    }

    #[test]
    fn triangle_counts_k2() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 2);
        let counts = run(&g, &spec).unwrap();
        assert_eq!(counts.get(NodeId(0)), 2); // both triangles within 2 hops
        assert_eq!(counts.get(NodeId(5)), 1);
        assert_eq!(counts.get(NodeId(6)), 0);
    }

    #[test]
    fn k0_counts_single_nodes_only() {
        let g = fixture();
        let node = Pattern::parse("PATTERN n { ?A; }").unwrap();
        let spec = CensusSpec::single(&node, 0);
        let counts = run(&g, &spec).unwrap();
        for n in g.node_ids() {
            assert_eq!(counts.get(n), 1);
        }
    }

    #[test]
    fn focal_subset() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec = CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(5)]));
        let counts = run(&g, &spec).unwrap();
        // S(5,1) = {4,5,6}: edges 4-5 and 5-6.
        assert_eq!(counts.get(NodeId(5)), 2);
        assert_eq!(counts.get(NodeId(2)), 0); // not focal
        assert!(!counts.is_focal(NodeId(2)));
    }

    #[test]
    fn subpattern_rejected() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; SUBPATTERN m {?B;} }").unwrap();
        let spec = CensusSpec::single(&p, 1).with_subpattern("m");
        assert!(matches!(run(&g, &spec), Err(CensusError::Unsupported(_))));
    }

    #[test]
    fn attribute_predicates_rejected() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; [?A.age>3]; }").unwrap();
        let spec = CensusSpec::single(&p, 1);
        assert!(matches!(run(&g, &spec), Err(CensusError::Unsupported(_))));
    }

    #[test]
    fn labels_respected_in_subgraphs() {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let p = Pattern::parse("PATTERN e { ?A-?B; [?A.LABEL=0]; [?B.LABEL=1]; }").unwrap();
        let counts = run(&g, &CensusSpec::single(&p, 1)).unwrap();
        assert_eq!(counts.get(NodeId(0)), 1);
        assert_eq!(counts.get(NodeId(1)), 2);
        assert_eq!(counts.get(NodeId(2)), 1);
    }
}
