//! Center-based expansion support (Section IV-B4).
//!
//! A small set of *center* nodes is chosen apriori and their distances to
//! every node are precomputed. During PT-OPT traversal the triangle
//! inequality `d(m, n') ≤ d(m, c) + d(c, n')` yields initialization bounds
//! that can stop expansions early; the same distances feed the K-means
//! feature vectors of match clustering.

use ego_graph::bfs::BfsScratch;
use ego_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// How centers are picked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CenterStrategy {
    /// Highest-degree nodes (the paper's DEG-CNTR; "primarily due to its
    /// low computation cost compared to other centrality measures").
    #[default]
    Degree,
    /// Uniformly random nodes (the RND-CNTR ablation of Fig 4(f)).
    Random,
}

/// Precomputed exact BFS distances from each center to every node.
#[derive(Clone, Debug)]
pub struct CenterIndex {
    centers: Vec<NodeId>,
    /// `dist[ci]` = distances from `centers[ci]`; `u32::MAX` = unreachable.
    dist: Vec<Vec<u32>>,
    /// Edge scans spent building the index (traversal-cost accounting).
    build_edges: u64,
}

impl CenterIndex {
    /// Build an index with `count` centers chosen by `strategy`.
    pub fn build<R: Rng>(g: &Graph, count: usize, strategy: CenterStrategy, rng: &mut R) -> Self {
        let count = count.min(g.num_nodes());
        let centers = match strategy {
            CenterStrategy::Degree => g.top_degree_nodes(count),
            CenterStrategy::Random => {
                let mut nodes: Vec<NodeId> = g.node_ids().collect();
                nodes.shuffle(rng);
                nodes.truncate(count);
                nodes
            }
        };
        let mut scratch = BfsScratch::new(g.num_nodes());
        let dist = centers
            .iter()
            .map(|&c| {
                let mut d = vec![0u32; g.num_nodes()];
                scratch.full_bfs_distances(g, c, &mut d);
                d
            })
            .collect();
        CenterIndex {
            centers,
            dist,
            build_edges: scratch.edges_scanned(),
        }
    }

    /// Edge scans spent precomputing the center distances.
    pub fn build_edges(&self) -> u64 {
        self.build_edges
    }

    /// An index with no centers (disables center bounds).
    pub fn empty() -> Self {
        CenterIndex {
            centers: Vec::new(),
            dist: Vec::new(),
            build_edges: 0,
        }
    }

    /// The chosen centers.
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if no centers were built.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Exact distance from center `ci` to `n` (`u32::MAX` if unreachable).
    #[inline]
    pub fn distance(&self, ci: usize, n: NodeId) -> u32 {
        self.dist[ci][n.index()]
    }

    /// Triangle-inequality upper bound on `d(a, b)` through the best
    /// center: `min_c d(a, c) + d(c, b)`. `u32::MAX` when no center
    /// reaches both.
    pub fn bound(&self, a: NodeId, b: NodeId) -> u32 {
        let mut best = u32::MAX;
        for d in &self.dist {
            let da = d[a.index()];
            let db = d[b.index()];
            if da != u32::MAX && db != u32::MAX {
                best = best.min(da + db);
            }
        }
        best
    }

    /// A restricted view using only the first `count` centers (used by the
    /// Fig 4(f) experiment to vary PMD centers while keeping clustering
    /// features fixed).
    pub fn take(&self, count: usize) -> CenterIndex {
        let count = count.min(self.centers.len());
        CenterIndex {
            centers: self.centers[..count].to_vec(),
            dist: self.dist[..count].to_vec(),
            build_edges: self.build_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Path 0-1-2-3-4 with a hub 5 connected to 1, 2, 3.
    fn graph() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (2, 3), (3, 4)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        for t in [1u32, 2, 3] {
            b.add_edge(NodeId(5), NodeId(t));
        }
        b.build()
    }

    #[test]
    fn degree_strategy_picks_hubs() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let idx = CenterIndex::build(&g, 2, CenterStrategy::Degree, &mut rng);
        // Degrees: 1,2,3 have 3 (2 also 3?). 0:1, 1:3, 2:3, 3:3, 4:1, 5:3.
        // Top 2 by (degree, low id): nodes 1 and 2.
        assert_eq!(idx.centers(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn distances_are_exact() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let idx = CenterIndex::build(&g, 1, CenterStrategy::Degree, &mut rng);
        // Center = node 1. Distances: 0:1, 1:0, 2:1, 3:2, 4:3, 5:1.
        let want = [1u32, 0, 1, 2, 3, 1];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(idx.distance(0, NodeId(i as u32)), w, "node {i}");
        }
    }

    #[test]
    fn bound_is_valid_upper_bound() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let idx = CenterIndex::build(&g, 3, CenterStrategy::Degree, &mut rng);
        // True d(0, 4) = 4; any center bound must be >= 4.
        assert!(idx.bound(NodeId(0), NodeId(4)) >= 4);
        // Bound through node 1 (center) for (0, 5): d(0,1)+d(1,5) = 2.
        assert!(idx.bound(NodeId(0), NodeId(5)) <= 2);
    }

    #[test]
    fn random_strategy_is_seeded() {
        let g = graph();
        let a = CenterIndex::build(&g, 3, CenterStrategy::Random, &mut StdRng::seed_from_u64(7));
        let b = CenterIndex::build(&g, 3, CenterStrategy::Random, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_and_take() {
        let g = graph();
        let idx = CenterIndex::build(&g, 4, CenterStrategy::Degree, &mut StdRng::seed_from_u64(0));
        let sub = idx.take(2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.centers(), &idx.centers()[..2]);
        let empty = CenterIndex::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.bound(NodeId(0), NodeId(1)), u32::MAX);
    }

    #[test]
    fn disconnected_unreachable() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let idx = CenterIndex::build(&g, 1, CenterStrategy::Degree, &mut StdRng::seed_from_u64(0));
        assert_eq!(idx.distance(0, NodeId(2)), u32::MAX);
        assert_eq!(idx.bound(NodeId(0), NodeId(2)), u32::MAX);
    }

    #[test]
    fn count_larger_than_graph_is_clamped() {
        let g = graph();
        let idx = CenterIndex::build(
            &g,
            100,
            CenterStrategy::Degree,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(idx.len(), 6);
    }
}
