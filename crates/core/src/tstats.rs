//! Traversal instrumentation for the census algorithms.
//!
//! The paper's prototype ran on a disk-resident graph store, where edge
//! traversals dominate cost; every pattern-driven optimization (Section
//! IV-B) is justified as reducing traversals and node re-expansions. On
//! this crate's in-memory store, raw wall-clock can rank algorithms
//! differently (bookkeeping is no longer free relative to traversal), so
//! the benchmarks report both: wall time for this substrate, and these
//! counters as the disk-I/O proxy that reproduces the paper's orderings.

/// Counters for one census run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Adjacency-list entries examined (BFS scans + PMD relaxations).
    pub edges_traversed: u64,
    /// Nodes expanded (dequeued and processed).
    pub nodes_expanded: u64,
    /// Node re-insertions into the traversal queue — what best-first
    /// ordering (Section IV-B3) and centers (IV-B4) exist to eliminate.
    pub reinsertions: u64,
    /// Edge scans spent building per-graph indexes (center distances) —
    /// amortized across queries, reported separately per the paper's
    /// "pre-compute the distances d(c, n)" framing.
    pub index_edges: u64,
}

impl TraversalStats {
    /// Element-wise sum.
    pub fn add(&mut self, other: &TraversalStats) {
        self.edges_traversed += other.edges_traversed;
        self.nodes_expanded += other.nodes_expanded;
        self.reinsertions += other.reinsertions;
        self.index_edges += other.index_edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut a = TraversalStats {
            edges_traversed: 1,
            nodes_expanded: 2,
            reinsertions: 3,
            index_edges: 4,
        };
        a.add(&TraversalStats {
            edges_traversed: 10,
            nodes_expanded: 20,
            reinsertions: 30,
            index_edges: 40,
        });
        assert_eq!(a.edges_traversed, 11);
        assert_eq!(a.nodes_expanded, 22);
        assert_eq!(a.reinsertions, 33);
        assert_eq!(a.index_edges, 44);
    }
}
