//! Array-based bucket priority queue (Section IV-B3).
//!
//! PT-OPT's best-first traversal needs pop-min and decrease-key, but the
//! score range is tiny and pre-determined: `score(n) = Σ_m PMD_m[n] ≤
//! (k+1)·|V_M|`. The paper exploits this with an array of buckets indexed
//! by score, giving O(1) insertion and deletion instead of a heap's
//! O(log |Q|). Decrease-key is handled lazily: nodes are re-inserted at
//! their new score and stale entries are skipped at pop time via the
//! caller-maintained current-score check.

/// A monotone-ish bucket queue over `u32` items with bounded scores.
#[derive(Clone, Debug)]
pub struct BucketQueue {
    buckets: Vec<Vec<u32>>,
    /// Lowest bucket that may be non-empty.
    cursor: usize,
    len: usize,
}

impl BucketQueue {
    /// A queue accepting scores `0..=max_score`.
    pub fn new(max_score: usize) -> Self {
        BucketQueue {
            buckets: vec![Vec::new(); max_score + 1],
            cursor: max_score + 1,
            len: 0,
        }
    }

    /// Insert `item` with `score`. A decrease-key is just a second push at
    /// the lower score; the caller skips the stale higher-score entry when
    /// it surfaces.
    #[inline]
    pub fn push(&mut self, score: usize, item: u32) {
        debug_assert!(score < self.buckets.len(), "score {score} out of range");
        self.buckets[score].push(item);
        self.len += 1;
        if score < self.cursor {
            self.cursor = score;
        }
    }

    /// Remove and return a minimum-score entry as `(score, item)`.
    #[inline]
    pub fn pop_min(&mut self) -> Option<(usize, u32)> {
        while self.cursor < self.buckets.len() {
            if let Some(item) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some((self.cursor, item));
            }
            self.cursor += 1;
        }
        None
    }

    /// Number of stored entries (including stale ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries, keeping capacity.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = self.buckets.len();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_score_order() {
        let mut q = BucketQueue::new(10);
        q.push(5, 50);
        q.push(2, 20);
        q.push(8, 80);
        q.push(2, 21);
        let mut out = Vec::new();
        while let Some((s, i)) = q.pop_min() {
            out.push((s, i));
        }
        let scores: Vec<usize> = out.iter().map(|&(s, _)| s).collect();
        assert_eq!(scores, vec![2, 2, 5, 8]);
        assert!(q.is_empty());
    }

    #[test]
    fn decrease_key_via_reinsert() {
        let mut q = BucketQueue::new(10);
        q.push(9, 1);
        // "decrease" 1 to score 3
        q.push(3, 1);
        let (s, i) = q.pop_min().unwrap();
        assert_eq!((s, i), (3, 1));
        // The stale entry surfaces later; callers skip it by checking
        // their current-score table.
        let (s2, i2) = q.pop_min().unwrap();
        assert_eq!((s2, i2), (9, 1));
    }

    #[test]
    fn cursor_backtracks_on_lower_push() {
        let mut q = BucketQueue::new(10);
        q.push(5, 5);
        assert_eq!(q.pop_min(), Some((5, 5)));
        // Cursor is now past 5; a push at 1 must rewind it.
        q.push(1, 1);
        assert_eq!(q.pop_min(), Some((1, 1)));
    }

    #[test]
    fn zero_and_max_scores() {
        let mut q = BucketQueue::new(4);
        q.push(0, 10);
        q.push(4, 11);
        assert_eq!(q.pop_min(), Some((0, 10)));
        assert_eq!(q.pop_min(), Some((4, 11)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn clear_resets() {
        let mut q = BucketQueue::new(4);
        q.push(2, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
        q.push(3, 9);
        assert_eq!(q.pop_min(), Some((3, 9)));
    }

    #[test]
    fn len_counts_entries() {
        let mut q = BucketQueue::new(4);
        assert_eq!(q.len(), 0);
        q.push(1, 1);
        q.push(1, 2);
        assert_eq!(q.len(), 2);
        q.pop_min();
        assert_eq!(q.len(), 1);
    }
}
