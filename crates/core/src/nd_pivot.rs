//! ND-PVOT: pivot indexing (Section IV-A1, Algorithm 2).
//!
//! 1. Find all matches `M` once, globally.
//! 2. Pick the pattern's *pivot* `v` (minimum eccentricity; for COUNTSP,
//!    drawn from the subpattern nodes) and index `M` by the image of `v`
//!    — the pattern match index `PMI_v`.
//! 3. For each focal node `n`, BFS to depth `k`. For every visited node
//!    `n'` at distance `d`, the matches in `PMI_v(n')` are candidates:
//!    * if `d + max_v ≤ k`, **every** such match is fully contained in
//!      `S(n, k)` (pattern distances upper-bound graph distances) — add
//!      `|PMI_v(n')|` without looking at the matches;
//!    * otherwise only anchor nodes at pattern distance `> k - d` from
//!      the pivot can stick out — check just those (`distant[k-d+1]`).

use crate::result::{CensusError, CountVector};
use crate::spec::CensusSpec;
use crate::tstats::TraversalStats;
use ego_graph::bfs::BfsScratch;
use ego_graph::{FastHashMap, Graph, NodeId};
use ego_matcher::MatchList;
use ego_pattern::analysis::{PatternAnalysis, UNREACHABLE};
use ego_pattern::PNode;

/// The pattern match index: match indices keyed by the pivot's image.
pub struct PivotIndex {
    map: FastHashMap<u32, Vec<u32>>,
    pivot: PNode,
}

impl PivotIndex {
    /// Index `matches` by the image of `pivot`.
    pub fn build(matches: &MatchList, pivot: PNode) -> Self {
        let mut map: FastHashMap<u32, Vec<u32>> = FastHashMap::default();
        for (i, m) in matches.iter().enumerate() {
            map.entry(m.image(pivot).0).or_default().push(i as u32);
        }
        PivotIndex { map, pivot }
    }

    /// Matches whose pivot image is `n`.
    pub fn get(&self, n: NodeId) -> &[u32] {
        self.map.get(&n.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The pivot this index is keyed on.
    pub fn pivot(&self) -> PNode {
        self.pivot
    }
}

/// Run ND-PVOT over precomputed global matches.
pub fn run(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<CountVector, CensusError> {
    run_instrumented(g, spec, matches).map(|(cv, _)| cv)
}

/// [`run`] with traversal-cost instrumentation.
pub fn run_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<(CountVector, TraversalStats), CensusError> {
    let p = spec.pattern();
    let k = spec.k();
    let anchors = spec.anchor_nodes()?;
    let analysis = PatternAnalysis::with_pivot_candidates(p, Some(&anchors));
    let pivot = analysis.pivot();

    // max_v over ANCHORS only: non-anchor images may fall outside S(n,k).
    // An anchor disconnected from the pivot (disconnected pattern) always
    // needs an explicit check, so it forces the slow path via max_v = ∞.
    let mut max_v: u32 = 0;
    let mut has_unreachable_anchor = false;
    for &a in &anchors {
        let d = analysis.distance(pivot, a);
        if d == UNREACHABLE {
            has_unreachable_anchor = true;
        } else {
            max_v = max_v.max(d);
        }
    }

    // distant[i] (1-indexed): anchors with pattern distance >= i from the
    // pivot (or disconnected), i in 1..=max_v (+1 slot so the i = k-d+1
    // index never overflows when d + max_v = k + 1).
    let distant: Vec<Vec<PNode>> = (1..=max_v.max(1) as usize + 1)
        .map(|i| {
            anchors
                .iter()
                .copied()
                .filter(|&a| {
                    let d = analysis.distance(pivot, a);
                    d == UNREACHABLE || d >= i as u32
                })
                .collect()
        })
        .collect();

    let pmi = PivotIndex::build(matches, pivot);

    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask);
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut visited = Vec::new();

    for n in spec.focal().nodes(g) {
        visited.clear();
        scratch.bounded_bfs(g, n, k, &mut visited);
        let mut total = 0u64;
        for &np in &visited {
            let bucket = pmi.get(np);
            if bucket.is_empty() {
                continue;
            }
            let d = scratch.distance(np);
            if !has_unreachable_anchor && d + max_v <= k {
                // Containment guaranteed: count without checking.
                total += bucket.len() as u64;
            } else {
                // Only anchors that can stick out need checking: pattern
                // distance > k - d, i.e. >= k - d + 1. Clamping to the last
                // slot (max_v + 1) leaves exactly the disconnected anchors,
                // which must always be checked.
                let i = ((k - d) as usize + 1).min(distant.len());
                let to_check: &[PNode] = &distant[i - 1];
                for &mi in bucket {
                    let m = &matches[mi as usize];
                    let ok = to_check.iter().all(|&a| {
                        let img = m.image(a);
                        scratch.visited(img) // visited ⇒ within k hops of n
                    });
                    if ok {
                        total += 1;
                    }
                }
            }
        }
        counts.set(n, total);
    }
    let tstats = TraversalStats {
        edges_traversed: scratch.edges_scanned(),
        nodes_expanded: spec.focal().count(g) as u64,
        reinsertions: 0,
        index_edges: 0,
    };
    Ok((counts, tstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FocalNodes;
    use crate::{global_matches, nd_bas};
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        // Two triangles sharing node 2 plus chain 4-5-6.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn run_spec(g: &Graph, spec: &CensusSpec<'_>) -> CountVector {
        let m = global_matches(g, spec.pattern());
        run(g, spec, &m).unwrap()
    }

    #[test]
    fn agrees_with_nd_bas_on_triangles() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        for k in 0..4 {
            let spec = CensusSpec::single(&p, k);
            let fast = run_spec(&g, &spec);
            let slow = nd_bas::run(&g, &spec).unwrap();
            for n in g.node_ids() {
                assert_eq!(fast.get(n), slow.get(n), "k={k} node={n:?}");
            }
        }
    }

    #[test]
    fn pivot_index_buckets() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let idx = PivotIndex::build(&m, PNode(0));
        let total: usize = g.node_ids().map(|n| idx.get(n).len()).sum();
        assert_eq!(total, m.len());
    }

    #[test]
    fn subpattern_census_k0() {
        // Count triangles anchored at each node: COUNTSP with a single-node
        // subpattern and k = 0 counts the triangles the node participates in.
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN me {?A;} }").unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern("me");
        let counts = run_spec(&g, &spec);
        // The subpattern pins ?A, so the automorphism group only swaps
        // B and C: each triangle yields 3 distinct matches, one per
        // choice of A-image. COUNTSP(me, t, SUBGRAPH(ID, 0)) therefore
        // counts exactly the triangles each node participates in.
        let want = [1u64, 1, 2, 1, 1, 0, 0];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(counts.get(NodeId(i as u32)), w, "node {i}");
        }
    }

    #[test]
    fn directed_subpattern_middle_node() {
        // Coordinator triads: 0->1->2 without 0->2.
        let mut b = GraphBuilder::directed();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let p = Pattern::parse("PATTERN triad { ?A->?B; ?B->?C; ?A!->?C; SUBPATTERN mid {?B;} }")
            .unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern("mid");
        let counts = run_spec(&g, &spec);
        // Middle of 0->1->2 is 1; middle of 1->2->3 is 2.
        assert_eq!(counts.get(NodeId(0)), 0);
        assert_eq!(counts.get(NodeId(1)), 1);
        assert_eq!(counts.get(NodeId(2)), 1);
        assert_eq!(counts.get(NodeId(3)), 0);
    }

    #[test]
    fn focal_subset_only() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec =
            CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(5), NodeId(0)]));
        let counts = run_spec(&g, &spec);
        assert_eq!(counts.get(NodeId(5)), 2);
        assert_eq!(counts.get(NodeId(0)), 3); // edges 0-1, 0-2, 1-2
        assert!(!counts.is_focal(NodeId(2)));
    }

    #[test]
    fn large_k_counts_everything() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 10);
        let counts = run_spec(&g, &spec);
        for n in g.node_ids() {
            assert_eq!(counts.get(n), 2, "node {n:?}");
        }
    }

    #[test]
    fn disconnected_pattern_anchor_checks() {
        // Pattern: edge + isolated node. The isolated node's image can be
        // anywhere; containment needs the explicit check path.
        let g = fixture();
        let p = Pattern::parse("PATTERN p { ?A-?B; ?C; }").unwrap();
        let spec = CensusSpec::single(&p, 1);
        let fast = run_spec(&g, &spec);
        let slow = nd_bas::run(&g, &spec).unwrap();
        for n in g.node_ids() {
            assert_eq!(fast.get(n), slow.get(n), "node {n:?}");
        }
    }
}
