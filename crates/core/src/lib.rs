//! # ego-census
//!
//! Ego-centric pattern census query evaluation (Section IV of the paper).
//!
//! A census query counts, for every focal node `n`, the number of distinct
//! matches of a pattern `P` that fall inside `n`'s `k`-hop neighborhood
//! `S(n, k)` — or, for pairwise queries, inside the intersection/union of
//! two nodes' neighborhoods. Six algorithms are provided:
//!
//! | Algorithm | Paper name | Strategy |
//! |---|---|---|
//! | [`Algorithm::NdBaseline`] | ND-BAS | extract `S(n,k)` per node, match inside it |
//! | [`Algorithm::NdPivot`]    | ND-PVOT | global match + pivot index + distance shortcuts |
//! | [`Algorithm::NdDiff`]     | ND-DIFF | differential counting along a node chain |
//! | [`Algorithm::PtBaseline`] | PT-BAS | per-match BFS from every match node |
//! | [`Algorithm::PtRandom`]   | PT-RND | PT-OPT minus best-first ordering |
//! | [`Algorithm::PtOpt`]      | PT-OPT | simultaneous traversal + shortcuts + best-first + centers + clustering |
//!
//! Node-driven algorithms process each focal node once but may touch a
//! match many times; pattern-driven algorithms process each match once but
//! may touch a node many times — the duality the evaluation explores.
//!
//! ```
//! use ego_census::{run_census, Algorithm, CensusSpec};
//! use ego_graph::{GraphBuilder, Label, NodeId};
//! use ego_pattern::Pattern;
//!
//! let mut b = GraphBuilder::undirected();
//! b.add_nodes(5, Label(0));
//! for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(x), NodeId(y));
//! }
//! let g = b.build();
//! let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
//!
//! let spec = CensusSpec::single(&tri, 1);
//! let counts = run_census(&g, &spec, Algorithm::NdPivot).unwrap();
//! assert_eq!(counts.get(NodeId(2)), 2);
//! assert_eq!(counts.get(NodeId(4)), 1);
//! ```

pub mod approx;
pub mod batch;
pub mod bucket_queue;
pub mod centers;
pub mod chooser;
pub mod clustering;
pub mod kmeans;
pub mod nd_bas;
pub mod nd_diff;
pub mod nd_pivot;
pub mod pairwise;
pub mod parallel;
pub mod pt_bas;
pub mod pt_opt;
pub mod result;
pub mod spec;
pub mod topk;
pub mod tstats;

pub use batch::{plan_stages, run_batch, run_batch_exec, BatchResult, BatchStage};
pub use centers::{CenterIndex, CenterStrategy};
pub use pairwise::{
    run_pair_census, run_pair_census_with, PairCensusSpec, PairCounts, PairKind, PairSelector,
};
pub use parallel::{
    exec_matches, run_census_exec, run_census_exec_instrumented, run_pair_census_exec, ExecConfig,
};
pub use result::{CensusError, CountVector};
pub use spec::{CensusSpec, Clustering, FocalNodes, PtConfig, PtOrdering};
pub use tstats::TraversalStats;

use ego_graph::Graph;
use ego_matcher::{find_matches, MatchList, MatcherKind};

/// Which census evaluation algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// ND-BAS: extract each focal node's neighborhood subgraph and run the
    /// matcher inside it. Quadratic-ish; the paper's strawman.
    NdBaseline,
    /// ND-PVOT: the proposed node-driven algorithm (Algorithm 2).
    NdPivot,
    /// ND-DIFF: differential counting (Algorithm 3).
    NdDiff,
    /// PT-BAS: the pattern-driven baseline.
    PtBaseline,
    /// PT-RND: PT-OPT with random instead of best-first ordering.
    PtRandom,
    /// PT-OPT: the fully optimized pattern-driven algorithm (Algorithm 4).
    PtOpt,
    /// Choose between ND-PVOT and PT-OPT from match/focal cardinalities
    /// (Section V's guidance: pattern-driven wins for selective patterns).
    Auto,
}

/// Run a single-node census query (`COUNTP`/`COUNTSP` over `SUBGRAPH`).
pub fn run_census(
    g: &Graph,
    spec: &CensusSpec<'_>,
    algorithm: Algorithm,
) -> Result<CountVector, CensusError> {
    run_census_with(g, spec, algorithm, &PtConfig::default())
}

/// [`run_census`] with explicit pattern-driven tuning parameters.
pub fn run_census_with(
    g: &Graph,
    spec: &CensusSpec<'_>,
    algorithm: Algorithm,
    config: &PtConfig,
) -> Result<CountVector, CensusError> {
    spec.validate(g)?;
    match algorithm {
        Algorithm::NdBaseline => nd_bas::run(g, spec),
        Algorithm::NdPivot => {
            let matches = global_matches(g, spec.pattern());
            nd_pivot::run(g, spec, &matches)
        }
        Algorithm::NdDiff => {
            let matches = global_matches(g, spec.pattern());
            nd_diff::run(g, spec, &matches)
        }
        Algorithm::PtBaseline => {
            let matches = global_matches(g, spec.pattern());
            pt_bas::run(g, spec, &matches)
        }
        Algorithm::PtRandom => {
            let matches = global_matches(g, spec.pattern());
            let mut cfg = config.clone();
            cfg.ordering = PtOrdering::Random;
            pt_opt::run(g, spec, &matches, &cfg)
        }
        Algorithm::PtOpt => {
            let matches = global_matches(g, spec.pattern());
            pt_opt::run(g, spec, &matches, config)
        }
        Algorithm::Auto => {
            let matches = global_matches(g, spec.pattern());
            chooser::run_auto(g, spec, &matches, config)
        }
    }
}

/// Find all distinct matches of a pattern in the full graph (the common
/// first step of ND-PVOT, ND-DIFF, and all pattern-driven algorithms).
pub fn global_matches(g: &Graph, p: &ego_pattern::Pattern) -> MatchList {
    find_matches(g, p, MatcherKind::CandidateNeighbors)
}
