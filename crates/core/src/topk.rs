//! Top-k census queries — the paper's first "future work" item:
//! "top-k query evaluation techniques to more efficiently identify the
//! nodes with the highest pattern census counts."
//!
//! Strategy: a cheap, monotone **upper bound** on every node's count,
//! then lazy exact evaluation in decreasing bound order with
//! threshold-based early termination (NRA-style):
//!
//! 1. Let `f(n) = |PMI_v(n)|`, the matches whose pivot image is `n`.
//!    A node's true count is `Σ_{n' ∈ N_k(n)} (contained matches of n')
//!    ≤ Σ_{n' ∈ N_k(n)} f(n')`.
//! 2. The k-round neighbor aggregation `g_0 = f`,
//!    `g_{i+1}(n) = g_i(n) + Σ_{m ∈ N(n)} g_i(m)` dominates that sum
//!    (every node within k hops contributes at least once), so `g_k` is
//!    a valid upper bound computable in `k` passes over the edges —
//!    no per-node BFS.
//! 3. Evaluate nodes exactly (ND-PVOT's per-node step) in decreasing
//!    `g_k` order; stop when the k-th best exact count ≥ the next bound.

use crate::nd_pivot::PivotIndex;
use crate::result::CensusError;
use crate::spec::CensusSpec;
use ego_graph::bfs::BfsScratch;
use ego_graph::{Graph, NodeId};
use ego_matcher::MatchList;

/// Result of a top-k census: the k highest-count focal nodes (exact
/// counts, sorted descending; ties broken by lower node id) plus how many
/// nodes needed exact evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopKResult {
    /// `(node, exact count)` in descending count order.
    pub top: Vec<(NodeId, u64)>,
    /// Number of focal nodes that were evaluated exactly.
    pub evaluated: usize,
}

/// Find the `k_results` focal nodes with the highest census counts.
pub fn top_k_census(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    k_results: usize,
) -> Result<TopKResult, CensusError> {
    let p = spec.pattern();
    let k = spec.k();
    let anchors = spec.anchor_nodes()?;
    let analysis = ego_pattern::analysis::PatternAnalysis::with_pivot_candidates(p, Some(&anchors));
    let pivot = analysis.pivot();
    let pmi = PivotIndex::build(matches, pivot);

    // Upper bound g_k via k rounds of neighbor aggregation.
    let n = g.num_nodes();
    let mut bound: Vec<u64> = (0..n as u32)
        .map(|i| pmi.get(NodeId(i)).len() as u64)
        .collect();
    let mut next = vec![0u64; n];
    for _ in 0..k {
        for node in g.node_ids() {
            let mut acc = bound[node.index()];
            for &m in g.neighbors(node) {
                acc = acc.saturating_add(bound[m.index()]);
            }
            next[node.index()] = acc;
        }
        std::mem::swap(&mut bound, &mut next);
    }

    // Candidates in decreasing bound order.
    let mut order: Vec<NodeId> = spec.focal().nodes(g);
    order.sort_by_key(|&nd| (std::cmp::Reverse(bound[nd.index()]), nd));

    // Exact evaluation with threshold cutoff.
    let max_v_info = exact_eval_setup(&analysis, &anchors);
    let mut scratch = BfsScratch::new(n);
    let mut visited = Vec::new();
    let mut top: Vec<(NodeId, u64)> = Vec::new();
    let mut evaluated = 0usize;

    for &node in &order {
        let threshold = if top.len() >= k_results {
            top.last().map(|&(_, c)| c).unwrap_or(0)
        } else {
            0
        };
        if top.len() >= k_results && bound[node.index()] <= threshold {
            // No remaining node can beat the current k-th best: bounds are
            // sorted descending, so everything after is ≤ too. (Ties at the
            // threshold cannot displace an equal-count incumbent under our
            // lower-id tie-break only if the incumbent id is lower; to keep
            // determinism simple and results exact we keep scanning equal
            // bounds.)
            if bound[node.index()] < threshold {
                break;
            }
        }
        evaluated += 1;
        let count = exact_count(
            g,
            spec,
            matches,
            &pmi,
            &max_v_info,
            &mut scratch,
            &mut visited,
            node,
        );
        insert_top(&mut top, (node, count), k_results);
    }

    Ok(TopKResult { top, evaluated })
}

struct ExactInfo {
    max_v: u32,
    has_unreachable: bool,
    distant: Vec<Vec<ego_pattern::PNode>>,
}

fn exact_eval_setup(
    analysis: &ego_pattern::analysis::PatternAnalysis,
    anchors: &[ego_pattern::PNode],
) -> ExactInfo {
    use ego_pattern::analysis::UNREACHABLE;
    let pivot = analysis.pivot();
    let mut max_v = 0u32;
    let mut has_unreachable = false;
    for &a in anchors {
        match analysis.distance(pivot, a) {
            UNREACHABLE => has_unreachable = true,
            d => max_v = max_v.max(d),
        }
    }
    let distant = (1..=max_v.max(1) as usize + 1)
        .map(|i| {
            anchors
                .iter()
                .copied()
                .filter(|&a| {
                    let d = analysis.distance(pivot, a);
                    d == UNREACHABLE || d >= i as u32
                })
                .collect()
        })
        .collect();
    ExactInfo {
        max_v,
        has_unreachable,
        distant,
    }
}

#[allow(clippy::too_many_arguments)]
fn exact_count(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    pmi: &PivotIndex,
    info: &ExactInfo,
    scratch: &mut BfsScratch,
    visited: &mut Vec<NodeId>,
    node: NodeId,
) -> u64 {
    let k = spec.k();
    visited.clear();
    scratch.bounded_bfs(g, node, k, visited);
    let mut total = 0u64;
    for &np in visited.iter() {
        let bucket = pmi.get(np);
        if bucket.is_empty() {
            continue;
        }
        let d = scratch.distance(np);
        if !info.has_unreachable && d + info.max_v <= k {
            total += bucket.len() as u64;
        } else {
            let i = ((k - d) as usize + 1).min(info.distant.len());
            let to_check = &info.distant[i - 1];
            for &mi in bucket {
                let m = &matches[mi as usize];
                if to_check.iter().all(|&a| scratch.visited(m.image(a))) {
                    total += 1;
                }
            }
        }
    }
    total
}

fn insert_top(top: &mut Vec<(NodeId, u64)>, entry: (NodeId, u64), k: usize) {
    top.push(entry);
    top.sort_by_key(|&(nd, c)| (std::cmp::Reverse(c), nd));
    top.truncate(k);
}

/// Convenience: run the full census and take its top-k (the brute-force
/// reference used in tests and benches).
pub fn top_k_exhaustive(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    k_results: usize,
) -> Result<Vec<(NodeId, u64)>, CensusError> {
    let counts = crate::nd_pivot::run(g, spec, matches)?;
    Ok(counts.top_k(k_results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_matches;
    use crate::spec::FocalNodes;
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        // Two triangles sharing node 2 plus chain 4-5-6.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn matches_exhaustive_top_k() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        for k in 0..4u32 {
            let spec = CensusSpec::single(&p, k);
            for k_results in [1usize, 3, 10] {
                let fast = top_k_census(&g, &spec, &m, k_results).unwrap();
                let slow = top_k_exhaustive(&g, &spec, &m, k_results).unwrap();
                assert_eq!(fast.top, slow, "k={k} k_results={k_results}");
            }
        }
    }

    #[test]
    fn early_termination_on_skewed_graph() {
        // A hub-rich graph: the hub region dominates counts, so low-bound
        // peripheral nodes are never evaluated.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(64, Label(0));
        // Dense core on nodes 0..8.
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b.add_edge(NodeId(i), NodeId(j));
            }
        }
        // Long pendant path 8..64.
        b.add_edge(NodeId(0), NodeId(8));
        for i in 8..63u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1);
        let res = top_k_census(&g, &spec, &m, 3).unwrap();
        assert_eq!(res.top, top_k_exhaustive(&g, &spec, &m, 3).unwrap());
        assert!(
            res.evaluated < g.num_nodes(),
            "expected early termination, evaluated {}",
            res.evaluated
        );
    }

    #[test]
    fn respects_focal_subset() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        let spec =
            CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(5), NodeId(6)]));
        let res = top_k_census(&g, &spec, &m, 1).unwrap();
        assert_eq!(res.top.len(), 1);
        assert_eq!(res.top[0].0, NodeId(5));
    }

    #[test]
    fn k_results_larger_than_focal() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let res = top_k_census(&g, &spec, &m, 100).unwrap();
        assert_eq!(res.top.len(), 7);
        assert_eq!(res.evaluated, 7);
    }

    #[test]
    fn subpattern_top_k() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN me {?A;} }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 0).with_subpattern("me");
        let res = top_k_census(&g, &spec, &m, 1).unwrap();
        // Node 2 is in both triangles.
        assert_eq!(res.top, vec![(NodeId(2), 2)]);
    }
}
