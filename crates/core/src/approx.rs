//! Approximate census — the paper's second "future work" item:
//! "approximation techniques for even larger graphs."
//!
//! Two estimators over the pattern-driven view (each match contributes 1
//! to every node whose neighborhood contains it):
//!
//! * [`approx_census`] — **match sampling**: process a uniform sample of
//!   `s` matches exactly and scale per-node counts by `|M| / s`. Per-node
//!   estimates are unbiased (each match is a Bernoulli(s/|M|) inclusion),
//!   with relative error shrinking as counts grow — precisely the regime
//!   (huge match sets) where exact census gets expensive.
//! * [`approx_census_horvitz`] — the same sample reused with explicit
//!   Horvitz–Thompson weights, provided for when the caller wants
//!   per-match inclusion probabilities that are *not* uniform (e.g.
//!   stratified by region). With uniform weights it coincides with
//!   [`approx_census`].

use crate::result::{CensusError, CountVector};
use crate::spec::CensusSpec;
use ego_graph::bfs::BfsScratch;
use ego_graph::Graph;
use ego_matcher::{MatchList, PatternMatch};
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-node estimated counts (floating point, since scaling is fractional).
#[derive(Clone, Debug)]
pub struct ApproxCounts {
    estimates: Vec<f64>,
}

impl ApproxCounts {
    /// The estimate for a node.
    pub fn get(&self, n: ego_graph::NodeId) -> f64 {
        self.estimates[n.index()]
    }

    /// Round to integer counts (for drop-in comparisons).
    pub fn rounded(&self, focal_mask: Vec<bool>) -> CountVector {
        let mut cv = CountVector::new(self.estimates.len(), focal_mask);
        for (i, &e) in self.estimates.iter().enumerate() {
            cv.set(ego_graph::NodeId::from_index(i), e.round() as u64);
        }
        cv
    }

    /// The nodes with the highest estimates.
    pub fn top_k(&self, k: usize) -> Vec<(ego_graph::NodeId, f64)> {
        let mut v: Vec<(ego_graph::NodeId, f64)> = self
            .estimates
            .iter()
            .enumerate()
            .map(|(i, &e)| (ego_graph::NodeId::from_index(i), e))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Sampling-based approximate census: process `sample_size` uniformly
/// sampled matches exactly (pattern-driven crediting), scale by
/// `|M| / sample_size`.
pub fn approx_census<R: Rng>(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    sample_size: usize,
    rng: &mut R,
) -> Result<ApproxCounts, CensusError> {
    let total = matches.len();
    let mut estimates = vec![0.0f64; g.num_nodes()];
    if total == 0 || sample_size == 0 {
        return Ok(ApproxCounts { estimates });
    }
    let s = sample_size.min(total);
    let scale = total as f64 / s as f64;

    let mut idx: Vec<usize> = (0..total).collect();
    idx.shuffle(rng);
    idx.truncate(s);

    credit_matches(
        g,
        spec,
        idx.iter().map(|&i| &matches.matches()[i]),
        |node| estimates[node] += scale,
    )?;
    Ok(ApproxCounts { estimates })
}

/// Horvitz–Thompson estimator: caller supplies one inclusion probability
/// per match; sampled match `i` contributes `1 / p[i]` to each covered
/// node. Matches with `p = 0` must not appear in `sampled`.
pub fn approx_census_horvitz<'m>(
    g: &Graph,
    spec: &CensusSpec<'_>,
    sampled: impl Iterator<Item = (&'m PatternMatch, f64)>,
    num_nodes: usize,
) -> Result<ApproxCounts, CensusError> {
    let mut estimates = vec![0.0f64; num_nodes];
    let pairs: Vec<(&PatternMatch, f64)> = sampled.collect();
    for &(_, p) in &pairs {
        assert!(p > 0.0 && p <= 1.0, "inclusion probability out of range");
    }
    // Credit one match at a time so each weight applies to its own match.
    for (m, p) in pairs {
        let weight = 1.0 / p;
        credit_matches(g, spec, std::iter::once(m), |node| {
            estimates[node] += weight
        })?;
    }
    Ok(ApproxCounts { estimates })
}

/// Shared crediting core: for each match, find the nodes whose `k`-hop
/// neighborhood contains all its anchor images (multi-anchor ball
/// intersection), and invoke `credit` with each such node's index.
fn credit_matches<'m>(
    g: &Graph,
    spec: &CensusSpec<'_>,
    sample: impl Iterator<Item = &'m PatternMatch>,
    mut credit: impl FnMut(usize),
) -> Result<(), CensusError> {
    let anchors = spec.anchor_nodes()?;
    let k = spec.k();
    let mask = spec.focal().mask(g);
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut buf = Vec::new();
    let mut balls: Vec<Vec<ego_graph::NodeId>> = Vec::new();
    let mut covered: Vec<ego_graph::NodeId> = Vec::new();
    let mut tmp: Vec<ego_graph::NodeId> = Vec::new();
    let mut sstats = ego_graph::setops::SetOpStats::default();
    for m in sample {
        balls.clear();
        for &a in &anchors {
            buf.clear();
            scratch.bounded_bfs(g, m.image(a), k, &mut buf);
            let mut ball = buf.clone();
            ball.sort_unstable();
            balls.push(ball);
        }
        balls.sort_by_key(Vec::len);
        covered.clear();
        covered.extend_from_slice(&balls[0]);
        for b in &balls[1..] {
            if covered.is_empty() {
                break;
            }
            ego_graph::setops::intersect_into(&covered, b, &mut tmp, &mut sstats);
            std::mem::swap(&mut covered, &mut tmp);
        }
        for &n in &covered {
            if mask[n.index()] {
                credit(n.index());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{global_matches, nd_pivot};
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_with_chords(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n as usize, Label(0));
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 2) % n));
        }
        b.build()
    }

    #[test]
    fn full_sample_is_exact() {
        let g = ring_with_chords(40);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let exact = nd_pivot::run(&g, &spec, &m).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let approx = approx_census(&g, &spec, &m, m.len(), &mut rng).unwrap();
        for n in g.node_ids() {
            assert!(
                (approx.get(n) - exact.get(n) as f64).abs() < 1e-9,
                "node {n:?}: {} vs {}",
                approx.get(n),
                exact.get(n)
            );
        }
    }

    #[test]
    fn half_sample_is_close_on_large_counts() {
        let g = ring_with_chords(200);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 4);
        let exact = nd_pivot::run(&g, &spec, &m).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let approx = approx_census(&g, &spec, &m, m.len() / 2, &mut rng).unwrap();
        // Average relative error over nodes with meaningful counts.
        let mut total_rel = 0.0;
        let mut cnt = 0;
        for n in g.node_ids() {
            let e = exact.get(n) as f64;
            if e >= 10.0 {
                total_rel += (approx.get(n) - e).abs() / e;
                cnt += 1;
            }
        }
        let avg_rel = total_rel / cnt.max(1) as f64;
        assert!(avg_rel < 0.25, "avg relative error {avg_rel}");
    }

    #[test]
    fn estimator_is_unbiased_over_seeds() {
        let g = ring_with_chords(60);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 2);
        let exact = nd_pivot::run(&g, &spec, &m).unwrap();
        let probe = NodeId(0);
        let trials = 60;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let approx = approx_census(&g, &spec, &m, m.len() / 3, &mut rng).unwrap();
            sum += approx.get(probe);
        }
        let mean = sum / trials as f64;
        let truth = exact.get(probe) as f64;
        assert!(
            (mean - truth).abs() < 0.15 * truth.max(1.0),
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn horvitz_thompson_uniform_matches_plain() {
        let g = ring_with_chords(30);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1);
        // Uniform p = 1.0 over ALL matches = exact counting.
        let exact = nd_pivot::run(&g, &spec, &m).unwrap();
        let ht =
            approx_census_horvitz(&g, &spec, m.iter().map(|mm| (mm, 1.0)), g.num_nodes()).unwrap();
        for n in g.node_ids() {
            assert!((ht.get(n) - exact.get(n) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_sample_and_empty_matches() {
        let g = ring_with_chords(10);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let a = approx_census(&g, &spec, &m, 0, &mut rng).unwrap();
        assert_eq!(a.get(NodeId(0)), 0.0);
        let empty = MatchList::default();
        let b = approx_census(&g, &spec, &empty, 10, &mut rng).unwrap();
        assert_eq!(b.get(NodeId(0)), 0.0);
    }

    #[test]
    fn top_k_estimates_rank_hubs_first() {
        // Dense core + pendant path: core nodes must top the estimates.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(30, Label(0));
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(NodeId(i), NodeId(j));
            }
        }
        for i in 6..29u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        b.add_edge(NodeId(0), NodeId(6));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let spec = CensusSpec::single(&p, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let approx = approx_census(&g, &spec, &m, m.len(), &mut rng).unwrap();
        let top = approx.top_k(3);
        for (node, est) in top {
            assert!(node.0 < 7, "unexpected top node {node} ({est})");
        }
    }
}
