//! Pattern match clustering (Section IV-B5).
//!
//! Nearby (often overlapping) matches are grouped so one simultaneous
//! traversal serves the whole group. Each match `M` is embedded as the
//! feature vector `F(M) = <d(c_1, m_1), ..., d(c_|C|, m_|V_P|)>` over the
//! center distance index, then K-means groups the vectors.

use crate::centers::CenterIndex;
use crate::kmeans::kmeans;
use crate::spec::Clustering;
use ego_matcher::MatchList;
use rand::Rng;

/// Group match indices `0..matches.len()` into clusters according to
/// `strategy`. Always returns non-empty groups covering every match.
pub fn cluster_matches<R: Rng>(
    matches: &MatchList,
    centers: &CenterIndex,
    strategy: Clustering,
    max_auto_clusters: usize,
    kmeans_iters: usize,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    let n = matches.len();
    if n == 0 {
        return Vec::new();
    }
    match strategy {
        Clustering::None => (0..n as u32).map(|i| vec![i]).collect(),
        Clustering::Random(k) => {
            let k = k.clamp(1, n);
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
            for i in 0..n as u32 {
                groups[rng.gen_range(0..k)].push(i);
            }
            groups.retain(|g| !g.is_empty());
            groups
        }
        Clustering::KMeans(k) => kmeans_groups(matches, centers, k, kmeans_iters, rng),
        Clustering::Auto => {
            // Paper default: K = |M| / 4, capped so K-means cannot dominate.
            let k = (n / 4).clamp(1, max_auto_clusters);
            kmeans_groups(matches, centers, k, kmeans_iters, rng)
        }
    }
}

fn kmeans_groups<R: Rng>(
    matches: &MatchList,
    centers: &CenterIndex,
    k: usize,
    iters: usize,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    let n = matches.len();
    let k = k.clamp(1, n);
    if centers.is_empty() || k == 1 {
        // Without center distances there is no feature space; fall back to
        // one big group (documented: clustering requires centers).
        return vec![(0..n as u32).collect()];
    }
    let num_nodes = matches[0].nodes.len();
    let dim = centers.len() * num_nodes;
    let mut points = Vec::with_capacity(n * dim);
    for m in matches.iter() {
        for ci in 0..centers.len() {
            for &node in &m.nodes {
                let d = centers.distance(ci, node);
                // Unreachable → large sentinel, keeps disconnected matches
                // together rather than poisoning the arithmetic.
                points.push(if d == u32::MAX { 1e6 } else { d as f32 });
            }
        }
    }
    let assign = kmeans(&points, dim, k, iters, rng);
    let k_eff = assign.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k_eff];
    for (i, &c) in assign.iter().enumerate() {
        groups[c as usize].push(i as u32);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centers::CenterStrategy;
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_matcher::{MatchList, PatternMatch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two distant triangles connected by a long path.
    fn graph_and_matches() -> (ego_graph::Graph, MatchList) {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(12, Label(0));
        // Triangle 1: 0-1-2, triangle 2: 9-10-11, path 2-3-...-9.
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (9, 10), (10, 11), (9, 11)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        for i in 2u32..9 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        let matches = MatchList::from_matches(vec![
            PatternMatch {
                nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            },
            PatternMatch {
                nodes: vec![NodeId(9), NodeId(10), NodeId(11)],
            },
        ]);
        (g, matches)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4)
    }

    #[test]
    fn none_gives_singletons() {
        let (g, m) = graph_and_matches();
        let c = CenterIndex::build(&g, 2, CenterStrategy::Degree, &mut rng());
        let groups = cluster_matches(&m, &c, Clustering::None, 256, 10, &mut rng());
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn random_covers_all() {
        let (g, m) = graph_and_matches();
        let c = CenterIndex::build(&g, 2, CenterStrategy::Degree, &mut rng());
        let groups = cluster_matches(&m, &c, Clustering::Random(2), 256, 10, &mut rng());
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn kmeans_separates_distant_matches() {
        let (g, m) = graph_and_matches();
        let c = CenterIndex::build(&g, 3, CenterStrategy::Degree, &mut rng());
        let groups = cluster_matches(&m, &c, Clustering::KMeans(2), 256, 10, &mut rng());
        assert_eq!(groups.len(), 2);
        // The two matches are far apart: they must land in different groups.
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn auto_caps_cluster_count() {
        let (g, _) = graph_and_matches();
        let c = CenterIndex::build(&g, 2, CenterStrategy::Degree, &mut rng());
        let many = MatchList::from_matches(
            (0..100)
                .map(|i| PatternMatch {
                    nodes: vec![NodeId(i % 12)],
                })
                .collect(),
        );
        let groups = cluster_matches(&many, &c, Clustering::Auto, 5, 10, &mut rng());
        assert!(groups.len() <= 5);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn no_centers_falls_back_to_single_group() {
        let (_, m) = graph_and_matches();
        let groups = cluster_matches(
            &m,
            &CenterIndex::empty(),
            Clustering::KMeans(2),
            256,
            10,
            &mut rng(),
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_matches() {
        let groups = cluster_matches(
            &MatchList::default(),
            &CenterIndex::empty(),
            Clustering::Auto,
            256,
            10,
            &mut rng(),
        );
        assert!(groups.is_empty());
    }
}
