//! ND-DIFF: differential counting (Section IV-A2, Algorithm 3).
//!
//! Adjacent nodes share most of their `k`-hop neighborhoods, so the match
//! set `M[n']` of a neighbor `n'` is derived from `M[n]` by (1) adding
//! matches that touch `N_k(n') − N_k(n)` and are fully contained in
//! `S(n', k)`, and (2) removing matches that touch `N_k(n) − N_k(n')`.
//! The match index here is keyed by **all** nodes of each match
//! (GADDI-style), not just the pivot.

use crate::result::{CensusError, CountVector};
use crate::spec::CensusSpec;
use crate::tstats::TraversalStats;
use ego_graph::bfs::BfsScratch;
use ego_graph::{neighborhood, FastHashMap, FastHashSet, Graph, NodeId};
use ego_matcher::MatchList;

/// Match index over all member nodes: `PMI[n]` = matches containing `n`.
pub struct FullIndex {
    map: FastHashMap<u32, Vec<u32>>,
}

impl FullIndex {
    /// Build from a match list.
    pub fn build(matches: &MatchList) -> Self {
        let mut map: FastHashMap<u32, Vec<u32>> = FastHashMap::default();
        for (i, m) in matches.iter().enumerate() {
            for &n in &m.nodes {
                map.entry(n.0).or_default().push(i as u32);
            }
        }
        FullIndex { map }
    }

    /// Matches containing `n`.
    pub fn get(&self, n: NodeId) -> &[u32] {
        self.map.get(&n.0).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Run ND-DIFF over precomputed global matches.
///
/// Subpattern queries are rejected: differential maintenance tracks full
/// containment only.
pub fn run(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<CountVector, CensusError> {
    run_instrumented(g, spec, matches).map(|(cv, _)| cv)
}

/// [`run`] with traversal-cost instrumentation.
pub fn run_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<(CountVector, TraversalStats), CensusError> {
    if spec.subpattern_name().is_some() {
        return Err(CensusError::Unsupported(
            "ND-DIFF cannot evaluate COUNTSP queries; use ND-PVOT or PT-OPT".into(),
        ));
    }
    let k = spec.k();
    let pmi = FullIndex::build(matches);
    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask.clone());

    // Remaining focal set; chained traversal prefers a neighbor of the
    // current node so neighborhoods overlap.
    let mut remaining: FastHashSet<u32> = spec.focal().nodes(g).iter().map(|n| n.0).collect();
    let mut scratch = BfsScratch::new(g.num_nodes());

    let mut current = match spec.focal().nodes(g).first() {
        Some(&n) => n,
        None => return Ok((counts, TraversalStats::default())),
    };
    let mut prev_nodes: Vec<NodeId> = Vec::new();
    let mut have_prev = false;
    let mut current_set: FastHashSet<u32> = FastHashSet::default();
    let mut buf = Vec::new();

    while !remaining.is_empty() {
        remaining.remove(&current.0);

        buf.clear();
        scratch.bounded_bfs(g, current, k, &mut buf);
        buf.sort_unstable();
        let cur_nodes = buf.clone();

        if !have_prev {
            current_set.clear();
            // Full computation: every match touching the neighborhood,
            // filtered for containment.
            for &n in &cur_nodes {
                for &mi in pmi.get(n) {
                    if current_set.contains(&mi) {
                        continue;
                    }
                    let m = &matches[mi as usize];
                    if m.nodes.iter().all(|x| cur_nodes.binary_search(x).is_ok()) {
                        current_set.insert(mi);
                    }
                }
            }
        } else {
            let added = neighborhood::difference_sorted(&cur_nodes, &prev_nodes);
            let removed = neighborhood::difference_sorted(&prev_nodes, &cur_nodes);
            // Insertions first (paper order); removals then evict anything
            // that slid out of the neighborhood.
            for &n in &added {
                for &mi in pmi.get(n) {
                    if current_set.contains(&mi) {
                        continue;
                    }
                    let m = &matches[mi as usize];
                    if m.nodes.iter().all(|x| cur_nodes.binary_search(x).is_ok()) {
                        current_set.insert(mi);
                    }
                }
            }
            for &n in &removed {
                for &mi in pmi.get(n) {
                    current_set.remove(&mi);
                }
            }
        }

        counts.set(current, current_set.len() as u64);

        // Next: prefer an unprocessed neighbor (keeps the diff small).
        let next_neighbor = g
            .neighbors(current)
            .iter()
            .copied()
            .find(|m| remaining.contains(&m.0));
        match next_neighbor {
            Some(nb) => {
                prev_nodes = cur_nodes;
                have_prev = true;
                current = nb;
            }
            None => {
                // Jump to an arbitrary remaining node; restart from scratch.
                match remaining.iter().next().copied() {
                    Some(raw) => {
                        current = NodeId(raw);
                        have_prev = false;
                    }
                    None => break,
                }
            }
        }
    }
    let tstats = TraversalStats {
        edges_traversed: scratch.edges_scanned(),
        nodes_expanded: spec.focal().count(g) as u64,
        reinsertions: 0,
        index_edges: 0,
    };
    Ok((counts, tstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FocalNodes;
    use crate::{global_matches, nd_bas};
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn agrees_with_nd_bas() {
        let g = fixture();
        for pat_text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN e { ?A-?B; }",
            "PATTERN n { ?A; }",
        ] {
            let p = Pattern::parse(pat_text).unwrap();
            for k in 0..3 {
                let spec = CensusSpec::single(&p, k);
                let m = global_matches(&g, &p);
                let fast = run(&g, &spec, &m).unwrap();
                let slow = nd_bas::run(&g, &spec).unwrap();
                for n in g.node_ids() {
                    assert_eq!(fast.get(n), slow.get(n), "{pat_text} k={k} node={n:?}");
                }
            }
        }
    }

    #[test]
    fn full_index_covers_all_members() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = global_matches(&g, &p);
        let idx = FullIndex::build(&m);
        // Triangle node 2 participates in both triangles.
        assert_eq!(idx.get(NodeId(2)).len(), 2);
        assert_eq!(idx.get(NodeId(6)).len(), 0);
    }

    #[test]
    fn sparse_focal_set_with_jumps() {
        // Focal nodes in different components force prev = NULL restarts.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(3), NodeId(4));
        b.add_edge(NodeId(4), NodeId(5));
        let g = b.build();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec =
            CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(1), NodeId(4)]));
        let m = global_matches(&g, &p);
        let counts = run(&g, &spec, &m).unwrap();
        assert_eq!(counts.get(NodeId(1)), 2);
        assert_eq!(counts.get(NodeId(4)), 2);
    }

    #[test]
    fn subpattern_rejected() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; SUBPATTERN s {?A;} }").unwrap();
        let spec = CensusSpec::single(&p, 1).with_subpattern("s");
        let m = global_matches(&g, &p);
        assert!(matches!(
            run(&g, &spec, &m),
            Err(CensusError::Unsupported(_))
        ));
    }

    #[test]
    fn empty_focal_set() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec = CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![]));
        let m = global_matches(&g, &p);
        let counts = run(&g, &spec, &m).unwrap();
        assert_eq!(counts.total(), 0);
    }
}
