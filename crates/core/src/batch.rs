//! Batched census execution: evaluate many patterns over one shared
//! neighborhood sweep (an extension beyond the paper).
//!
//! Every census algorithm re-walks the same CSR adjacency per pattern:
//! the node-driven family re-extracts each focal node's k-hop
//! neighborhood once per pattern, and the pattern-driven family rebuilds
//! the center index and re-runs the simultaneous traversal per pattern.
//! A [`run_batch_exec`] call plans N specs together and shares that work:
//!
//! * **ND side** — specs resolving to a node-driven algorithm are grouped
//!   by focal set. Each group runs **one** BFS sweep per focal node at
//!   `k_max = max(k_i)`; [`BfsScratch::bounded_bfs`] emits nodes in
//!   nondecreasing distance order, so every spec reads its own radius as
//!   a prefix of the shared frontier. Pivot-mode specs check match
//!   containment against the shared distance labels; baseline-mode specs
//!   count via a membership-restricted [`NeighborhoodMatcher`] (candidate
//!   space derived once per pattern, not once per neighborhood).
//! * **PT side** — specs resolving to a pattern-driven algorithm are
//!   grouped by equal radius (the PMD saturation value `inf = k + 1` is
//!   per-group) and share **one** center index across all groups. Within
//!   a group, the matches of all patterns are pooled and clustered
//!   together, so one simultaneous traversal relaxes the distance bounds
//!   for anchors of *different* patterns at once; each spec then counts
//!   from the shared PMD rows under its own focal mask.
//!
//! Counts are bit-identical to N sequential [`crate::run_census_exec`]
//! runs for every algorithm and thread count (property-tested in
//! `tests/batch_equivalence.rs`). Two documented promotions keep that
//! guarantee while maximizing sharing: ND-DIFF specs run through the
//! shared pivot sweep and PT-BAS specs through the shared PT executor —
//! all algorithms are exact, so the counts cannot differ (the same
//! rationale that lets the server cache results across algorithms).
//! Rejections are preserved for parity: ND-BAS still refuses COUNTSP and
//! attribute/edge predicates, ND-DIFF still refuses COUNTSP.

use crate::centers::CenterIndex;
use crate::chooser;
use crate::kmeans::kmeans;
use crate::nd_pivot::PivotIndex;
use crate::parallel::{exec_matches, ExecConfig};
use crate::pt_opt::TraversalQueue;
use crate::result::{CensusError, CountVector};
use crate::spec::{CensusSpec, Clustering, PtConfig, PtOrdering};
use crate::tstats::TraversalStats;
use crate::Algorithm;
use ego_graph::bfs::BfsScratch;
use ego_graph::profile::ProfileIndex;
use ego_graph::{FastHashMap, FastHashSet, Graph, NodeId};
use ego_matcher::{ExtractScratch, MatchList, NeighborhoodMatcher};
use ego_pattern::analysis::{PatternAnalysis, UNREACHABLE};
use ego_pattern::PNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One shared-work unit of a batch plan. Spec indices refer to the order
/// of the `specs` slice passed to [`run_batch_exec`] / [`plan_stages`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchStage {
    /// One BFS sweep per focal node at `k_max`, serving every listed
    /// spec: `pivot` members via the pattern-match index, `baseline`
    /// members via membership-restricted matching.
    NdSweep {
        /// Specs served by the pivot-index containment check.
        pivot: Vec<usize>,
        /// Specs served by per-neighborhood restricted matching.
        baseline: Vec<usize>,
        /// The shared sweep radius (max over member radii).
        k_max: u32,
    },
    /// One shared simultaneous traversal (per merged cluster) for all
    /// listed specs, which share the radius `k`.
    PtGroup {
        /// Member spec indices.
        specs: Vec<usize>,
        /// The group's common radius.
        k: u32,
    },
}

/// The outcome of a batched run, in the input spec order.
pub struct BatchResult {
    /// Per-spec census counts (bit-identical to sequential runs).
    pub counts: Vec<CountVector>,
    /// Merged traversal statistics for the whole batch.
    pub stats: TraversalStats,
    /// Per-spec global match lists (`None` for ND-BAS, which never
    /// materializes them). Specs sharing a pattern share the `Arc`;
    /// callers can cache these for future batches.
    pub matches: Vec<Option<Arc<MatchList>>>,
    /// The executed plan.
    pub stages: Vec<BatchStage>,
}

/// How a spec is served inside the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// ND-BAS semantics: restricted matching per neighborhood.
    Baseline,
    /// ND-PVOT semantics (also serves ND-DIFF): pivot-index containment.
    Pivot,
    /// Pattern-driven simultaneous traversal (serves PT-BAS/PT-RND/PT-OPT).
    Pt,
}

/// Sequential convenience wrapper over [`run_batch_exec`].
pub fn run_batch<'a>(
    g: &Graph,
    specs: &[CensusSpec<'a>],
    algorithm: Algorithm,
    config: &PtConfig,
) -> Result<BatchResult, CensusError> {
    run_batch_exec(g, specs, algorithm, config, &ExecConfig::sequential(), &[])
}

/// Evaluate `specs` as one batch under `algorithm` (applied per spec;
/// `Auto` resolves per spec exactly as [`crate::run_census_exec`] does).
///
/// `provided` optionally supplies precomputed global match lists per spec
/// (e.g. from a server-side cache); missing entries are computed once per
/// distinct pattern and returned in [`BatchResult::matches`].
pub fn run_batch_exec<'a>(
    g: &Graph,
    specs: &[CensusSpec<'a>],
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
    provided: &[Option<Arc<MatchList>>],
) -> Result<BatchResult, CensusError> {
    for spec in specs {
        spec.validate(g)?;
    }
    let threads = exec.resolve().max(1);
    let mut stats = TraversalStats::default();

    // Global match lists, computed once per distinct pattern. ND-BAS
    // never materializes matches (parity with the sequential dispatch).
    let mut matches: Vec<Option<Arc<MatchList>>> = vec![None; specs.len()];
    if algorithm != Algorithm::NdBaseline {
        for (slot, m) in provided.iter().enumerate().take(specs.len()) {
            if let Some(m) = m {
                matches[slot] = Some(m.clone());
            }
        }
        for i in 0..specs.len() {
            if matches[i].is_some() {
                continue;
            }
            let reuse = (0..specs.len()).find(|&j| {
                matches[j].is_some() && std::ptr::eq(specs[j].pattern(), specs[i].pattern())
            });
            matches[i] = match reuse {
                Some(j) => matches[j].clone(),
                None => Some(Arc::new(exec_matches(g, specs[i].pattern(), threads))),
            };
        }
    }

    let modes = resolve_modes(g, specs, algorithm, &matches)?;
    let stages = group_stages(specs, &modes);

    let mut counts: Vec<CountVector> = specs
        .iter()
        .map(|s| CountVector::new(g.num_nodes(), s.focal().mask(g)))
        .collect();

    // One center index serves every PT group in the batch (it is
    // k-independent), consuming RNG state the way pt_opt::plan does.
    let has_pt = stages
        .iter()
        .any(|s| matches!(s, BatchStage::PtGroup { .. }));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (pmd_centers, cluster_centers) = if has_pt {
        let cluster_center_count = config.clustering_centers.unwrap_or(config.num_centers);
        let total = config.num_centers.max(cluster_center_count);
        let full = if total > 0 {
            CenterIndex::build(g, total, config.center_strategy, &mut rng)
        } else {
            CenterIndex::empty()
        };
        stats.index_edges += full.build_edges();
        (
            full.take(config.num_centers),
            full.take(cluster_center_count),
        )
    } else {
        (CenterIndex::empty(), CenterIndex::empty())
    };
    let ordering = if algorithm == Algorithm::PtRandom {
        PtOrdering::Random
    } else {
        config.ordering
    };

    for stage in &stages {
        match stage {
            BatchStage::NdSweep {
                pivot,
                baseline,
                k_max,
            } => nd_sweep(
                g,
                specs,
                &matches,
                pivot,
                baseline,
                *k_max,
                threads,
                &mut counts,
                &mut stats,
            )?,
            BatchStage::PtGroup { specs: idxs, k } => pt_group_run(
                g,
                specs,
                &matches,
                idxs,
                *k,
                &pmd_centers,
                &cluster_centers,
                config,
                ordering,
                &mut rng,
                threads,
                &mut counts,
                &mut stats,
            )?,
        }
    }

    Ok(BatchResult {
        counts,
        stats,
        matches,
        stages,
    })
}

/// Plan (but do not execute) a batch: which specs share an ND sweep,
/// which share a PT traversal group. `matches[i]` is required for specs
/// only when `algorithm` is `Auto` (the chooser needs cardinalities).
/// Used by `EXPLAIN` to describe the batch plan.
pub fn plan_stages<'a>(
    g: &Graph,
    specs: &[CensusSpec<'a>],
    algorithm: Algorithm,
    matches: &[Option<Arc<MatchList>>],
) -> Result<Vec<BatchStage>, CensusError> {
    let modes = resolve_modes(g, specs, algorithm, matches)?;
    Ok(group_stages(specs, &modes))
}

fn resolve_modes(
    g: &Graph,
    specs: &[CensusSpec<'_>],
    algorithm: Algorithm,
    matches: &[Option<Arc<MatchList>>],
) -> Result<Vec<Mode>, CensusError> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let m = matches.get(i).and_then(|o| o.as_deref());
            resolve_mode(g, spec, algorithm, m)
        })
        .collect()
}

fn resolve_mode(
    g: &Graph,
    spec: &CensusSpec<'_>,
    algorithm: Algorithm,
    matches: Option<&MatchList>,
) -> Result<Mode, CensusError> {
    match algorithm {
        Algorithm::NdBaseline => {
            // Parity with crate::nd_bas::run's rejections.
            if spec.subpattern_name().is_some() {
                return Err(CensusError::Unsupported(
                    "ND-BAS cannot evaluate COUNTSP queries; use ND-PVOT or PT-OPT".into(),
                ));
            }
            let p = spec.pattern();
            if !p.node_predicates().is_empty() || !p.edge_predicates().is_empty() {
                return Err(CensusError::Unsupported(
                    "ND-BAS supports structural/label patterns only; \
                     use ND-PVOT or PT-OPT for attribute predicates"
                        .into(),
                ));
            }
            Ok(Mode::Baseline)
        }
        Algorithm::NdDiff => {
            // Parity with crate::nd_diff::run's rejection; supported specs
            // are served by the shared pivot sweep (exact, so identical).
            if spec.subpattern_name().is_some() {
                return Err(CensusError::Unsupported(
                    "ND-DIFF cannot evaluate COUNTSP queries; use ND-PVOT or PT-OPT".into(),
                ));
            }
            Ok(Mode::Pivot)
        }
        Algorithm::NdPivot => Ok(Mode::Pivot),
        Algorithm::PtBaseline | Algorithm::PtOpt | Algorithm::PtRandom => Ok(Mode::Pt),
        Algorithm::Auto => {
            let m = matches.ok_or_else(|| {
                CensusError::Unsupported(
                    "batch planning for Auto requires precomputed match lists".into(),
                )
            })?;
            Ok(match chooser::choose(g, spec, m) {
                Algorithm::PtOpt => Mode::Pt,
                _ => Mode::Pivot,
            })
        }
    }
}

/// Group resolved specs into shared-work stages: ND specs by focal set
/// (a sweep shares BFS frontiers, so the focal sets must coincide), PT
/// specs by radius (the PMD saturation bound is per-k).
fn group_stages(specs: &[CensusSpec<'_>], modes: &[Mode]) -> Vec<BatchStage> {
    let mut stages = Vec::new();

    // (representative spec index, pivot members, baseline members)
    let mut nd_groups: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
    for (i, mode) in modes.iter().enumerate() {
        if *mode == Mode::Pt {
            continue;
        }
        let slot = nd_groups
            .iter()
            .position(|&(rep, _, _)| specs[rep].focal() == specs[i].focal());
        let slot = match slot {
            Some(s) => s,
            None => {
                nd_groups.push((i, Vec::new(), Vec::new()));
                nd_groups.len() - 1
            }
        };
        match mode {
            Mode::Pivot => nd_groups[slot].1.push(i),
            Mode::Baseline => nd_groups[slot].2.push(i),
            Mode::Pt => unreachable!(),
        }
    }
    for (_, pivot, baseline) in nd_groups {
        let k_max = pivot
            .iter()
            .chain(&baseline)
            .map(|&i| specs[i].k())
            .max()
            .expect("non-empty ND group");
        stages.push(BatchStage::NdSweep {
            pivot,
            baseline,
            k_max,
        });
    }

    let mut pt_groups: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, mode) in modes.iter().enumerate() {
        if *mode != Mode::Pt {
            continue;
        }
        let k = specs[i].k();
        match pt_groups.iter_mut().find(|(gk, _)| *gk == k) {
            Some((_, v)) => v.push(i),
            None => pt_groups.push((k, vec![i])),
        }
    }
    for (k, idxs) in pt_groups {
        stages.push(BatchStage::PtGroup { specs: idxs, k });
    }
    stages
}

// ---------------------------------------------------------------------
// ND side: one BFS sweep per focal node serves every spec in the group.
// ---------------------------------------------------------------------

/// Read-only per-spec state for pivot-mode members of a sweep.
struct PivotSweepItem {
    slot: usize,
    k: u32,
    pmi: PivotIndex,
    max_v: u32,
    has_unreachable_anchor: bool,
    distant: Vec<Vec<PNode>>,
    matches: Arc<MatchList>,
}

/// Read-only per-spec state for baseline-mode members of a sweep.
struct BasSweepItem<'g, 'p> {
    slot: usize,
    k: u32,
    matcher: NeighborhoodMatcher<'g, 'p>,
}

#[allow(clippy::too_many_arguments)]
fn nd_sweep(
    g: &Graph,
    specs: &[CensusSpec<'_>],
    matches: &[Option<Arc<MatchList>>],
    pivot_idxs: &[usize],
    baseline_idxs: &[usize],
    k_max: u32,
    threads: usize,
    counts: &mut [CountVector],
    stats: &mut TraversalStats,
) -> Result<(), CensusError> {
    let mut pivot_items = Vec::with_capacity(pivot_idxs.len());
    for &i in pivot_idxs {
        let spec = &specs[i];
        let m = matches[i]
            .as_ref()
            .expect("pivot mode requires matches")
            .clone();
        let anchors = spec.anchor_nodes()?;
        let analysis = PatternAnalysis::with_pivot_candidates(spec.pattern(), Some(&anchors));
        let pivot = analysis.pivot();
        // Same anchor-distance precomputation as crate::nd_pivot.
        let mut max_v: u32 = 0;
        let mut has_unreachable_anchor = false;
        for &a in &anchors {
            let d = analysis.distance(pivot, a);
            if d == UNREACHABLE {
                has_unreachable_anchor = true;
            } else {
                max_v = max_v.max(d);
            }
        }
        let distant: Vec<Vec<PNode>> = (1..=max_v.max(1) as usize + 1)
            .map(|idx| {
                anchors
                    .iter()
                    .copied()
                    .filter(|&a| {
                        let d = analysis.distance(pivot, a);
                        d == UNREACHABLE || d >= idx as u32
                    })
                    .collect()
            })
            .collect();
        let pmi = PivotIndex::build(&m, pivot);
        pivot_items.push(PivotSweepItem {
            slot: i,
            k: spec.k(),
            pmi,
            max_v,
            has_unreachable_anchor,
            distant,
            matches: m,
        });
    }

    let mut bas_items = Vec::with_capacity(baseline_idxs.len());
    if !baseline_idxs.is_empty() {
        let profiles = ProfileIndex::build(g);
        for &i in baseline_idxs {
            bas_items.push(BasSweepItem {
                slot: i,
                k: specs[i].k(),
                matcher: NeighborhoodMatcher::with_profiles_threads(
                    g,
                    specs[i].pattern(),
                    &profiles,
                    threads,
                ),
            });
        }
    }

    // All members share the focal set (grouping invariant).
    let rep = pivot_idxs
        .iter()
        .chain(baseline_idxs)
        .next()
        .copied()
        .expect("non-empty ND group");
    let focal = specs[rep].focal().nodes(g);
    let mask = specs[rep].focal().mask(g);

    // One neighborhood extraction per focal node for the whole group —
    // this is the batched win the acceptance criteria measure.
    stats.nodes_expanded += focal.len() as u64;

    let shards: Vec<&[NodeId]> = if threads == 1 || focal.len() < 2 * threads {
        vec![&focal[..]]
    } else {
        focal.chunks(focal.len().div_ceil(threads)).collect()
    };

    let results: Vec<(Vec<(usize, CountVector)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let pivot_items = &pivot_items;
                let bas_items = &bas_items;
                let mask = &mask;
                scope.spawn(move || sweep_shard(g, shard, k_max, mask, pivot_items, bas_items))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("census worker panicked"))
            .collect()
    });

    for (per_spec, edges) in results {
        stats.edges_traversed += edges;
        for (slot, cv) in per_spec {
            counts[slot].merge_add(&cv);
        }
    }
    Ok(())
}

/// Process one focal shard: a single bounded BFS at `k_max` per focal
/// node; every member spec reads its own radius as a prefix of the
/// distance-ordered frontier.
fn sweep_shard(
    g: &Graph,
    shard: &[NodeId],
    k_max: u32,
    mask: &[bool],
    pivot_items: &[PivotSweepItem],
    bas_items: &[BasSweepItem<'_, '_>],
) -> (Vec<(usize, CountVector)>, u64) {
    let mut out: Vec<(usize, CountVector)> = pivot_items
        .iter()
        .map(|it| it.slot)
        .chain(bas_items.iter().map(|it| it.slot))
        .map(|slot| (slot, CountVector::new(g.num_nodes(), mask.to_vec())))
        .collect();
    let n_pivot = pivot_items.len();
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut visited: Vec<NodeId> = Vec::new();
    let mut membership: FastHashSet<u32> = FastHashSet::default();
    let mut extract_scratch = ExtractScratch::default();

    for &n in shard {
        visited.clear();
        scratch.bounded_bfs(g, n, k_max, &mut visited);
        for (ii, it) in pivot_items.iter().enumerate() {
            let mut total = 0u64;
            // At full radius "visited" already implies containment, so the
            // per-image distance re-check (needed for prefix radii below
            // k_max) can be skipped.
            let full_radius = it.k == k_max;
            for &np in &visited {
                let d = scratch.distance(np);
                if d > it.k {
                    break; // frontier is in nondecreasing distance order
                }
                let bucket = it.pmi.get(np);
                if bucket.is_empty() {
                    continue;
                }
                if !it.has_unreachable_anchor && d + it.max_v <= it.k {
                    total += bucket.len() as u64;
                } else {
                    let idx = ((it.k - d) as usize + 1).min(it.distant.len());
                    let to_check: &[PNode] = &it.distant[idx - 1];
                    for &mi in bucket {
                        let m = &it.matches[mi as usize];
                        let ok = to_check.iter().all(|&a| {
                            let img = m.image(a);
                            // The sweep ran at k_max ≥ it.k, so "visited"
                            // alone no longer implies containment — the
                            // per-spec radius must be re-checked.
                            scratch.visited(img) && (full_radius || scratch.distance(img) <= it.k)
                        });
                        if ok {
                            total += 1;
                        }
                    }
                }
            }
            out[ii].1.set(n, total);
        }
        for (bi, it) in bas_items.iter().enumerate() {
            membership.clear();
            for &np in &visited {
                if scratch.distance(np) > it.k {
                    break;
                }
                membership.insert(np.0);
            }
            out[n_pivot + bi].1.set(
                n,
                it.matcher
                    .count_in_scratch(&membership, &mut extract_scratch),
            );
        }
    }
    (out, scratch.edges_scanned())
}

// ---------------------------------------------------------------------
// PT side: pool the matches of same-radius specs into shared traversals.
// ---------------------------------------------------------------------

/// Read-only per-spec state inside a PT group.
struct PtSlotState {
    slot: usize,
    anchors: Vec<PNode>,
    analysis: PatternAnalysis,
    matches: Arc<MatchList>,
    mask: Vec<bool>,
}

/// One pooled traversal seed: match `mi` of group member `si`.
#[derive(Clone, Copy)]
struct PtItem {
    si: usize,
    mi: u32,
}

#[allow(clippy::too_many_arguments)]
fn pt_group_run(
    g: &Graph,
    specs: &[CensusSpec<'_>],
    matches: &[Option<Arc<MatchList>>],
    idxs: &[usize],
    k: u32,
    pmd_centers: &CenterIndex,
    cluster_centers: &CenterIndex,
    config: &PtConfig,
    ordering: PtOrdering,
    rng: &mut StdRng,
    threads: usize,
    counts: &mut [CountVector],
    stats: &mut TraversalStats,
) -> Result<(), CensusError> {
    assert!(k < u16::MAX as u32, "k too large for PMD storage");
    let mut slots: Vec<PtSlotState> = Vec::new();
    let mut items: Vec<PtItem> = Vec::new();
    for &i in idxs {
        let spec = &specs[i];
        let m = matches[i]
            .as_ref()
            .expect("PT mode requires matches")
            .clone();
        if m.is_empty() {
            continue;
        }
        let anchors = spec.anchor_nodes()?;
        let analysis = PatternAnalysis::new(spec.pattern());
        let si = slots.len();
        items.extend((0..m.len() as u32).map(|mi| PtItem { si, mi }));
        slots.push(PtSlotState {
            slot: i,
            anchors,
            analysis,
            matches: m,
            mask: spec.focal().mask(g),
        });
    }
    if items.is_empty() {
        return Ok(());
    }

    let groups = cluster_items(&items, &slots, cluster_centers, config, rng);

    let chunks: Vec<&[Vec<u32>]> = if threads == 1 || groups.len() < 2 {
        vec![&groups[..]]
    } else {
        groups
            .chunks(groups.len().div_ceil(threads.min(groups.len())))
            .collect()
    };

    let results: Vec<(Vec<CountVector>, TraversalStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let slots = &slots;
                let items = &items;
                scope.spawn(move || {
                    let mut qrng = StdRng::seed_from_u64(config.seed);
                    let mut queue = TraversalQueue::new(ordering, &mut qrng);
                    let mut local: Vec<CountVector> = slots
                        .iter()
                        .map(|st| CountVector::new(g.num_nodes(), st.mask.clone()))
                        .collect();
                    let mut ts = TraversalStats::default();
                    for group in *chunk {
                        process_pt_cluster(
                            g,
                            k,
                            slots,
                            items,
                            group,
                            pmd_centers,
                            &mut queue,
                            config.use_distance_shortcuts,
                            &mut local,
                            &mut ts,
                        );
                    }
                    (local, ts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("census worker panicked"))
            .collect()
    });

    for (local, ts) in results {
        stats.add(&ts);
        for (st, cv) in slots.iter().zip(&local) {
            counts[st.slot].merge_add(cv);
        }
    }
    Ok(())
}

/// Cluster pooled items. The per-pattern K-means of
/// [`crate::clustering::cluster_matches`] embeds a match as a
/// `|C| × |V_P|` vector, which is pattern-arity-dependent; pooled items
/// use the pattern-independent `|C|`-dimensional embedding
/// `F(item)[c] = min over anchor images of d(c, image)` instead.
/// Clustering only groups traversals — it can never change the counts —
/// so the cross-pattern feature space is safe.
fn cluster_items(
    items: &[PtItem],
    slots: &[PtSlotState],
    centers: &CenterIndex,
    config: &PtConfig,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let n = items.len();
    match config.clustering {
        Clustering::None => (0..n as u32).map(|i| vec![i]).collect(),
        Clustering::Random(kc) => {
            let kc = kc.clamp(1, n);
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); kc];
            for i in 0..n as u32 {
                groups[rng.gen_range(0..kc)].push(i);
            }
            groups.retain(|g| !g.is_empty());
            groups
        }
        Clustering::KMeans(kc) => {
            kmeans_item_groups(items, slots, centers, kc, config.kmeans_iters, rng)
        }
        Clustering::Auto => {
            let kc = (n / 4).clamp(1, config.max_auto_clusters);
            kmeans_item_groups(items, slots, centers, kc, config.kmeans_iters, rng)
        }
    }
}

fn kmeans_item_groups(
    items: &[PtItem],
    slots: &[PtSlotState],
    centers: &CenterIndex,
    kc: usize,
    iters: usize,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let n = items.len();
    let kc = kc.clamp(1, n);
    if centers.is_empty() || kc == 1 {
        return vec![(0..n as u32).collect()];
    }
    let dim = centers.len();
    let mut points = Vec::with_capacity(n * dim);
    for item in items {
        let st = &slots[item.si];
        let m = &st.matches[item.mi as usize];
        for ci in 0..dim {
            let mut best = f32::INFINITY;
            for &a in &st.anchors {
                let d = centers.distance(ci, m.image(a));
                if d != u32::MAX {
                    best = best.min(d as f32);
                }
            }
            // Unreachable/anchorless → large sentinel, as in cluster_matches.
            points.push(if best.is_finite() { best } else { 1e6 });
        }
    }
    let assign = kmeans(&points, dim, kc, iters, rng);
    let k_eff = assign.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k_eff];
    for (i, &c) in assign.iter().enumerate() {
        groups[c as usize].push(i as u32);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// The multi-pattern generalization of `pt_opt::process_cluster`: one
/// relaxation-based simultaneous traversal maintains PMD rows over the
/// **union** of the cluster's anchor images across all member patterns.
/// The expansion gate is an OR over that union, so merging patterns only
/// widens it — per-anchor convergence (and hence exact counting) is
/// preserved for every member.
#[allow(clippy::too_many_arguments)]
fn process_pt_cluster(
    g: &Graph,
    k: u32,
    slots: &[PtSlotState],
    items: &[PtItem],
    group: &[u32],
    centers: &CenterIndex,
    queue: &mut TraversalQueue<'_>,
    use_distance_shortcuts: bool,
    out: &mut [CountVector],
    tstats: &mut TraversalStats,
) {
    let inf = (k + 1) as u16;

    // Unique anchor nodes across the cluster (all member patterns), each
    // with a dense position.
    let mut anchor_pos: FastHashMap<u32, u16> = FastHashMap::default();
    let mut anchor_nodes: Vec<NodeId> = Vec::new();
    // Per item in the group: its slot and the positions of its anchors.
    let mut item_positions: Vec<(usize, Vec<u16>)> = Vec::with_capacity(group.len());
    for &gi in group {
        let item = items[gi as usize];
        let st = &slots[item.si];
        let m = &st.matches[item.mi as usize];
        let mut positions = Vec::with_capacity(st.anchors.len());
        for &a in &st.anchors {
            let img = m.image(a);
            let pos = *anchor_pos.entry(img.0).or_insert_with(|| {
                anchor_nodes.push(img);
                (anchor_nodes.len() - 1) as u16
            });
            positions.push(pos);
        }
        item_positions.push((item.si, positions));
    }
    let na = anchor_nodes.len();
    let max_score = (inf as usize) * na;

    let anchor_center: Vec<Vec<u32>> = anchor_nodes
        .iter()
        .map(|&a| {
            (0..centers.len())
                .map(|ci| centers.distance(ci, a))
                .collect()
        })
        .collect();

    let mut pmd: FastHashMap<u32, Vec<u16>> = FastHashMap::default();
    let mut best_score: FastHashMap<u32, u32> = FastHashMap::default();
    queue.reset(max_score);

    // --- Initialization ---
    for (pos, &a) in anchor_nodes.iter().enumerate() {
        let mut row = vec![inf; na];
        row[pos] = 0;
        pmd.insert(a.0, row);
    }
    // Pattern-distance shortcuts, per item against its own pattern's
    // analysis (a shortcut only relates anchors of the same match).
    if use_distance_shortcuts {
        for (gi, &item_idx) in group.iter().enumerate() {
            let item = items[item_idx as usize];
            let st = &slots[item.si];
            let m = &st.matches[item.mi as usize];
            let positions = &item_positions[gi].1;
            for (ai, &pa) in st.anchors.iter().enumerate() {
                let img_a = m.image(pa);
                let row = pmd.get_mut(&img_a.0).expect("anchor row exists");
                for (bi, &pb) in st.anchors.iter().enumerate() {
                    if ai == bi {
                        continue;
                    }
                    let d = st.analysis.distance(pb, pa);
                    if d != UNREACHABLE && (d as u16) < row[positions[bi] as usize] {
                        row[positions[bi] as usize] = d as u16;
                    }
                }
            }
        }
    }
    // Centers: exact distances (never reinserted).
    for (ci, &c) in centers.centers().iter().enumerate().take(centers.len()) {
        let row: Vec<u16> = (0..na)
            .map(|pos| {
                let d = anchor_center[pos][ci];
                if d == u32::MAX {
                    inf
                } else {
                    (d as u16).min(inf)
                }
            })
            .collect();
        match pmd.get_mut(&c.0) {
            Some(existing) => {
                for (e, r) in existing.iter_mut().zip(&row) {
                    *e = (*e).min(*r);
                }
            }
            None => {
                pmd.insert(c.0, row);
            }
        }
    }

    let score_of = |row: &[u16]| -> usize { row.iter().map(|&v| v as usize).sum() };
    let mut seeds: Vec<u32> = pmd.keys().copied().collect();
    seeds.sort_unstable(); // determinism
    for nraw in seeds {
        let s = score_of(&pmd[&nraw]);
        best_score.insert(nraw, s as u32);
        queue.push(s, nraw);
    }

    // --- Traversal ---
    let mut row_buf: Vec<u16> = Vec::with_capacity(na);
    while let Some((popped_score, nraw)) = queue.pop() {
        let row = match pmd.get(&nraw) {
            Some(r) => r,
            None => continue,
        };
        if matches!(queue.ordering, PtOrdering::BestFirst)
            && best_score.get(&nraw).map(|&s| s as usize) != Some(popped_score)
        {
            continue;
        }
        if !row.iter().any(|&v| (v as u32) < k) {
            continue;
        }
        tstats.nodes_expanded += 1;
        tstats.edges_traversed += g.degree(NodeId(nraw)) as u64;
        row_buf.clear();
        row_buf.extend_from_slice(row);

        for &nb in g.neighbors(NodeId(nraw)) {
            let entry = pmd.entry(nb.0);
            let mut changed = false;
            let row_nb = match entry {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let r = o.into_mut();
                    for pos in 0..na {
                        let cand = row_buf[pos].saturating_add(1).min(inf);
                        if cand < r[pos] {
                            r[pos] = cand;
                            changed = true;
                        }
                    }
                    r
                }
                std::collections::hash_map::Entry::Vacant(vac) => {
                    let mut r = vec![inf; na];
                    for pos in 0..na {
                        let mut v = row_buf[pos].saturating_add(1).min(inf);
                        for (ci, &dac) in anchor_center[pos].iter().enumerate() {
                            let dcn = centers.distance(ci, nb);
                            if dac != u32::MAX && dcn != u32::MAX {
                                let bound = (dac + dcn).min(inf as u32) as u16;
                                if bound < v {
                                    v = bound;
                                }
                            }
                        }
                        r[pos] = v;
                    }
                    changed = true;
                    vac.insert(r)
                }
            };
            if changed {
                let s = score_of(row_nb);
                let stale = best_score
                    .get(&nb.0)
                    .map(|&old| s < old as usize)
                    .unwrap_or(true);
                if stale {
                    if best_score.insert(nb.0, s as u32).is_some() {
                        tstats.reinsertions += 1;
                    }
                    queue.push(s, nb.0);
                }
            }
        }
    }

    // --- Counting ---
    // Each member counts from the shared PMD rows under its own mask.
    for (nraw, row) in &pmd {
        let n = NodeId(*nraw);
        for &(si, ref positions) in &item_positions {
            if !slots[si].mask[n.index()] {
                continue;
            }
            if positions.iter().all(|&pos| row[pos as usize] as u32 <= k) {
                out[si].increment(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_census_exec;
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        // Two triangles sharing node 2 plus chain 4-5-6.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn patterns() -> Vec<Pattern> {
        [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN e { ?A-?B; }",
            "PATTERN p3 { ?A-?B; ?B-?C; }",
            "PATTERN n { ?A; }",
        ]
        .iter()
        .map(|s| Pattern::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_counts_equal_sequential_runs() {
        let g = fixture();
        let pats = patterns();
        let specs: Vec<CensusSpec<'_>> = pats
            .iter()
            .zip([2u32, 1, 2, 0])
            .map(|(p, k)| CensusSpec::single(p, k))
            .collect();
        let config = PtConfig::default();
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
            Algorithm::PtRandom,
            Algorithm::Auto,
        ] {
            let batch = run_batch(&g, &specs, algo, &config).unwrap();
            for (i, spec) in specs.iter().enumerate() {
                let seq =
                    run_census_exec(&g, spec, algo, &config, &ExecConfig::sequential()).unwrap();
                assert_eq!(batch.counts[i], seq, "{algo:?} spec {i}");
            }
        }
    }

    #[test]
    fn shared_sweep_does_strictly_less_expansion() {
        let g = fixture();
        let pats = patterns();
        let specs: Vec<CensusSpec<'_>> = pats.iter().map(|p| CensusSpec::single(p, 2)).collect();
        let batch = run_batch(&g, &specs, Algorithm::NdPivot, &PtConfig::default()).unwrap();
        // One sweep for 4 specs: nodes_expanded = |V|, not 4·|V|.
        assert_eq!(batch.stats.nodes_expanded, g.num_nodes() as u64);
        assert_eq!(batch.stages.len(), 1);
        match &batch.stages[0] {
            BatchStage::NdSweep { pivot, k_max, .. } => {
                assert_eq!(pivot.len(), 4);
                assert_eq!(*k_max, 2);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn pt_groups_split_by_radius() {
        let g = fixture();
        let pats = patterns();
        let specs = vec![
            CensusSpec::single(&pats[0], 1),
            CensusSpec::single(&pats[0], 2),
            CensusSpec::single(&pats[3], 1),
        ];
        let batch = run_batch(&g, &specs, Algorithm::PtOpt, &PtConfig::default()).unwrap();
        let mut ks: Vec<u32> = batch
            .stages
            .iter()
            .map(|s| match s {
                BatchStage::PtGroup { k, .. } => *k,
                other => panic!("unexpected stage {other:?}"),
            })
            .collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 2]);
        // Specs 0 and 2 share k=1 ⇒ one group serves both.
        let k1 = batch
            .stages
            .iter()
            .find_map(|s| match s {
                BatchStage::PtGroup { specs, k: 1 } => Some(specs.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(k1, vec![0, 2]);
    }

    #[test]
    fn shared_pattern_matches_computed_once() {
        let g = fixture();
        let pats = patterns();
        let specs = vec![
            CensusSpec::single(&pats[0], 1),
            CensusSpec::single(&pats[0], 2),
        ];
        let batch = run_batch(&g, &specs, Algorithm::NdPivot, &PtConfig::default()).unwrap();
        let a = batch.matches[0].as_ref().unwrap();
        let b = batch.matches[1].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b), "same pattern must share one MatchList");
    }

    #[test]
    fn provided_matches_are_reused() {
        let g = fixture();
        let pats = patterns();
        let specs = vec![CensusSpec::single(&pats[0], 1)];
        let pre = Arc::new(crate::global_matches(&g, &pats[0]));
        let batch = run_batch_exec(
            &g,
            &specs,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
            &[Some(pre.clone())],
        )
        .unwrap();
        assert!(Arc::ptr_eq(batch.matches[0].as_ref().unwrap(), &pre));
    }

    #[test]
    fn rejections_preserved() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN s {?A;} }").unwrap();
        let specs = vec![CensusSpec::single(&p, 1).with_subpattern("s")];
        for algo in [Algorithm::NdBaseline, Algorithm::NdDiff] {
            assert!(
                run_batch(&g, &specs, algo, &PtConfig::default()).is_err(),
                "{algo:?} must reject COUNTSP"
            );
        }
        // NdPivot accepts it.
        assert!(run_batch(&g, &specs, Algorithm::NdPivot, &PtConfig::default()).is_ok());
    }

    #[test]
    fn empty_batch() {
        let g = fixture();
        let batch = run_batch(&g, &[], Algorithm::Auto, &PtConfig::default()).unwrap();
        assert!(batch.counts.is_empty());
        assert!(batch.stages.is_empty());
    }
}
