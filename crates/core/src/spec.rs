//! Census query specifications and tuning parameters.

use crate::result::CensusError;
use ego_graph::{Graph, NodeId};
use ego_pattern::{PNode, Pattern};

/// Which nodes to run the census for (the SQL `WHERE` clause's result,
/// `V_σ(G)` in the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum FocalNodes {
    /// All nodes of the graph.
    #[default]
    All,
    /// An explicit node set.
    Set(Vec<NodeId>),
}

impl FocalNodes {
    /// Materialize as a boolean mask over the graph's nodes.
    pub fn mask(&self, g: &Graph) -> Vec<bool> {
        match self {
            FocalNodes::All => vec![true; g.num_nodes()],
            FocalNodes::Set(nodes) => {
                let mut m = vec![false; g.num_nodes()];
                for &n in nodes {
                    m[n.index()] = true;
                }
                m
            }
        }
    }

    /// Materialize as a sorted node list.
    pub fn nodes(&self, g: &Graph) -> Vec<NodeId> {
        match self {
            FocalNodes::All => g.node_ids().collect(),
            FocalNodes::Set(nodes) => {
                let mut v = nodes.clone();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// Number of distinct focal nodes. An explicit set may contain
    /// duplicates (e.g. a SQL WHERE materialization); they must not be
    /// double-counted, or this disagrees with `mask`/`nodes` and skews
    /// both the Auto chooser's cost model and per-node instrumentation.
    pub fn count(&self, g: &Graph) -> usize {
        match self {
            FocalNodes::All => g.num_nodes(),
            FocalNodes::Set(_) => self.nodes(g).len(),
        }
    }
}

/// A single-node census query: count matches of `pattern` (or of the
/// subgraphs anchored at `subpattern`) in `SUBGRAPH(n, k)` for each focal
/// node `n`.
#[derive(Clone, Debug)]
pub struct CensusSpec<'a> {
    pattern: &'a Pattern,
    k: u32,
    focal: FocalNodes,
    subpattern: Option<String>,
}

impl<'a> CensusSpec<'a> {
    /// `COUNTP(pattern, SUBGRAPH(ID, k))` over all nodes.
    pub fn single(pattern: &'a Pattern, k: u32) -> Self {
        CensusSpec {
            pattern,
            k,
            focal: FocalNodes::All,
            subpattern: None,
        }
    }

    /// Restrict to an explicit focal set.
    pub fn with_focal(mut self, focal: FocalNodes) -> Self {
        self.focal = focal;
        self
    }

    /// `COUNTSP(subpattern, pattern, SUBGRAPH(ID, k))`: only the images of
    /// the named subpattern must fall inside the neighborhood.
    pub fn with_subpattern(mut self, name: &str) -> Self {
        self.subpattern = Some(name.to_string());
        self
    }

    /// The pattern.
    pub fn pattern(&self) -> &'a Pattern {
        self.pattern
    }

    /// Neighborhood radius `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The focal node selection.
    pub fn focal(&self) -> &FocalNodes {
        &self.focal
    }

    /// The subpattern name, if this is a COUNTSP query.
    pub fn subpattern_name(&self) -> Option<&str> {
        self.subpattern.as_deref()
    }

    /// The pattern nodes whose images must lie inside the neighborhood:
    /// the subpattern's nodes for COUNTSP, every pattern node for COUNTP.
    pub fn anchor_nodes(&self) -> Result<Vec<PNode>, CensusError> {
        match &self.subpattern {
            None => Ok(self.pattern.nodes().collect()),
            Some(name) => self
                .pattern
                .subpattern(name)
                .map(|sp| sp.nodes.clone())
                .ok_or_else(|| CensusError::UnknownSubpattern(name.clone())),
        }
    }

    /// Check spec consistency against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), CensusError> {
        self.anchor_nodes()?;
        if let FocalNodes::Set(nodes) = &self.focal {
            for &n in nodes {
                if n.index() >= g.num_nodes() {
                    return Err(CensusError::FocalOutOfRange(n));
                }
            }
        }
        Ok(())
    }
}

/// How PT-OPT orders its traversal queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PtOrdering {
    /// Best-first: pop the node with minimum `score(n) = Σ_m PMD_m[n]`
    /// via the array-based bucket queue (Section IV-B3).
    #[default]
    BestFirst,
    /// Random pop (the PT-RND ablation).
    Random,
}

/// How pattern matches are grouped before traversal (Section IV-B5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Clustering {
    /// The paper's default: K-means with `K = |M| / 4` (capped by
    /// `max_auto_clusters`), using center-distance feature vectors.
    #[default]
    Auto,
    /// No clustering: every match processed independently (NO-CLUST).
    None,
    /// Random assignment into `k` groups (RND-CLUST).
    Random(usize),
    /// K-means into `k` clusters (OPT-CLUST with an explicit K).
    KMeans(usize),
}

/// Tuning parameters for the pattern-driven algorithms.
#[derive(Clone, Debug)]
pub struct PtConfig {
    /// Number of centers used for PMD distance initialization (paper
    /// default: 12). Zero disables center bounds.
    pub num_centers: usize,
    /// How centers are chosen (paper default: highest degree).
    pub center_strategy: crate::centers::CenterStrategy,
    /// Number of centers used to build clustering feature vectors. The
    /// Fig 4(f) experiment varies `num_centers` while pinning this, "to
    /// study (2) in isolation of (1)". `None` means: same as
    /// `num_centers`.
    pub clustering_centers: Option<usize>,
    /// Match grouping strategy.
    pub clustering: Clustering,
    /// Cap applied to the automatic `|M| / 4` cluster count so huge match
    /// sets cannot make K-means itself the bottleneck.
    pub max_auto_clusters: usize,
    /// K-means iterations (paper default: 10).
    pub kmeans_iters: usize,
    /// Queue ordering (best-first vs random).
    pub ordering: PtOrdering,
    /// Initialize anchor-to-anchor PMD entries from pattern distances
    /// (Section IV-B2). Disable only for ablation studies.
    pub use_distance_shortcuts: bool,
    /// RNG seed for random clustering / random ordering / K-means init.
    pub seed: u64,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            num_centers: 12,
            center_strategy: crate::centers::CenterStrategy::Degree,
            clustering_centers: None,
            clustering: Clustering::Auto,
            max_auto_clusters: 256,
            kmeans_iters: 10,
            ordering: PtOrdering::BestFirst,
            use_distance_shortcuts: true,
            seed: 0x5eed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.build()
    }

    #[test]
    fn focal_mask_and_nodes() {
        let g = tiny_graph();
        let all = FocalNodes::All;
        assert_eq!(all.mask(&g), vec![true; 3]);
        assert_eq!(all.count(&g), 3);
        let set = FocalNodes::Set(vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(set.mask(&g), vec![true, false, true]);
        assert_eq!(set.nodes(&g), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn count_deduplicates_explicit_sets() {
        let g = tiny_graph();
        // A duplicated set must agree with mask/nodes: 2 distinct nodes.
        let set = FocalNodes::Set(vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(set.count(&g), set.nodes(&g).len());
        assert_eq!(set.count(&g), 2);
        assert_eq!(FocalNodes::Set(vec![]).count(&g), 0);
    }

    #[test]
    fn anchors_default_to_all_nodes() {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 2);
        assert_eq!(spec.anchor_nodes().unwrap().len(), 3);
        assert_eq!(spec.k(), 2);
        assert!(spec.subpattern_name().is_none());
    }

    #[test]
    fn subpattern_anchors() {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; SUBPATTERN mid {?B;} }").unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern("mid");
        let anchors = spec.anchor_nodes().unwrap();
        assert_eq!(anchors, vec![p.node_by_name("B").unwrap()]);
    }

    #[test]
    fn unknown_subpattern_rejected() {
        let p = Pattern::parse("PATTERN t { ?A-?B; }").unwrap();
        let g = tiny_graph();
        let spec = CensusSpec::single(&p, 1).with_subpattern("nope");
        assert_eq!(
            spec.validate(&g),
            Err(CensusError::UnknownSubpattern("nope".into()))
        );
    }

    #[test]
    fn out_of_range_focal_rejected() {
        let p = Pattern::parse("PATTERN t { ?A-?B; }").unwrap();
        let g = tiny_graph();
        let spec = CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(vec![NodeId(7)]));
        assert_eq!(
            spec.validate(&g),
            Err(CensusError::FocalOutOfRange(NodeId(7)))
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = PtConfig::default();
        assert_eq!(c.num_centers, 12);
        assert_eq!(c.kmeans_iters, 10);
        assert_eq!(c.ordering, PtOrdering::BestFirst);
        assert_eq!(c.clustering, Clustering::Auto);
    }
}
