//! PT-BAS: the pattern-driven baseline (Section IV-B).
//!
//! Each match is processed independently: BFS to depth `k` from every
//! match node, pick the match node with the fewest `k`-hop neighbors, and
//! check each of its neighbors for reachability (within `k`) from every
//! other match node. No shared traversals, no shortcuts, no ordering, no
//! centers, no clustering.

use crate::result::{CensusError, CountVector};
use crate::spec::CensusSpec;
use crate::tstats::TraversalStats;
use ego_graph::bfs::BfsScratch;
use ego_graph::{Graph, NodeId};
use ego_matcher::MatchList;

/// Run PT-BAS over precomputed global matches.
pub fn run(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<CountVector, CensusError> {
    run_instrumented(g, spec, matches).map(|(cv, _)| cv)
}

/// [`run`] with traversal-cost instrumentation.
pub fn run_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
) -> Result<(CountVector, TraversalStats), CensusError> {
    run_range_instrumented(g, spec, matches, 0..matches.len())
}

/// [`run_instrumented`] restricted to a contiguous match-index range — the
/// building block of the parallel layer. Every match contributes
/// independently (pure `counts.increment`), so running disjoint ranges and
/// summing the per-range counts reproduces the full run exactly.
pub(crate) fn run_range_instrumented(
    g: &Graph,
    spec: &CensusSpec<'_>,
    matches: &MatchList,
    range: std::ops::Range<usize>,
) -> Result<(CountVector, TraversalStats), CensusError> {
    let k = spec.k();
    let anchors = spec.anchor_nodes()?;
    let mask = spec.focal().mask(g);
    let mut counts = CountVector::new(g.num_nodes(), mask.clone());
    let mut scratch = BfsScratch::new(g.num_nodes());
    let num_matches = range.len();

    // Per-anchor k-hop membership, rebuilt per match (the baseline's
    // repeated work). Sorted vectors; containment via binary search.
    let mut khops: Vec<Vec<NodeId>> = Vec::new();
    let mut buf = Vec::new();

    for mi in range {
        let m = &matches[mi];
        // Distinct anchor images (anchors of one match are distinct nodes,
        // but COUNTSP anchors may be a subset).
        let anchor_imgs: Vec<NodeId> = anchors.iter().map(|&a| m.image(a)).collect();

        khops.clear();
        for &mi in &anchor_imgs {
            buf.clear();
            scratch.bounded_bfs(g, mi, k, &mut buf);
            buf.sort_unstable();
            khops.push(buf.clone());
        }
        // m_min: the anchor with the fewest k-hop neighbors.
        let (min_idx, _) = khops
            .iter()
            .enumerate()
            .min_by_key(|(_, h)| h.len())
            .expect("pattern has at least one anchor");
        for &cand in &khops[min_idx] {
            if !mask[cand.index()] {
                continue;
            }
            let ok = khops
                .iter()
                .enumerate()
                .all(|(i, h)| i == min_idx || h.binary_search(&cand).is_ok());
            if ok {
                counts.increment(cand);
            }
        }
    }
    let tstats = TraversalStats {
        edges_traversed: scratch.edges_scanned(),
        nodes_expanded: (num_matches * anchors.len()) as u64,
        reinsertions: 0,
        index_edges: 0,
    };
    Ok((counts, tstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FocalNodes;
    use crate::{global_matches, nd_bas, nd_pivot};
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::Pattern;

    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn agrees_with_nd_bas() {
        let g = fixture();
        for pat_text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN e { ?A-?B; }",
            "PATTERN p3 { ?A-?B; ?B-?C; }",
        ] {
            let p = Pattern::parse(pat_text).unwrap();
            for k in 0..4 {
                let spec = CensusSpec::single(&p, k);
                let m = global_matches(&g, &p);
                let fast = run(&g, &spec, &m).unwrap();
                let slow = nd_bas::run(&g, &spec).unwrap();
                for n in g.node_ids() {
                    assert_eq!(fast.get(n), slow.get(n), "{pat_text} k={k} node={n:?}");
                }
            }
        }
    }

    #[test]
    fn subpattern_agrees_with_nd_pivot() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
        for k in 0..3 {
            let spec = CensusSpec::single(&p, k).with_subpattern("one");
            let m = global_matches(&g, &p);
            let a = run(&g, &spec, &m).unwrap();
            let b = nd_pivot::run(&g, &spec, &m).unwrap();
            for n in g.node_ids() {
                assert_eq!(a.get(n), b.get(n), "k={k} node={n:?}");
            }
        }
    }

    #[test]
    fn focal_mask_respected() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 2).with_focal(FocalNodes::Set(vec![NodeId(6)]));
        let m = global_matches(&g, &p);
        let counts = run(&g, &spec, &m).unwrap();
        assert_eq!(counts.get(NodeId(6)), 0);
        assert_eq!(counts.get(NodeId(0)), 0); // non-focal stays zero
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn no_matches_yields_zeroes() {
        let g = fixture();
        let p = Pattern::parse("PATTERN k4 { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }").unwrap();
        let spec = CensusSpec::single(&p, 3);
        let m = global_matches(&g, &p);
        assert!(m.is_empty());
        let counts = run(&g, &spec, &m).unwrap();
        assert_eq!(counts.total(), 0);
    }
}
