//! Census results and errors.

use ego_graph::NodeId;
use std::fmt;

/// Per-node census counts. Nodes outside the focal set have count 0 and
/// `is_focal` false.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountVector {
    counts: Vec<u64>,
    focal: Vec<bool>,
}

impl CountVector {
    /// Zeroed counts for `num_nodes` nodes, with focality flags.
    pub fn new(num_nodes: usize, focal: Vec<bool>) -> Self {
        debug_assert_eq!(focal.len(), num_nodes);
        CountVector {
            counts: vec![0; num_nodes],
            focal,
        }
    }

    /// The count for `n` (0 for non-focal nodes).
    #[inline]
    pub fn get(&self, n: NodeId) -> u64 {
        self.counts[n.index()]
    }

    /// Was `n` part of the query's focal set?
    #[inline]
    pub fn is_focal(&self, n: NodeId) -> bool {
        self.focal[n.index()]
    }

    /// Increment the count of `n` by 1.
    #[inline]
    pub fn increment(&mut self, n: NodeId) {
        self.counts[n.index()] += 1;
    }

    /// Add `delta` to the count of `n`.
    #[inline]
    pub fn add(&mut self, n: NodeId, delta: u64) {
        self.counts[n.index()] += delta;
    }

    /// Overwrite the count of `n`.
    #[inline]
    pub fn set(&mut self, n: NodeId, value: u64) {
        self.counts[n.index()] = value;
    }

    /// Add every count of `other` into `self` (element-wise). The merge
    /// step of the parallel runners: shards with disjoint focal sets and
    /// additive per-match/per-group partitions both merge by addition.
    pub fn merge_add(&mut self, other: &CountVector) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// Iterate `(node, count)` over focal nodes only.
    pub fn iter_focal(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.focal[i])
            .map(|(i, &c)| (NodeId::from_index(i), c))
    }

    /// Sum of all focal counts.
    pub fn total(&self) -> u64 {
        self.iter_focal().map(|(_, c)| c).sum()
    }

    /// The `k` focal nodes with the highest counts (ties by lower id).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, u64)> {
        let mut v: Vec<(NodeId, u64)> = self.iter_focal().collect();
        v.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
        v.truncate(k);
        v
    }

    /// Number of nodes covered (focal or not).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Errors from census evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CensusError {
    /// The spec names a subpattern the pattern does not define.
    UnknownSubpattern(String),
    /// The algorithm does not support this query shape (e.g. ND-BAS or
    /// ND-DIFF with subpatterns, where only the anchored portion of a
    /// match must lie inside the neighborhood).
    Unsupported(String),
    /// A focal node id is out of range for the graph.
    FocalOutOfRange(NodeId),
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CensusError::UnknownSubpattern(name) => {
                write!(f, "pattern does not define subpattern `{name}`")
            }
            CensusError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            CensusError::FocalOutOfRange(n) => {
                write!(f, "focal node {n} is out of range for the graph")
            }
        }
    }
}

impl std::error::Error for CensusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut cv = CountVector::new(4, vec![true, false, true, true]);
        cv.increment(NodeId(0));
        cv.increment(NodeId(0));
        cv.add(NodeId(2), 5);
        cv.set(NodeId(3), 1);
        assert_eq!(cv.get(NodeId(0)), 2);
        assert_eq!(cv.get(NodeId(1)), 0);
        assert!(!cv.is_focal(NodeId(1)));
        assert_eq!(cv.total(), 8);
        assert_eq!(cv.len(), 4);
    }

    #[test]
    fn top_k_ordering() {
        let mut cv = CountVector::new(4, vec![true; 4]);
        cv.set(NodeId(0), 3);
        cv.set(NodeId(1), 7);
        cv.set(NodeId(2), 3);
        let top = cv.top_k(2);
        assert_eq!(top, vec![(NodeId(1), 7), (NodeId(0), 3)]);
        assert_eq!(cv.top_k(10).len(), 4);
    }

    #[test]
    fn iter_focal_skips_nonfocal() {
        let mut cv = CountVector::new(3, vec![false, true, false]);
        cv.set(NodeId(1), 2);
        cv.set(NodeId(0), 9); // non-focal noise
        let items: Vec<_> = cv.iter_focal().collect();
        assert_eq!(items, vec![(NodeId(1), 2)]);
    }

    #[test]
    fn error_display() {
        let e = CensusError::UnknownSubpattern("core".into());
        assert!(e.to_string().contains("core"));
        let e = CensusError::FocalOutOfRange(NodeId(9));
        assert!(e.to_string().contains('9'));
    }
}
