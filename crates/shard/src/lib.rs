//! # ego-shard
//!
//! The sharded census tier: a scatter/gather [`Router`] in front of a
//! fleet of `ego-server` workers that all mmap the **same** `.egb`
//! graph file (`MAP_SHARED`/`PROT_READ`, so the CSR exists once in
//! physical memory no matter how many workers attach).
//!
//! The router speaks the identical line-delimited JSON protocol as a
//! single server. Single-table census statements are scattered — the
//! focal node-ID space is split into one contiguous [`ShardSpec`] range
//! per live worker, each worker restricts its focal list *after* the
//! full `WHERE`/`RND()` pass (keeping random sampling bit-aligned with
//! unsharded execution), and the per-shard tables concatenate in shard
//! order. Everything else (pairwise, `ORDER BY`/`LIMIT`, `explain`) is
//! proxied whole to one worker. The correctness bar is byte-identical
//! responses versus a single direct server, including after `update`
//! mutations and after a worker is killed mid-query and its shard
//! re-scattered to a survivor.
//!
//! ```no_run
//! use ego_shard::{Router, RouterConfig, WorkerFleet};
//! use std::process::Command;
//!
//! // Spawn two workers over the same .egb file, then route over them.
//! let fleet = WorkerFleet::spawn(2, |j| {
//!     let mut c = Command::new(std::env::current_exe().unwrap());
//!     c.args(["serve", "--addr", "127.0.0.1:0", "--graph", "g.egb"]);
//!     let _ = j;
//!     c
//! })
//! .unwrap();
//! let router = Router::bind(("127.0.0.1", 0), &fleet.addrs(), RouterConfig::default()).unwrap();
//! router.run().unwrap();
//! ```

pub mod merge;
pub mod router;
pub mod worker;

pub use ego_query::ShardSpec;
pub use merge::{merge_stats, merge_tables};
pub use router::{Router, RouterConfig, RouterSession, RouterShared, RouterShutdownHandle};
pub use worker::{WorkerFleet, WorkerInfo};
