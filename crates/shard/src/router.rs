//! The scatter/gather router: a protocol-compatible front end over a
//! fleet of `ego-server` workers that share one mmap'd graph.
//!
//! The router speaks the same line-delimited JSON protocol as a single
//! server, so clients cannot tell the difference — the correctness bar
//! is *byte-identical* responses. Per request kind:
//!
//! * `query` (single-table, no `ORDER BY`/`LIMIT`): **scattered**. The
//!   focal node-ID space is partitioned into one contiguous shard per
//!   live worker; each worker runs the statement with a `shard: "j/n"`
//!   annotation (the full `WHERE`/`RND()` pass runs unsharded, then the
//!   focal list is restricted, so random sampling stays aligned), and
//!   the per-shard tables concatenate in shard order.
//! * `query` (pairwise, `ORDER BY`, `LIMIT`, `EXPLAIN`-prefixed, or
//!   unparsable), `explain`: **proxied** whole to one worker,
//!   round-robin — per-shard sort/truncate would not compose.
//! * `define`: broadcast to every worker over this session's
//!   connections (worker catalogs are per-connection, mirroring a
//!   direct server session) and recorded for replay on reconnect.
//! * `update`: broadcast under the coherence write lock (queries hold
//!   the read side), then the workers' reported generation/fingerprint
//!   are compared — a divergent worker would silently corrupt merges.
//! * `analyze` (as an op or as `ANALYZE` through the query op):
//!   broadcast under the write lock so every worker's planner adopts
//!   the same statistics snapshot; profiles must agree byte-for-byte.
//! * `stats`: scattered, aggregated by [`crate::merge::merge_stats`],
//!   with `router_*` counters appended.
//! * `materialize`: **broadcast as shard legs** under the write lock —
//!   worker `j` of `n` pins the view for focal shard `j/n`, exactly the
//!   shard a scattered query will later send it, so every shard of a
//!   subsequent `COUNTP` over the pattern is a pure view probe. The ack
//!   table is deliberately shard-independent, so the per-worker acks
//!   must agree byte-for-byte; divergence means the fleet's graphs (or
//!   view tiers) differ and is surfaced as an error.
//! * `drop_view`: broadcast under the write lock, acks compared like
//!   `analyze` — an unknown view errors identically on every worker.
//! * `subscribe`: **broadcast as shard legs**. The standing query is
//!   registered once per live worker, leg `j` covering focal shard
//!   `j/n` (`n` frozen at subscribe time, like a scattered query), and
//!   the legs' initial counts are scattered into a per-subscription
//!   *baseline*. On every update each leg pushes its shard's changed
//!   rows; the router merges the per-leg `notify` frames of one
//!   generation in shard order (contiguous ID ranges, so concatenation
//!   is globally focal-ascending) and pushes one frame to the client.
//!   When a leg's worker dies, the leg is re-subscribed on a survivor
//!   and one **coalesced** frame is synthesized by diffing a fresh
//!   scatter of the statement against the baseline — the client's view
//!   stays exact even across the lost frames.
//! * `ping`: answered locally; `shutdown`: broadcast, then the router
//!   itself stops.
//!
//! **Failure model**: a worker that times out or drops its connection
//! is marked down *permanently* (it may have missed an `update`; a
//! rejoin protocol is out of scope). The shard count `n` is fixed at
//! scatter time, so a dead worker's shard `j/n` is re-sent verbatim to
//! a survivor — every worker maps the whole graph, so any of them can
//! answer any shard, and the merged bytes are unchanged.

use crate::merge::{merge_stats, merge_tables};
use ego_query::{is_analyze_statement, plan_statement, strip_subscribe, ShardSpec, Value};
use ego_server::{Client, NotifyFrame, Request, Response, RetryPolicy, TableData};
use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tunables for [`Router`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Client-connection handler threads (the concurrency bound).
    pub pool_threads: usize,
    /// Per-request bound on each worker connection; a worker that
    /// exceeds it is treated as failed and its shard re-scattered.
    pub worker_timeout: Duration,
    /// Connect retry/backoff for worker connections (a worker may still
    /// be binding its socket when the router first dials it).
    pub connect_retry: RetryPolicy,
    /// How long a half-received client request may dribble in.
    pub request_timeout: Duration,
    /// Write timeout per client response.
    pub write_timeout: Duration,
    /// Accept/read poll tick; bounds shutdown latency.
    pub poll_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            pool_threads: 4,
            worker_timeout: Duration::from_secs(120),
            connect_retry: RetryPolicy::default(),
            request_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Router-level counters, exposed as `router_*` rows in `stats`.
#[derive(Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Request lines received from clients.
    pub requests: AtomicU64,
    /// Queries fanned out across the worker fleet.
    pub scattered_queries: AtomicU64,
    /// Requests forwarded whole to a single worker.
    pub proxied_requests: AtomicU64,
    /// Workers marked down (timeout or connection failure).
    pub worker_failures: AtomicU64,
    /// Shards re-sent to a survivor after their worker failed.
    pub rescattered_shards: AtomicU64,
    /// Subscriptions registered through the router.
    pub subscriptions_created: AtomicU64,
    /// Merged notify frames pushed to clients.
    pub frames_pushed: AtomicU64,
    /// Subscription legs re-homed onto a survivor after their worker
    /// died (each re-home also pushes one coalesced frame).
    pub legs_recovered: AtomicU64,
}

struct WorkerSlot {
    addr: SocketAddr,
    up: AtomicBool,
}

/// State shared by every router session: the worker roster, the
/// update/query coherence lock, counters, and the shutdown flag.
pub struct RouterShared {
    workers: Vec<WorkerSlot>,
    /// Queries (scatter or proxy) hold the read side; `update` holds
    /// the write side so a mutation is never interleaved with a
    /// scattered query that would merge rows from two generations.
    coherence: RwLock<()>,
    /// Router-level counters.
    pub stats: RouterStats,
    /// Set by a `shutdown` request or a [`RouterShutdownHandle`].
    pub shutdown: Arc<AtomicBool>,
    config: RouterConfig,
    next_proxy: AtomicUsize,
    /// Client-facing subscription ids (unique fleet-wide, never reused).
    next_sub: AtomicU64,
}

impl RouterShared {
    /// Indices of workers currently believed alive.
    pub fn up_indices(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].up.load(Ordering::SeqCst))
            .collect()
    }

    /// Number of workers currently believed alive.
    pub fn workers_up(&self) -> usize {
        self.up_indices().len()
    }

    /// Total fleet size (up or down).
    pub fn workers_total(&self) -> usize {
        self.workers.len()
    }

    /// Mark a worker down permanently (idempotent; counts the first
    /// transition only).
    fn mark_down(&self, index: usize) {
        if self.workers[index].up.swap(false, Ordering::SeqCst) {
            self.stats.worker_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Sets the router shutdown flag from another thread.
#[derive(Clone)]
pub struct RouterShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl RouterShutdownHandle {
    /// Ask the router to stop accepting and drain its sessions.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// One shard leg of a router-level subscription: the worker currently
/// serving shard `j` and the worker-side subscription id there.
#[derive(Clone)]
struct Leg {
    worker: usize,
    sub_id: u64,
}

/// One standing query registered through the router, fanned out as one
/// leg per worker that was alive at subscribe time.
struct RouterSub {
    /// Client-facing id (router-assigned, never reused).
    id: u64,
    /// The statement body (SELECT, `SUBSCRIBE` verb stripped) — re-sent
    /// verbatim when a leg is re-homed.
    sql: String,
    /// Aggregate column names, projection order.
    columns: Vec<String>,
    /// Shard legs, indexed by shard `j`; the count is frozen at
    /// subscribe time.
    legs: Vec<Leg>,
    /// The counts last pushed to the client: focal node -> per-aggregate
    /// values. Recovery diffs a fresh scatter against this, so the
    /// synthesized frame's `old` values are exactly what the client
    /// last saw.
    baseline: HashMap<i64, Vec<i64>>,
    /// Per-generation partial frames: shard legs report independently,
    /// and a generation is pushed only once every leg has.
    pending: BTreeMap<u64, Vec<Option<Vec<Vec<Value>>>>>,
    /// Last generation pushed to the client; late frames at or below it
    /// are duplicates of coalesced recovery and are dropped.
    generation: u64,
}

/// One client connection's view of the fleet: a lazily-opened
/// connection per worker plus the session's `define` history, replayed
/// whenever a worker connection is (re)opened so session catalogs stay
/// in sync across the fleet.
pub struct RouterSession {
    shared: Arc<RouterShared>,
    conns: Vec<Option<Client>>,
    defines: Vec<String>,
    subs: Vec<RouterSub>,
    /// Merged frames ready for this client, oldest first, pre-encoded.
    /// The serve loop writes them before the next response and on idle
    /// poll ticks.
    pending_frames: Vec<String>,
}

impl RouterSession {
    /// A fresh session against the shared fleet state.
    pub fn new(shared: Arc<RouterShared>) -> RouterSession {
        let n = shared.workers.len();
        RouterSession {
            shared,
            conns: (0..n).map(|_| None).collect(),
            defines: Vec::new(),
            subs: Vec::new(),
            pending_frames: Vec::new(),
        }
    }

    /// Take the merged frames queued for this client, oldest first.
    pub fn take_pending_frames(&mut self) -> Vec<String> {
        std::mem::take(&mut self.pending_frames)
    }

    /// Does this connection own any live subscriptions?
    pub fn has_subscriptions(&self) -> bool {
        !self.subs.is_empty()
    }

    /// The session's connection to worker `i`, dialing and replaying
    /// this session's defines if needed. Worker clients run with
    /// `RetryPolicy::none()`: a silent client-level reconnect would
    /// drop the per-connection session catalog, so reconnects must go
    /// through here.
    fn conn(&mut self, i: usize) -> std::io::Result<&mut Client> {
        if self.conns[i].is_none() {
            let mut c = Client::connect_with_retry(
                self.shared.workers[i].addr,
                self.shared.config.connect_retry,
            )?;
            c.set_retry(RetryPolicy::none());
            c.set_timeout(Some(self.shared.config.worker_timeout))?;
            for pattern in &self.defines {
                match c.request(&Request::Define {
                    pattern: pattern.clone(),
                })? {
                    Response::Table(_) => {}
                    // These defines already succeeded fleet-wide once.
                    Response::Error { message } => {
                        return Err(std::io::Error::other(format!(
                            "define replay rejected: {message}"
                        )))
                    }
                    Response::Notify(_) => unreachable!("request() filters notify frames"),
                }
            }
            self.conns[i] = Some(c);
        }
        Ok(self.conns[i].as_mut().expect("connection just ensured"))
    }

    /// Drop worker `i`'s connection and mark it down fleet-wide.
    fn fail_worker(&mut self, i: usize) {
        self.conns[i] = None;
        self.shared.mark_down(i);
    }

    /// Handle one request line, returning one encoded response line.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        match Request::decode(line) {
            Ok(req) => self.handle(&req),
            Err(message) => Response::error(message).encode(),
        }
    }

    /// Handle one decoded request.
    pub fn handle(&mut self, req: &Request) -> String {
        match req {
            Request::Ping => reply_table("pong"),
            Request::Define { pattern } => self.handle_define(pattern),
            Request::Query { sql, shard } => self.handle_query(sql, *shard),
            Request::Explain { .. } | Request::Stats => {
                let shared = self.shared.clone();
                let _read = shared.coherence.read().expect("coherence poisoned");
                if matches!(req, Request::Stats) {
                    self.handle_stats()
                } else {
                    self.proxy(req)
                }
            }
            Request::Analyze => self.handle_analyze(),
            Request::Materialize { sql, shard } => self.handle_materialize(sql, *shard),
            Request::DropView { sql } => self.handle_drop_view(sql),
            Request::Update { mutations } => self.handle_update(mutations),
            Request::Subscribe { sql, shard } => self.handle_subscribe(sql, *shard),
            Request::Unsubscribe { id } => self.handle_unsubscribe(*id),
            Request::Shutdown => {
                for w in self.shared.up_indices() {
                    let _ = self.conn(w).map(|c| c.send_request(&Request::Shutdown));
                }
                self.shared.shutdown.store(true, Ordering::SeqCst);
                reply_table("shutting down")
            }
        }
    }

    /// True when a statement can be scattered: the router asks the same
    /// logical planner the workers execute through
    /// ([`ego_query::plan_statement`]) whether the plan tree merges by
    /// concatenation. `ORDER BY`/`LIMIT` re-shape the row set per shard,
    /// pairwise statements iterate node *pairs*, and mutations,
    /// `ANALYZE`, `EXPLAIN`, and unparsable statements have no SELECT
    /// plan — all of those go whole to one worker (or broadcast)
    /// instead, and an unparsable statement is proxied so the worker's
    /// error message reaches the client byte-identically.
    fn is_scatterable(sql: &str) -> bool {
        plan_statement(sql).is_ok_and(|p| p.is_scatterable())
    }

    fn handle_query(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        // `ANALYZE` through the query op behaves like the `analyze` op:
        // every worker must adopt the snapshot, not just one.
        if is_analyze_statement(sql) && sql.trim().eq_ignore_ascii_case("ANALYZE") {
            return self.handle_analyze();
        }
        let shared = self.shared.clone();
        let _read = shared.coherence.read().expect("coherence poisoned");
        // A client that asks for a specific shard (e.g. a router layered
        // over routers) gets exactly that shard from one worker.
        if shard.is_some() {
            return self.proxy(&Request::Query {
                sql: sql.to_string(),
                shard,
            });
        }
        let ups = self.shared.up_indices();
        if ups.len() > 1 && Self::is_scatterable(sql) {
            self.scatter_query(sql, &ups)
        } else {
            self.proxy(&Request::Query {
                sql: sql.to_string(),
                shard: None,
            })
        }
    }

    /// Fan one statement out as one shard per live worker and merge the
    /// responses in shard order. The shard count is fixed at scatter
    /// time: when a worker dies mid-query its shard `j/n` is re-sent
    /// verbatim to a survivor, leaving the merged bytes unchanged.
    fn scatter_query(&mut self, sql: &str, ups: &[usize]) -> String {
        self.shared
            .stats
            .scattered_queries
            .fetch_add(1, Ordering::Relaxed);
        let n = ups.len() as u32;
        let shard_req = |j: u32| Request::Query {
            sql: sql.to_string(),
            shard: Some(ShardSpec::new(j, n).expect("shard index < count")),
        };

        // Scatter: pipeline one send per worker before reading anything.
        let mut sent = vec![false; ups.len()];
        for (j, &w) in ups.iter().enumerate() {
            match self
                .conn(w)
                .and_then(|c| c.send_request(&shard_req(j as u32)))
            {
                Ok(()) => sent[j] = true,
                Err(_) => self.fail_worker(w),
            }
        }

        // Gather in shard order. Failures leave a hole; retries must
        // wait until every pipelined connection is drained, otherwise a
        // retry on a survivor would read that survivor's own pending
        // shard response as its reply.
        let mut parts: Vec<Option<Response>> = Vec::with_capacity(ups.len());
        for (j, &w) in ups.iter().enumerate() {
            if !sent[j] {
                parts.push(None);
                continue;
            }
            match self.conns[w]
                .as_mut()
                .expect("sent shards have live connections")
                .recv_response()
            {
                Ok(resp) => parts.push(Some(resp)),
                Err(_) => {
                    self.fail_worker(w);
                    parts.push(None);
                }
            }
        }

        // Re-scatter the holes to survivors.
        for (j, part) in parts.iter_mut().enumerate() {
            if part.is_none() {
                self.shared
                    .stats
                    .rescattered_shards
                    .fetch_add(1, Ordering::Relaxed);
                *part = self.retry_shard(&shard_req(j as u32));
            }
        }
        let Some(parts) = parts.into_iter().collect::<Option<Vec<_>>>() else {
            return Response::error("no workers available").encode();
        };

        // A statement the engine rejects (bad pattern, unsupported
        // algorithm/spec combination) fails identically on every
        // worker; shard 0's error is the direct engine's bytes.
        if let Some(Response::Error { message }) = parts.iter().find(|r| r.is_error()) {
            return Response::error(message.clone()).encode();
        }
        let tables: Vec<TableData> = parts
            .into_iter()
            .map(|r| match r {
                Response::Table(t) => t,
                Response::Error { .. } => unreachable!("errors returned above"),
                Response::Notify(_) => unreachable!("recv_response filters notify frames"),
            })
            .collect();
        match merge_tables(&tables) {
            Ok(merged) => Response::Table(merged).encode(),
            Err(message) => Response::error(message).encode(),
        }
    }

    /// Run one shard request to completion on any surviving worker.
    fn retry_shard(&mut self, req: &Request) -> Option<Response> {
        for w in self.shared.up_indices() {
            match self.conn(w).and_then(|c| c.request(req)) {
                Ok(resp) => return Some(resp),
                Err(_) => self.fail_worker(w),
            }
        }
        None
    }

    /// Forward one request whole to a single worker, round-robin over
    /// the live fleet, failing over to the next worker on error.
    fn proxy(&mut self, req: &Request) -> String {
        self.shared
            .stats
            .proxied_requests
            .fetch_add(1, Ordering::Relaxed);
        let start = self.shared.next_proxy.fetch_add(1, Ordering::Relaxed);
        loop {
            let ups = self.shared.up_indices();
            if ups.is_empty() {
                return Response::error("no workers available").encode();
            }
            let w = ups[start % ups.len()];
            match self.conn(w).and_then(|c| c.request(req)) {
                // Deterministic encoding: re-encoding the decoded
                // response reproduces the worker's bytes.
                Ok(resp) => return resp.encode(),
                Err(_) => self.fail_worker(w),
            }
        }
    }

    /// Broadcast a `define` to every live worker so each of this
    /// session's per-worker catalogs learns the pattern, then record it
    /// for replay on reconnect.
    fn handle_define(&mut self, pattern: &str) -> String {
        let ups = self.shared.up_indices();
        let mut succeeded: Option<Response> = None;
        for w in ups {
            let req = Request::Define {
                pattern: pattern.to_string(),
            };
            match self.conn(w).and_then(|c| c.request(&req)) {
                // A rejected pattern fails identically everywhere;
                // report it without recording the define.
                Ok(Response::Error { message }) => return Response::error(message).encode(),
                Ok(resp) => succeeded = Some(resp),
                Err(_) => self.fail_worker(w),
            }
        }
        match succeeded {
            Some(resp) => {
                self.defines.push(pattern.to_string());
                resp.encode()
            }
            None => Response::error("no workers available").encode(),
        }
    }

    /// Broadcast `analyze` to every live worker under the coherence
    /// write lock (so no mutation lands mid-broadcast and every worker
    /// profiles the same graph), then check the profiles agree —
    /// profiling is deterministic, so divergent tables mean a worker
    /// serves a different graph.
    fn handle_analyze(&mut self) -> String {
        let shared = self.shared.clone();
        let _write = shared.coherence.write().expect("coherence poisoned");
        let mut encoded: Vec<String> = Vec::new();
        for w in self.shared.up_indices() {
            match self.conn(w).and_then(|c| c.request(&Request::Analyze)) {
                Ok(resp) => encoded.push(resp.encode()),
                Err(_) => self.fail_worker(w),
            }
        }
        let Some(first) = encoded.first() else {
            return Response::error("no workers available").encode();
        };
        if let Some(odd) = encoded.iter().find(|e| *e != first) {
            return Response::error(format!("workers diverged after analyze: {first} vs {odd}"))
                .encode();
        }
        first.clone()
    }

    /// Broadcast an `update` under the coherence write lock, then check
    /// that every worker reports the same generation and fingerprint.
    /// A worker that fails mid-broadcast is marked down permanently —
    /// it missed the mutation and can no longer answer shards.
    ///
    /// Workers write this session's subscription frames *before* the
    /// update response on the same connection, so once the broadcast
    /// returns, every live leg's frame is already buffered on its
    /// worker client — they are merged (and dead legs recovered) before
    /// the update response reaches the client, preserving the direct
    /// server's ordering guarantee.
    fn handle_update(&mut self, mutations: &str) -> String {
        let shared = self.shared.clone();
        let _write = shared.coherence.write().expect("coherence poisoned");
        let req = Request::Update {
            mutations: mutations.to_string(),
        };
        let mut encoded: Vec<String> = Vec::new();
        for w in self.shared.up_indices() {
            match self.conn(w).and_then(|c| c.request(&req)) {
                Ok(resp) => encoded.push(resp.encode()),
                Err(_) => self.fail_worker(w),
            }
        }
        let Some(first) = encoded.first() else {
            return Response::error("no workers available").encode();
        };
        // Every worker applied the same script to the same graph state,
        // so the summaries (generation, fingerprint included) must be
        // byte-identical; anything else means the fleet diverged.
        if let Some(odd) = encoded.iter().find(|e| *e != first) {
            return Response::error(format!("workers diverged after update: {first} vs {odd}"))
                .encode();
        }
        if self.has_subscriptions() {
            self.absorb_buffered_frames();
            self.recover_dead_legs();
        }
        first.clone()
    }

    /// Broadcast a `materialize` as one shard leg per live worker under
    /// the coherence write lock (no mutation may interleave between the
    /// legs' census runs, or the pinned fingerprints would diverge).
    /// Worker `j` pins the view for focal shard `j/n` — the same
    /// partitioning a scattered query uses, so later shards land on
    /// workers whose views cover exactly those focal ranges. The ack
    /// table carries no shard-dependent rows; divergent acks mean the
    /// workers materialized different views and are reported, not
    /// merged.
    fn handle_materialize(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        if shard.is_some() {
            return Response::error(
                "materialize through the router does not accept an explicit shard",
            )
            .encode();
        }
        let shared = self.shared.clone();
        let _write = shared.coherence.write().expect("coherence poisoned");
        let ups = self.shared.up_indices();
        if ups.is_empty() {
            return Response::error("no workers available").encode();
        }
        let n = ups.len() as u32;
        let mut encoded: Vec<String> = Vec::new();
        for (j, &w) in ups.iter().enumerate() {
            let req = Request::Materialize {
                sql: sql.to_string(),
                shard: Some(ShardSpec::new(j as u32, n).expect("shard index < count")),
            };
            match self.conn(w).and_then(|c| c.request(&req)) {
                // A rejected statement (unknown pattern, over-budget
                // view) fails identically everywhere; the first error is
                // the direct server's bytes.
                Ok(Response::Error { message }) => return Response::error(message).encode(),
                Ok(resp) => encoded.push(resp.encode()),
                Err(_) => self.fail_worker(w),
            }
        }
        let Some(first) = encoded.first() else {
            return Response::error("no workers available").encode();
        };
        if let Some(odd) = encoded.iter().find(|e| *e != first) {
            return Response::error(format!(
                "workers diverged after materialize: {first} vs {odd}"
            ))
            .encode();
        }
        first.clone()
    }

    /// Broadcast a `drop_view` to every live worker under the coherence
    /// write lock, then check the acks agree — dropping is
    /// deterministic, and an unknown view errors identically on every
    /// worker, so the first response is the direct server's bytes.
    fn handle_drop_view(&mut self, sql: &str) -> String {
        let shared = self.shared.clone();
        let _write = shared.coherence.write().expect("coherence poisoned");
        let req = Request::DropView {
            sql: sql.to_string(),
        };
        let mut encoded: Vec<String> = Vec::new();
        for w in self.shared.up_indices() {
            match self.conn(w).and_then(|c| c.request(&req)) {
                Ok(resp) => encoded.push(resp.encode()),
                Err(_) => self.fail_worker(w),
            }
        }
        let Some(first) = encoded.first() else {
            return Response::error("no workers available").encode();
        };
        if let Some(odd) = encoded.iter().find(|e| *e != first) {
            return Response::error(format!(
                "workers diverged after drop view: {first} vs {odd}"
            ))
            .encode();
        }
        first.clone()
    }

    // --- continuous subscriptions ---

    /// Register a standing query as one leg per live worker, shard
    /// `j/n`, and capture its initial counts as the baseline. Runs
    /// under the coherence write lock so no mutation interleaves
    /// between the legs' initial evaluations.
    fn handle_subscribe(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        if shard.is_some() {
            return Response::error(
                "subscribe through the router does not accept an explicit shard",
            )
            .encode();
        }
        let shared = self.shared.clone();
        let _write = shared.coherence.write().expect("coherence poisoned");
        let ups = self.shared.up_indices();
        if ups.is_empty() {
            return Response::error("no workers available").encode();
        }
        let n = ups.len() as u32;
        let body = strip_subscribe(sql).trim().to_string();
        let mut legs: Vec<Leg> = Vec::with_capacity(ups.len());
        let mut columns: Vec<String> = Vec::new();
        let mut generation = 0u64;
        let mut focal_total = 0i64;
        for (j, &w) in ups.iter().enumerate() {
            let req = Request::Subscribe {
                sql: body.clone(),
                shard: Some(ShardSpec::new(j as u32, n).expect("shard index < count")),
            };
            let resp = match self.conn(w).and_then(|c| c.request(&req)) {
                Ok(resp) => resp,
                Err(_) => {
                    self.fail_worker(w);
                    self.rollback_legs(&legs);
                    return Response::error("a worker failed during subscribe; retry").encode();
                }
            };
            match resp {
                Response::Table(t) => {
                    let (Some(sub_id), Some(gen), Some(focal)) = (
                        t.stat("subscription"),
                        t.stat("generation"),
                        t.stat("focal"),
                    ) else {
                        self.rollback_legs(&legs);
                        return Response::error("malformed subscribe ack from worker").encode();
                    };
                    if columns.is_empty() {
                        columns = t
                            .rows
                            .iter()
                            .find(|r| matches!(r.first(), Some(Value::Str(s)) if s == "columns"))
                            .and_then(|r| r.get(1))
                            .and_then(|v| match v {
                                Value::Str(s) => Some(s.split('|').map(str::to_string).collect()),
                                _ => None,
                            })
                            .unwrap_or_default();
                    }
                    generation = gen as u64;
                    focal_total += focal;
                    legs.push(Leg {
                        worker: w,
                        sub_id: sub_id as u64,
                    });
                }
                // A rejected statement fails identically on every
                // worker; the first rejection is the direct server's
                // error, byte-identical.
                Response::Error { message } => {
                    self.rollback_legs(&legs);
                    return Response::error(message).encode();
                }
                Response::Notify(_) => unreachable!("request() filters notify frames"),
            }
        }
        let baseline = match self.scatter_counts(&body, &legs) {
            Ok(b) => b,
            Err(message) => {
                self.rollback_legs(&legs);
                return Response::error(message).encode();
            }
        };
        let id = self.shared.next_sub.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .subscriptions_created
            .fetch_add(1, Ordering::Relaxed);
        let ack_columns = columns.join("|");
        self.subs.push(RouterSub {
            id,
            sql: body,
            columns,
            legs,
            baseline,
            pending: BTreeMap::new(),
            generation,
        });
        Response::Table(TableData {
            columns: vec!["stat".into(), "value".into()],
            rows: vec![
                vec![Value::Str("subscription".into()), Value::Int(id as i64)],
                vec![
                    Value::Str("generation".into()),
                    Value::Int(generation as i64),
                ],
                vec![Value::Str("focal".into()), Value::Int(focal_total)],
                vec![Value::Str("columns".into()), Value::Str(ack_columns)],
            ],
        })
        .encode()
    }

    /// Cancel a subscription created on this connection, dropping every
    /// worker-side leg.
    fn handle_unsubscribe(&mut self, id: u64) -> String {
        let Some(pos) = self.subs.iter().position(|s| s.id == id) else {
            return Response::error(format!("unknown subscription id {id}")).encode();
        };
        let sub = self.subs.remove(pos);
        self.rollback_legs(&sub.legs);
        Response::Table(TableData {
            columns: vec!["unsubscribed".into()],
            rows: vec![vec![Value::Int(id as i64)]],
        })
        .encode()
    }

    /// Best-effort cancel of worker-side legs (a failed subscribe, an
    /// unsubscribe, or an unrecoverable subscription). Legs on down
    /// workers are skipped — their server-side sessions die with the
    /// dropped connections.
    fn rollback_legs(&mut self, legs: &[Leg]) {
        for leg in legs {
            if !self.shared.workers[leg.worker].up.load(Ordering::SeqCst) {
                continue;
            }
            let id = leg.sub_id;
            let _ = self
                .conn(leg.worker)
                .and_then(|c| c.request(&Request::Unsubscribe { id }));
        }
    }

    /// Scatter `sql` over the given legs (shard `j/n` on leg `j`'s
    /// worker) and fold the rows into focal -> per-aggregate counts.
    fn scatter_counts(
        &mut self,
        sql: &str,
        legs: &[Leg],
    ) -> Result<HashMap<i64, Vec<i64>>, String> {
        let n = legs.len() as u32;
        let mut counts: HashMap<i64, Vec<i64>> = HashMap::new();
        for (j, leg) in legs.iter().enumerate() {
            let req = Request::Query {
                sql: sql.to_string(),
                shard: Some(ShardSpec::new(j as u32, n).expect("shard index < count")),
            };
            let w = leg.worker;
            match self.conn(w).and_then(|c| c.request(&req)) {
                Ok(Response::Table(t)) => {
                    for row in &t.rows {
                        let Some(Value::Int(focal)) = row.first() else {
                            return Err("non-integer focal id in scattered counts".into());
                        };
                        counts.insert(
                            *focal,
                            row[1..].iter().map(|v| v.as_int().unwrap_or(0)).collect(),
                        );
                    }
                }
                Ok(Response::Error { message }) => return Err(message),
                Ok(Response::Notify(_)) => unreachable!("request() filters notify frames"),
                Err(e) => {
                    self.fail_worker(w);
                    return Err(format!("worker failed during scattered counts: {e}"));
                }
            }
        }
        Ok(counts)
    }

    /// Worker indices currently carrying at least one leg.
    fn leg_workers(&self) -> Vec<usize> {
        let mut ws: Vec<usize> = self
            .subs
            .iter()
            .flat_map(|s| s.legs.iter().map(|l| l.worker))
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// Absorb the notify frames already buffered on every leg-carrying
    /// worker client (the update broadcast read past them), merging any
    /// generation that became complete.
    fn absorb_buffered_frames(&mut self) {
        for w in self.leg_workers() {
            let frames = match self.conns[w].as_mut() {
                Some(c) => c.drain_notifications(),
                None => continue,
            };
            for f in frames {
                self.absorb_frame(w, f);
            }
        }
    }

    /// Poll every leg-carrying worker connection for pushed frames (an
    /// update through *another* router connection reaches this
    /// session's legs on the workers' own idle flush ticks) and re-home
    /// legs whose workers died. Called from the serve loop's idle tick.
    pub fn poll_subscription_frames(&mut self) {
        if !self.has_subscriptions() {
            return;
        }
        let mut failed = false;
        for w in self.leg_workers() {
            while let Some(c) = self.conns[w].as_mut() {
                match c.poll_notification(Duration::from_millis(1)) {
                    Ok(Some(f)) => self.absorb_frame(w, f),
                    Ok(None) => break,
                    Err(_) => {
                        self.fail_worker(w);
                        failed = true;
                        break;
                    }
                }
            }
        }
        let down = self.subs.iter().any(|s| {
            s.legs
                .iter()
                .any(|l| !self.shared.workers[l.worker].up.load(Ordering::SeqCst))
        });
        if failed || down {
            // Recovery scatters fresh counts; exclude concurrent
            // updates so the refresh sees one generation.
            let shared = self.shared.clone();
            let _read = shared.coherence.read().expect("coherence poisoned");
            self.recover_dead_legs();
        }
    }

    /// File one worker frame under its (subscription, leg), then push
    /// any newly completed generations. Frames for unknown legs (just
    /// unsubscribed) or at-or-below the last pushed generation (already
    /// covered by a coalesced recovery frame) are dropped.
    fn absorb_frame(&mut self, worker: usize, frame: NotifyFrame) {
        let Some((si, j)) = self.subs.iter().enumerate().find_map(|(si, s)| {
            s.legs
                .iter()
                .position(|l| l.worker == worker && l.sub_id == frame.subscription)
                .map(|j| (si, j))
        }) else {
            return;
        };
        let sub = &mut self.subs[si];
        if frame.generation <= sub.generation {
            return;
        }
        let n_legs = sub.legs.len();
        sub.pending
            .entry(frame.generation)
            .or_insert_with(|| vec![None; n_legs])[j] = Some(frame.rows);
        self.complete_generations(si);
    }

    /// Push every pending generation whose legs have all reported,
    /// oldest first, concatenating rows in shard order — shards are
    /// contiguous ID ranges, so the merged rows are globally
    /// focal-ascending, matching a direct server's frame.
    fn complete_generations(&mut self, si: usize) {
        loop {
            {
                let sub = &self.subs[si];
                let Some(slots) = sub.pending.values().next() else {
                    break;
                };
                if !slots.iter().all(Option::is_some) {
                    break;
                }
            }
            let sub = &mut self.subs[si];
            let (gen, slots) = sub.pending.pop_first().expect("entry just seen");
            let rows: Vec<Vec<Value>> = slots.into_iter().flatten().flatten().collect();
            self.emit_frame(si, gen, rows);
        }
    }

    /// Encode one merged frame for the client and fold its `new` values
    /// into the baseline.
    fn emit_frame(&mut self, si: usize, generation: u64, rows: Vec<Vec<Value>>) {
        let frame = {
            let sub = &mut self.subs[si];
            sub.generation = generation;
            for row in &rows {
                let (Some(Value::Int(focal)), Some(Value::Str(col)), Some(Value::Int(new))) =
                    (row.first(), row.get(1), row.get(3))
                else {
                    continue;
                };
                if let Some(agg) = sub.columns.iter().position(|c| c == col) {
                    let width = sub.columns.len();
                    sub.baseline.entry(*focal).or_insert_with(|| vec![0; width])[agg] = *new;
                }
            }
            Response::Notify(NotifyFrame {
                subscription: sub.id,
                generation,
                columns: sub.columns.clone(),
                rows,
            })
            .encode()
        };
        self.pending_frames.push(frame);
        self.shared
            .stats
            .frames_pushed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Re-home every leg whose worker is down and push one coalesced
    /// catch-up frame per affected subscription. A subscription no
    /// survivor can carry is dropped — the client observes the silence
    /// (no further generations) and re-subscribes. Callers must hold
    /// the coherence lock (either side) so no update interleaves with
    /// the refresh.
    fn recover_dead_legs(&mut self) {
        let mut si = 0;
        while si < self.subs.len() {
            let dead: Vec<usize> = self.subs[si]
                .legs
                .iter()
                .enumerate()
                .filter(|(_, l)| !self.shared.workers[l.worker].up.load(Ordering::SeqCst))
                .map(|(j, _)| j)
                .collect();
            if dead.is_empty() {
                si += 1;
                continue;
            }
            match self.recover_sub(si, &dead) {
                Ok(()) => si += 1,
                Err(_) => {
                    let sub = self.subs.remove(si);
                    self.rollback_legs(&sub.legs);
                }
            }
        }
    }

    /// Re-subscribe the given dead legs of `subs[si]` on survivors,
    /// then synthesize the catch-up frame: a fresh scatter of the
    /// statement over the (re-homed) legs, diffed against the baseline
    /// — exactly the changes the client has not seen, no matter how
    /// many frames the dead worker swallowed.
    fn recover_sub(&mut self, si: usize, dead: &[usize]) -> Result<(), String> {
        let n = self.subs[si].legs.len() as u32;
        let sql = self.subs[si].sql.clone();
        let mut generation = self.subs[si].generation;
        for &j in dead {
            let mut homed = false;
            for w in self.shared.up_indices() {
                let req = Request::Subscribe {
                    sql: sql.clone(),
                    shard: Some(ShardSpec::new(j as u32, n).expect("shard index < count")),
                };
                match self.conn(w).and_then(|c| c.request(&req)) {
                    Ok(Response::Table(t)) => {
                        let Some(sub_id) = t.stat("subscription") else {
                            return Err("malformed subscribe ack from worker".into());
                        };
                        generation = t.stat("generation").unwrap_or(0) as u64;
                        self.subs[si].legs[j] = Leg {
                            worker: w,
                            sub_id: sub_id as u64,
                        };
                        self.shared
                            .stats
                            .legs_recovered
                            .fetch_add(1, Ordering::Relaxed);
                        homed = true;
                        break;
                    }
                    Ok(Response::Error { message }) => return Err(message),
                    Ok(Response::Notify(_)) => unreachable!("request() filters notify frames"),
                    Err(_) => self.fail_worker(w),
                }
            }
            if !homed {
                return Err("no workers available to re-home a subscription leg".into());
            }
        }
        let legs = self.subs[si].legs.clone();
        let current = self.scatter_counts(&sql, &legs)?;
        let sub = &self.subs[si];
        let mut focal: Vec<i64> = current.keys().copied().collect();
        focal.sort_unstable();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for f in focal {
            let new_vals = &current[&f];
            for (agg, col) in sub.columns.iter().enumerate() {
                let old = sub
                    .baseline
                    .get(&f)
                    .and_then(|v| v.get(agg))
                    .copied()
                    .unwrap_or(0);
                let new = new_vals.get(agg).copied().unwrap_or(0);
                if old != new {
                    rows.push(vec![
                        Value::Int(f),
                        Value::Str(col.clone()),
                        Value::Int(old),
                        Value::Int(new),
                    ]);
                }
            }
        }
        self.subs[si].pending.clear();
        self.emit_frame(si, generation, rows);
        Ok(())
    }

    /// Aggregate `stats` across the live fleet and append `router_*`
    /// counters.
    fn handle_stats(&mut self) -> String {
        let mut tables: Vec<TableData> = Vec::new();
        for w in self.shared.up_indices() {
            match self.conn(w).and_then(|c| c.request(&Request::Stats)) {
                Ok(Response::Table(t)) => tables.push(t),
                Ok(Response::Error { message }) => return Response::error(message).encode(),
                Ok(Response::Notify(_)) => unreachable!("request() filters notify frames"),
                Err(_) => self.fail_worker(w),
            }
        }
        if tables.is_empty() {
            return Response::error("no workers available").encode();
        }
        let stats = &self.shared.stats;
        let mut rows = merge_stats(&tables);
        rows.extend([
            (
                "router_connections".to_string(),
                stats.connections.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_frames_pushed".to_string(),
                stats.frames_pushed.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_legs_recovered".to_string(),
                stats.legs_recovered.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_proxied_requests".to_string(),
                stats.proxied_requests.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_subscriptions_created".to_string(),
                stats.subscriptions_created.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_requests".to_string(),
                stats.requests.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_rescattered_shards".to_string(),
                stats.rescattered_shards.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_scattered_queries".to_string(),
                stats.scattered_queries.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_worker_failures".to_string(),
                stats.worker_failures.load(Ordering::Relaxed) as i64,
            ),
            (
                "router_workers_total".to_string(),
                self.shared.workers_total() as i64,
            ),
            (
                "router_workers_up".to_string(),
                self.shared.workers_up() as i64,
            ),
        ]);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let table = TableData {
            columns: vec!["stat".into(), "value".into()],
            rows: rows
                .into_iter()
                .map(|(k, v)| vec![Value::Str(k), Value::Int(v)])
                .collect(),
        };
        Response::Table(table).encode()
    }
}

fn reply_table(text: &str) -> String {
    Response::Table(TableData {
        columns: vec!["reply".into()],
        rows: vec![vec![Value::Str(text.into())]],
    })
    .encode()
}

/// The router front end bound to a TCP address.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Bind to `addr` (port 0 for ephemeral) in front of the given
    /// worker addresses.
    pub fn bind(
        addr: impl ToSocketAddrs,
        worker_addrs: &[SocketAddr],
        config: RouterConfig,
    ) -> std::io::Result<Router> {
        if worker_addrs.is_empty() {
            return Err(std::io::Error::other("router needs at least one worker"));
        }
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(RouterShared {
            workers: worker_addrs
                .iter()
                .map(|&addr| WorkerSlot {
                    addr,
                    up: AtomicBool::new(true),
                })
                .collect(),
            coherence: RwLock::new(()),
            stats: RouterStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            next_proxy: AtomicUsize::new(0),
            next_sub: AtomicU64::new(1),
        });
        Ok(Router { listener, shared })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the router from another thread.
    pub fn shutdown_handle(&self) -> RouterShutdownHandle {
        RouterShutdownHandle {
            flag: self.shared.shutdown.clone(),
        }
    }

    /// The shared fleet state, for inspection in tests.
    pub fn shared(&self) -> &Arc<RouterShared> {
        &self.shared
    }

    /// Serve until shutdown: the same bounded-pool accept loop as
    /// `ego-server`, with a [`RouterSession`] per connection.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = self.shared.config.pool_threads.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(pool);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..pool)
            .map(|i| {
                let rx = rx.clone();
                let shared = self.shared.clone();
                std::thread::Builder::new()
                    .name(format!("ego-router-worker-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => return,
                        };
                        serve_connection(stream, &shared);
                    })
                    .expect("spawn router worker thread")
            })
            .collect();

        let shutdown = self.shared.shutdown.clone();
        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.shared.config.poll_interval);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serve one client connection: the same line loop as `ego-server`'s,
/// with requests handled by a [`RouterSession`].
fn serve_connection(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    let config = shared.config.clone();
    if stream.set_read_timeout(Some(config.poll_interval)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut session = RouterSession::new(shared.clone());
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut partial_since: Option<Instant> = None;

    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let response = session.handle_line(line);
            // Merged frames produced by handling this request (an
            // `update` on a connection that also subscribes) go out
            // *before* its response, mirroring `ego-server`'s ordering
            // guarantee.
            for frame in session.take_pending_frames() {
                if write_line(&mut stream, &frame).is_err() {
                    return;
                }
            }
            if write_line(&mut stream, &response).is_err() {
                return;
            }
        }
        partial_since = if buf.is_empty() {
            None
        } else {
            partial_since.or_else(|| Some(Instant::now()))
        };

        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick: collect frames workers flushed for
                // updates made through *other* router connections and
                // forward them to this subscriber.
                if session.has_subscriptions() {
                    session.poll_subscription_frames();
                    for frame in session.take_pending_frames() {
                        if write_line(&mut stream, &frame).is_err() {
                            return;
                        }
                    }
                }
                if let Some(since) = partial_since {
                    if since.elapsed() >= config.request_timeout {
                        let _ =
                            write_line(&mut stream, &Response::error("request timed out").encode());
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
