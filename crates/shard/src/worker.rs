//! Spawning and supervising a fleet of worker subprocesses.
//!
//! Each worker is a full `egocensus serve` process pointed at the same
//! `.egb` file; the mmap store opens it `MAP_SHARED`/`PROT_READ`, so N
//! workers share one physical copy of the CSR. The fleet reads each
//! child's stdout for the `listening on ADDR` readiness line (the same
//! line `scripts/verify.sh` parses) to learn the ephemeral port, and
//! kills every child on drop so an aborted router never leaks workers.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// One spawned worker.
#[derive(Clone, Copy, Debug)]
pub struct WorkerInfo {
    /// Position in the fleet (also its default shard index).
    pub index: usize,
    /// The address the worker bound.
    pub addr: SocketAddr,
    /// OS process id, so scripts/tests can kill a specific worker.
    pub pid: u32,
}

/// A fleet of worker subprocesses, killed on drop.
pub struct WorkerFleet {
    children: Vec<Option<Child>>,
    infos: Vec<WorkerInfo>,
}

impl WorkerFleet {
    /// Spawn `count` workers. `make_command` builds the command for
    /// worker `j` (typically `current_exe()` + `serve --addr
    /// 127.0.0.1:0 ...`); the fleet pipes its stdout and waits for the
    /// `listening on ADDR` line before spawning the next worker.
    pub fn spawn(
        count: usize,
        mut make_command: impl FnMut(usize) -> Command,
    ) -> std::io::Result<WorkerFleet> {
        let mut fleet = WorkerFleet {
            children: Vec::with_capacity(count),
            infos: Vec::with_capacity(count),
        };
        for index in 0..count {
            let mut cmd = make_command(index);
            cmd.stdout(Stdio::piped());
            let mut child = cmd.spawn()?;
            let stdout = child.stdout.take().expect("stdout was piped at spawn time");
            let pid = child.id();
            match read_listen_addr(stdout) {
                Ok(addr) => {
                    fleet.infos.push(WorkerInfo { index, addr, pid });
                    fleet.children.push(Some(child));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "worker {index} failed to start: {e}"
                    )));
                }
            }
        }
        Ok(fleet)
    }

    /// The spawned workers, in fleet order.
    pub fn infos(&self) -> &[WorkerInfo] {
        &self.infos
    }

    /// The worker addresses, in fleet order (what [`crate::Router::bind`]
    /// takes).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.infos.iter().map(|w| w.addr).collect()
    }

    /// Kill one worker (for failure-injection tests); idempotent.
    pub fn kill(&mut self, index: usize) -> std::io::Result<()> {
        if let Some(child) = self.children.get_mut(index).and_then(Option::take) {
            let mut child = child;
            child.kill()?;
            child.wait()?;
        }
        Ok(())
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for child in self.children.iter_mut().filter_map(Option::take) {
            let mut child = child;
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Read a child's stdout until the `listening on ADDR` readiness line;
/// keep draining the pipe afterwards so a chatty worker never blocks
/// on a full pipe buffer.
fn read_listen_addr(stdout: impl std::io::Read + Send + 'static) -> Result<SocketAddr, String> {
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("worker exited before announcing its address".into()),
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("listening on ") {
                    let addr: SocketAddr = rest
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad listen address `{rest}`: {e}"))?;
                    std::thread::spawn(move || {
                        let mut sink = String::new();
                        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                            sink.clear();
                        }
                    });
                    return Ok(addr);
                }
            }
            Err(e) => return Err(format!("reading worker stdout: {e}")),
        }
    }
}
