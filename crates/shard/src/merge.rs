//! Gather-side merging of per-shard worker responses.
//!
//! Two merge shapes exist:
//!
//! * **Result tables** ([`merge_tables`]): shards are contiguous
//!   node-ID ranges and every single-table census statement emits its
//!   rows in ascending focal-node order, so concatenating the per-shard
//!   tables *in shard order* reproduces the exact row order of
//!   unsharded execution. This holds for `COUNTSP` too: each worker
//!   computes the global match list itself over the shared mmap graph
//!   (broadcast of work, not of data — the list is memoized in the
//!   worker's census cache) and only the per-focal containment counts
//!   are shard-restricted.
//! * **Stats tables** ([`merge_stats`]): per-worker counters are
//!   combined by a per-key rule — `min`/`max` for latency extrema,
//!   recomputed quotient for latency means, `max` for the graph
//!   generation, `min` for the mmap-backed flag (all workers should map
//!   the same file), and plain sum for everything else.

use ego_query::Value;
use ego_server::TableData;
use std::collections::BTreeMap;

/// Concatenate per-shard result tables in shard order.
///
/// All parts must agree on the column list; a mismatch means the
/// workers executed different plans and the merged table would be
/// garbage, so it is reported as an error instead.
pub fn merge_tables(parts: &[TableData]) -> Result<TableData, String> {
    let mut merged = match parts.first() {
        Some(first) => TableData {
            columns: first.columns.clone(),
            rows: Vec::new(),
        },
        None => return Err("no shard responses to merge".into()),
    };
    for (i, part) in parts.iter().enumerate() {
        if part.columns != merged.columns {
            return Err(format!(
                "shard {i} returned columns {:?}, expected {:?}",
                part.columns, merged.columns
            ));
        }
        merged.rows.extend(part.rows.iter().cloned());
    }
    Ok(merged)
}

/// How one `stats` key combines across workers.
fn combine(key: &str, values: &[i64]) -> i64 {
    if key.ends_with("_min_us") || key == "graph_mmap_backed" {
        values.iter().copied().min().unwrap_or(0)
    } else if key.ends_with("_max_us") || key == "graph_generation" {
        values.iter().copied().max().unwrap_or(0)
    } else {
        values.iter().sum()
    }
}

/// Aggregate per-worker `stats` tables into one sorted key/value list.
///
/// Keys absent on some workers (per-op latency rows appear only once
/// the op has run there) aggregate over the workers that report them.
/// `latency_*_mean_us` is not averaged — it is recomputed from the
/// summed `_total_us` and `_count` so the merged mean is the true
/// fleet-wide mean.
pub fn merge_stats(parts: &[TableData]) -> Vec<(String, i64)> {
    let mut by_key: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for part in parts {
        for row in &part.rows {
            if let (Some(Value::Str(name)), Some(value)) =
                (row.first(), row.get(1).and_then(Value::as_int))
            {
                by_key.entry(name.clone()).or_default().push(value);
            }
        }
    }
    let totals: BTreeMap<String, i64> = by_key
        .iter()
        .filter(|(k, _)| k.ends_with("_total_us") || k.ends_with("_count"))
        .map(|(k, v)| (k.clone(), v.iter().sum()))
        .collect();
    by_key
        .iter()
        .map(|(key, values)| {
            let merged = match key.strip_suffix("_mean_us") {
                Some(base) => {
                    let total = totals.get(&format!("{base}_total_us")).copied();
                    let count = totals.get(&format!("{base}_count")).copied();
                    match (total, count) {
                        (Some(t), Some(c)) if c > 0 => t / c,
                        // No matching total/count rows: fall back to the
                        // worst per-worker mean rather than inventing one.
                        _ => values.iter().copied().max().unwrap_or(0),
                    }
                }
                None => combine(key, values),
            };
            (key.clone(), merged)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(columns: &[&str], rows: Vec<Vec<Value>>) -> TableData {
        TableData {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
        }
    }

    fn kv(rows: &[(&str, i64)]) -> TableData {
        table(
            &["stat", "value"],
            rows.iter()
                .map(|(k, v)| vec![Value::Str(k.to_string()), Value::Int(*v)])
                .collect(),
        )
    }

    #[test]
    fn concat_preserves_shard_order() {
        let a = table(&["ID", "c"], vec![vec![Value::Int(0), Value::Int(7)]]);
        let b = table(&["ID", "c"], vec![]);
        let c = table(
            &["ID", "c"],
            vec![
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(4)],
            ],
        );
        let merged = merge_tables(&[a, b, c]).unwrap();
        assert_eq!(merged.columns, vec!["ID", "c"]);
        let ids: Vec<_> = merged.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn column_mismatch_is_an_error() {
        let a = table(&["ID"], vec![]);
        let b = table(&["ID", "extra"], vec![]);
        let err = merge_tables(&[a, b]).unwrap_err();
        assert!(err.contains("shard 1"), "{err}");
    }

    #[test]
    fn empty_part_list_is_an_error() {
        assert!(merge_tables(&[]).is_err());
    }

    #[test]
    fn stats_suffix_rules() {
        let a = kv(&[
            ("cache_hits", 3),
            ("graph_generation", 2),
            ("graph_mmap_backed", 1),
            ("latency_query_count", 2),
            ("latency_query_max_us", 50),
            ("latency_query_mean_us", 30),
            ("latency_query_min_us", 10),
            ("latency_query_total_us", 60),
        ]);
        let b = kv(&[
            ("cache_hits", 4),
            ("graph_generation", 1),
            ("graph_mmap_backed", 0),
            ("latency_query_count", 1),
            ("latency_query_max_us", 90),
            ("latency_query_mean_us", 90),
            ("latency_query_min_us", 90),
            ("latency_query_total_us", 90),
        ]);
        let merged: BTreeMap<_, _> = merge_stats(&[a, b]).into_iter().collect();
        assert_eq!(merged["cache_hits"], 7); // sum
        assert_eq!(merged["graph_generation"], 2); // max (one lags)
        assert_eq!(merged["graph_mmap_backed"], 0); // min (one not mmap'd)
        assert_eq!(merged["latency_query_count"], 3);
        assert_eq!(merged["latency_query_max_us"], 90);
        assert_eq!(merged["latency_query_min_us"], 10);
        assert_eq!(merged["latency_query_total_us"], 150);
        assert_eq!(merged["latency_query_mean_us"], 50); // 150/3, not avg(30,90)
    }

    #[test]
    fn stats_keys_missing_on_some_workers() {
        let a = kv(&[("latency_define_count", 1), ("requests", 5)]);
        let b = kv(&[("requests", 2)]);
        let merged: BTreeMap<_, _> = merge_stats(&[a, b]).into_iter().collect();
        assert_eq!(merged["latency_define_count"], 1);
        assert_eq!(merged["requests"], 7);
    }
}
