//! The full Figure 4(h) experiment harness.

use crate::eval::precision_at_k;
use crate::measures::{candidate_pairs, census_measure, CensusMeasure};
use crate::rank::{top_pairs_by_count, top_pairs_by_score};
use ego_census::pairwise::jaccard;
use ego_datagen::dblp::DblpData;
use ego_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The K values for precision@K (the paper reports 50 and 600).
    pub ks: Vec<usize>,
    /// Seed for the random predictor.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            ks: vec![50, 600],
            seed: 0xD81,
        }
    }
}

/// Precision results for one predictor.
#[derive(Clone, Debug)]
pub struct MeasureResult {
    /// Predictor name (`nodes@2`, `jaccard`, `random`, ...).
    pub name: String,
    /// `(k, precision@k)` pairs, in the order of `config.ks`.
    pub precision: Vec<(usize, f64)>,
}

/// All predictors' results.
#[derive(Clone, Debug)]
pub struct ExperimentResults {
    /// One entry per predictor: the nine census measures, Jaccard, random.
    pub measures: Vec<MeasureResult>,
}

impl ExperimentResults {
    /// Look up a predictor by name.
    pub fn measure(&self, name: &str) -> Option<&MeasureResult> {
        self.measures.iter().find(|m| m.name == name)
    }
}

/// Run the experiment: rank pairs under every predictor and evaluate
/// precision@K against the held-out new collaborations.
pub fn run_experiment(data: &DblpData, config: &ExperimentConfig) -> ExperimentResults {
    let g = &data.train;
    let max_k = config.ks.iter().copied().max().unwrap_or(0);
    let mut measures = Vec::new();

    // The nine census measures.
    for m in CensusMeasure::paper_set() {
        let counts = census_measure(g, m);
        let top = top_pairs_by_count(&counts, max_k);
        measures.push(MeasureResult {
            name: m.name(),
            precision: config
                .ks
                .iter()
                .map(|&k| (k, precision_at_k(&top, data, k)))
                .collect(),
        });
    }

    // Jaccard coefficient over the same non-adjacent candidate pairs
    // (radius 1, its natural domain).
    let jaccard_scores: Vec<(NodeId, NodeId, f64)> = candidate_pairs(g, 1)
        .into_iter()
        .map(|(a, b)| (a, b, jaccard(g, a, b)))
        .collect();
    let top = top_pairs_by_score(&jaccard_scores, max_k);
    measures.push(MeasureResult {
        name: "jaccard".into(),
        precision: config
            .ks
            .iter()
            .map(|&k| (k, precision_at_k(&top, data, k)))
            .collect(),
    });

    // Random predictor: K uniform non-adjacent pairs.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut all_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for a in g.node_ids() {
        for b in g.node_ids() {
            if b > a && !g.has_undirected_edge(a, b) {
                all_pairs.push((a, b));
            }
        }
    }
    all_pairs.shuffle(&mut rng);
    all_pairs.truncate(max_k);
    measures.push(MeasureResult {
        name: "random".into(),
        precision: config
            .ks
            .iter()
            .map(|&k| (k, precision_at_k(&all_pairs, data, k)))
            .collect(),
    });

    ExperimentResults { measures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_datagen::dblp::{generate, DblpConfig};
    use ego_datagen::rng;

    fn small_data() -> DblpData {
        // Communities must stay sparse enough that a 2-hop neighborhood
        // does not swallow the whole community: when radius-2 counts
        // saturate, every within-community pair ties and the ranking
        // degenerates to id order, destroying the radius-2 signal the
        // DESIGN.md Fig 4(h) claim ("common nodes @2 hops beats Jaccard")
        // relies on. ~25 authors/community at ~3 papers/community/year
        // keeps 2-hop balls strictly inside communities.
        generate(
            &DblpConfig {
                num_authors: 400,
                num_communities: 16,
                papers_per_year: 50,
                ..Default::default()
            },
            &mut rng(11),
        )
    }

    #[test]
    fn produces_all_predictors() {
        let data = small_data();
        let res = run_experiment(
            &data,
            &ExperimentConfig {
                ks: vec![25],
                seed: 1,
            },
        );
        assert_eq!(res.measures.len(), 11); // 9 census + jaccard + random
        for m in &res.measures {
            assert_eq!(m.precision.len(), 1);
            let p = m.precision[0].1;
            assert!((0.0..=1.0).contains(&p), "{}: {p}", m.name);
        }
        assert!(res.measure("nodes@2").is_some());
        assert!(res.measure("nope").is_none());
    }

    #[test]
    fn census_measures_beat_random() {
        // The qualitative Figure 4(h) claim on community-structured data:
        // common-neighborhood measures carry real signal, random ≈ 0.
        let data = small_data();
        let res = run_experiment(
            &data,
            &ExperimentConfig {
                ks: vec![30],
                seed: 5,
            },
        );
        let random = res.measure("random").unwrap().precision[0].1;
        let nodes2 = res.measure("nodes@2").unwrap().precision[0].1;
        assert!(
            nodes2 > random,
            "nodes@2 ({nodes2}) should beat random ({random})"
        );
        assert!(nodes2 > 0.1, "nodes@2 precision too weak: {nodes2}");
        assert!(random < 0.1, "random should be near zero: {random}");
    }

    #[test]
    fn deterministic() {
        let data = small_data();
        let cfg = ExperimentConfig {
            ks: vec![20],
            seed: 9,
        };
        let a = run_experiment(&data, &cfg);
        let b = run_experiment(&data, &cfg);
        for (x, y) in a.measures.iter().zip(&b.measures) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.precision, y.precision);
        }
    }
}
