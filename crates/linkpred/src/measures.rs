//! The nine pairwise census measures of the DBLP experiment.
//!
//! Each measure is a query of the form (Section V-B):
//!
//! ```sql
//! SELECT n1.ID, n2.ID,
//!        COUNTP(struct, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, r))
//! FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID
//! ```
//!
//! with `struct` ∈ {node, edge, triangle} and `r` ∈ {1, 2, 3}.

use ego_census::{run_pair_census, Algorithm, PairCensusSpec, PairCounts, PairSelector};
use ego_graph::bfs::BfsScratch;
use ego_graph::{Graph, NodeId};
use ego_pattern::Pattern;

/// The structural pattern of a measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasureKind {
    /// Common nodes.
    Node,
    /// Common edges.
    Edge,
    /// Common triangles.
    Triangle,
}

impl MeasureKind {
    /// The pattern counted by this measure.
    pub fn pattern(self) -> Pattern {
        let text = match self {
            MeasureKind::Node => "PATTERN m_node { ?A; }",
            MeasureKind::Edge => "PATTERN m_edge { ?A-?B; }",
            MeasureKind::Triangle => "PATTERN m_tri { ?A-?B; ?B-?C; ?A-?C; }",
        };
        Pattern::parse(text).expect("measure pattern parses")
    }

    /// Short name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::Node => "nodes",
            MeasureKind::Edge => "edges",
            MeasureKind::Triangle => "triangles",
        }
    }

    /// All three kinds.
    pub fn all() -> [MeasureKind; 3] {
        [MeasureKind::Node, MeasureKind::Edge, MeasureKind::Triangle]
    }
}

/// One of the nine measures: a pattern kind and a radius.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CensusMeasure {
    /// Structure counted.
    pub kind: MeasureKind,
    /// Common-neighborhood radius (1, 2, or 3 in the paper).
    pub r: u32,
}

impl CensusMeasure {
    /// `"<kind>@<r>"`, e.g. `"nodes@2"`.
    pub fn name(&self) -> String {
        format!("{}@{}", self.kind.name(), self.r)
    }

    /// The paper's nine configurations.
    pub fn paper_set() -> Vec<CensusMeasure> {
        let mut v = Vec::new();
        for kind in MeasureKind::all() {
            for r in 1..=3 {
                v.push(CensusMeasure { kind, r });
            }
        }
        v
    }
}

/// Candidate pairs for a measure: only pairs within `2r` hops can have a
/// nonempty common `r`-hop neighborhood, so everything else scores zero
/// and never enters the top-K. Pairs already linked in `g` are excluded —
/// link prediction ranks *new* collaborations.
pub fn candidate_pairs(g: &Graph, r: u32) -> Vec<(NodeId, NodeId)> {
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut ball = Vec::new();
    let mut pairs = Vec::new();
    for a in g.node_ids() {
        ball.clear();
        scratch.bounded_bfs(g, a, 2 * r, &mut ball);
        for &b in &ball {
            if b > a && !g.has_undirected_edge(a, b) {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Compute one measure over its candidate pairs.
pub fn census_measure(g: &Graph, measure: CensusMeasure) -> PairCounts {
    let pattern = measure.kind.pattern();
    let pairs = candidate_pairs(g, measure.r);
    let spec = PairCensusSpec::intersection(&pattern, measure.r, PairSelector::Pairs(pairs));
    // ND-PVOT's pairwise form precomputes per-node k-hop lists once and
    // merges per pair — the right shape when every candidate pair is
    // evaluated (pattern-driven shines when matches are rare; common-
    // neighborhood node/edge counts are anything but).
    run_pair_census(g, &spec, Algorithm::NdPivot).expect("measure query is supported")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// Two triangles sharing node 2, chain 4-5-6.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn paper_set_is_nine() {
        let set = CensusMeasure::paper_set();
        assert_eq!(set.len(), 9);
        let names: Vec<String> = set.iter().map(CensusMeasure::name).collect();
        assert!(names.contains(&"nodes@2".to_string()));
        assert!(names.contains(&"triangles@3".to_string()));
    }

    #[test]
    fn candidate_pairs_exclude_linked_and_distant() {
        let g = fixture();
        let pairs = candidate_pairs(&g, 1);
        // (0,1) is an edge: excluded. (0,6) is 4 hops apart (> 2): excluded.
        assert!(!pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(!pairs.contains(&(NodeId(0), NodeId(6))));
        // (0,3): distance 2, no edge: included.
        assert!(pairs.contains(&(NodeId(0), NodeId(3))));
    }

    #[test]
    fn common_node_counts() {
        let g = fixture();
        let m = census_measure(
            &g,
            CensusMeasure {
                kind: MeasureKind::Node,
                r: 1,
            },
        );
        // N1(0) = {0,1,2}, N1(3) = {2,3,4}: common node {2}.
        assert_eq!(m.get(NodeId(0), NodeId(3)), 1);
        // N1(1) and N1(4) share {2}.
        assert_eq!(m.get(NodeId(1), NodeId(4)), 1);
    }

    #[test]
    fn common_triangle_counts() {
        let g = fixture();
        let m = census_measure(
            &g,
            CensusMeasure {
                kind: MeasureKind::Triangle,
                r: 2,
            },
        );
        // Pair (1, 3): N2(1) ⊇ {0,1,2,3,4}, N2(3) = all but 6. The common
        // 2-hop neighborhood contains both triangles.
        assert_eq!(m.get(NodeId(1), NodeId(3)), 2);
    }

    #[test]
    fn larger_radius_dominates() {
        let g = fixture();
        let m1 = census_measure(
            &g,
            CensusMeasure {
                kind: MeasureKind::Node,
                r: 1,
            },
        );
        let m2 = census_measure(
            &g,
            CensusMeasure {
                kind: MeasureKind::Node,
                r: 2,
            },
        );
        for (a, b, c) in m1.iter() {
            assert!(m2.get(a, b) >= c, "pair ({a},{b})");
        }
    }
}
