//! # ego-linkpred
//!
//! The link prediction experiment of Section V-B / Figure 4(h).
//!
//! Nine pairwise census measures — counts of **node**, **edge**, and
//! **triangle** patterns in the common 1-, 2-, and 3-hop neighborhoods of
//! each author pair — are compared against the Jaccard coefficient and a
//! random predictor. For each measure, author pairs are ranked by count
//! and precision@K is reported: the fraction of the top K pairs that
//! actually collaborate (for the first time) in the test period.
//!
//! ```
//! use ego_datagen::dblp::{self, DblpConfig};
//! use ego_linkpred::{run_experiment, ExperimentConfig};
//!
//! let data = dblp::generate(
//!     &DblpConfig { num_authors: 200, papers_per_year: 60, ..Default::default() },
//!     &mut ego_datagen::rng(7),
//! );
//! let results = run_experiment(&data, &ExperimentConfig { ks: vec![20], seed: 7 });
//! let common_nodes_2 = results.measure("nodes@2").unwrap();
//! assert!(common_nodes_2.precision[0].1 >= 0.0);
//! ```

pub mod eval;
pub mod experiment;
pub mod measures;
pub mod rank;

pub use eval::precision_at_k;
pub use experiment::{run_experiment, ExperimentConfig, ExperimentResults, MeasureResult};
pub use measures::{census_measure, CensusMeasure, MeasureKind};
