//! Ranking pairs by score.

use ego_census::PairCounts;
use ego_graph::NodeId;

/// Rank pairs by descending count, ties broken by pair id for
/// determinism. Returns at most `k` pairs.
pub fn top_pairs_by_count(counts: &PairCounts, k: usize) -> Vec<(NodeId, NodeId)> {
    counts
        .top_k(k)
        .into_iter()
        .map(|(a, b, _)| (a, b))
        .collect()
}

/// Rank pairs by a float score (e.g. Jaccard), descending, ties by pair.
pub fn top_pairs_by_score(scores: &[(NodeId, NodeId, f64)], k: usize) -> Vec<(NodeId, NodeId)> {
    let mut v: Vec<&(NodeId, NodeId, f64)> = scores.iter().collect();
    v.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
    });
    v.into_iter().take(k).map(|&(a, b, _)| (a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_ranking() {
        let mut c = PairCounts::default();
        c.add(NodeId(0), NodeId(1), 5);
        c.add(NodeId(0), NodeId(2), 9);
        c.add(NodeId(1), NodeId(2), 1);
        let top = top_pairs_by_count(&c, 2);
        assert_eq!(top, vec![(NodeId(0), NodeId(2)), (NodeId(0), NodeId(1))]);
    }

    #[test]
    fn score_ranking_with_ties() {
        let scores = vec![
            (NodeId(3), NodeId(4), 0.5),
            (NodeId(0), NodeId(1), 0.5),
            (NodeId(2), NodeId(5), 0.9),
        ];
        let top = top_pairs_by_score(&scores, 3);
        assert_eq!(top[0], (NodeId(2), NodeId(5)));
        // Ties broken by pair id.
        assert_eq!(top[1], (NodeId(0), NodeId(1)));
        assert_eq!(top[2], (NodeId(3), NodeId(4)));
    }

    #[test]
    fn k_larger_than_set() {
        let mut c = PairCounts::default();
        c.add(NodeId(0), NodeId(1), 1);
        assert_eq!(top_pairs_by_count(&c, 10).len(), 1);
        assert!(top_pairs_by_score(&[], 10).is_empty());
    }
}
