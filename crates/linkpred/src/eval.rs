//! Precision@K evaluation.

use ego_datagen::dblp::DblpData;
use ego_graph::NodeId;

/// Precision at K: the fraction of `predictions` (up to the first `k`)
/// that are true positives. If fewer than `k` predictions exist, the
/// denominator is still `k` — an under-supplied predictor is penalized,
/// matching the paper's definition ("correct predictions divided by K").
pub fn precision_at_k(predictions: &[(NodeId, NodeId)], data: &DblpData, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .take(k)
        .filter(|&&(a, b)| data.is_positive(a, b))
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_datagen::dblp::{generate, DblpConfig};
    use ego_datagen::rng;

    fn data() -> DblpData {
        generate(
            &DblpConfig {
                num_authors: 150,
                papers_per_year: 60,
                ..Default::default()
            },
            &mut rng(3),
        )
    }

    #[test]
    fn perfect_and_zero_predictors() {
        let d = data();
        let perfect: Vec<_> = d.test_new_edges.iter().copied().take(10).collect();
        assert_eq!(precision_at_k(&perfect, &d, 10), 1.0);
        // Pairs guaranteed negative: reuse training edges (they're not new).
        let negatives: Vec<_> = d.train.edges().take(10).collect();
        assert_eq!(precision_at_k(&negatives, &d, 10), 0.0);
    }

    #[test]
    fn partial_credit() {
        let d = data();
        let mut preds: Vec<_> = d.test_new_edges.iter().copied().take(5).collect();
        preds.extend(d.train.edges().take(5));
        assert!((precision_at_k(&preds, &d, 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn under_supplied_predictor_penalized() {
        let d = data();
        let preds: Vec<_> = d.test_new_edges.iter().copied().take(5).collect();
        assert!((precision_at_k(&preds, &d, 10) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&preds, &d, 0), 0.0);
    }
}
