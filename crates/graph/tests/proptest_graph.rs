//! Property-based tests for the graph substrate.

use ego_graph::bfs::BfsScratch;
use ego_graph::profile::{NodeProfile, ProfileIndex};
use ego_graph::subgraph::InducedSubgraph;
use ego_graph::{io, neighborhood, store, AttrValue, Graph, GraphBuilder, Label, NodeId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..120),
        1u16..5,
        any::<bool>(),
    )
        .prop_map(|(n, raw_edges, labels, directed)| {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            for i in 0..n {
                b.add_node(Label((i % labels as usize) as u16));
            }
            for (x, y) in raw_edges {
                let a = NodeId(x % n as u32);
                let c = NodeId(y % n as u32);
                if a != c {
                    b.add_edge(a, c);
                }
            }
            b.build()
        })
}

/// Random lowercase identifier, `len` chars drawn from `1..=max_len`.
fn arb_ident(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(b'a'..b'z' + 1, 1..max_len + 1)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

/// Strings that collide with other token syntaxes or contain characters
/// the text format must escape — the values the quoting satellite exists
/// for — mixed with plain identifiers.
fn arb_str_value() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("123".to_string()),
        Just("-7".to_string()),
        Just("1.5".to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        Just("has space".to_string()),
        Just("a=b".to_string()),
        Just("\"quoted\"".to_string()),
        Just("50%".to_string()),
        Just("%41".to_string()),
        Just("tab\there".to_string()),
        Just("naïve café".to_string()),
        arb_ident(8),
    ]
}

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        any::<i64>().prop_map(AttrValue::Int),
        // Finite floats only: NaN breaks the PartialEq comparison below,
        // and the text format has no NaN token anyway.
        any::<i32>().prop_map(|i| AttrValue::Float(i as f64 / 8.0)),
        any::<bool>().prop_map(AttrValue::Bool),
        arb_str_value().prop_map(AttrValue::Str),
    ]
}

type AttrSpec = Vec<(u32, String, AttrValue)>;

/// A graph plus node and edge attributes drawn from every `AttrValue`
/// variant. Attribute positions are raw indices resolved against the
/// built graph (node attrs: `% n`; edge attrs: index into `edges()`).
fn arb_attr_graph() -> impl Strategy<Value = Graph> {
    let key = || {
        prop_oneof![
            Just("name".to_string()),
            Just("weight".to_string()),
            Just("x".to_string()),
            arb_ident(6),
        ]
    };
    (
        2usize..24,
        prop::collection::vec((any::<u32>(), any::<u32>()), 1..60),
        1u16..4,
        any::<bool>(),
        prop::collection::vec((any::<u32>(), key(), arb_attr_value()), 0..12),
        prop::collection::vec((any::<u32>(), key(), arb_attr_value()), 0..12),
    )
        .prop_map(
            |(n, raw_edges, labels, directed, node_attrs, edge_attrs): (
                usize,
                Vec<(u32, u32)>,
                u16,
                bool,
                AttrSpec,
                AttrSpec,
            )| {
                let mut b = if directed {
                    GraphBuilder::directed()
                } else {
                    GraphBuilder::undirected()
                };
                for i in 0..n {
                    b.add_node(Label((i % labels as usize) as u16));
                }
                let mut edges = Vec::new();
                for (x, y) in raw_edges {
                    let a = NodeId(x % n as u32);
                    let c = NodeId(y % n as u32);
                    if a != c {
                        b.add_edge(a, c);
                        edges.push((a, c));
                    }
                }
                for (i, key, v) in node_attrs {
                    b.set_node_attr(NodeId(i % n as u32), &key, v);
                }
                if !edges.is_empty() {
                    for (i, key, v) in edge_attrs {
                        let (a, c) = edges[i as usize % edges.len()];
                        b.set_edge_attr(a, c, &key, v);
                    }
                }
                b.build()
            },
        )
}

/// Structural + attribute equality, used by both roundtrip tests.
fn assert_graphs_identical(g: &Graph, g2: &Graph) -> Result<(), TestCaseError> {
    prop_assert_eq!(g2.num_nodes(), g.num_nodes());
    prop_assert_eq!(g2.num_edges(), g.num_edges());
    prop_assert_eq!(g2.is_directed(), g.is_directed());
    prop_assert_eq!(g2.num_labels(), g.num_labels());
    prop_assert_eq!(g2.fingerprint(), g.fingerprint());
    for n in g.node_ids() {
        prop_assert_eq!(g2.label(n), g.label(n));
        prop_assert_eq!(g2.neighbors(n), g.neighbors(n));
        if g.is_directed() {
            prop_assert_eq!(g2.out_neighbors(n), g.out_neighbors(n));
            prop_assert_eq!(g2.in_neighbors(n), g.in_neighbors(n));
        }
    }
    let cols = |g: &Graph| {
        let mut names: Vec<String> = g.node_attrs().attribute_names().map(String::from).collect();
        names.sort();
        names
    };
    prop_assert_eq!(cols(g2), cols(g));
    for name in g.node_attrs().attribute_names() {
        for (node, value) in g.node_attrs().column(name) {
            prop_assert_eq!(g2.node_attrs().get(node, name), Some(value));
        }
    }
    let ecols = |g: &Graph| {
        let mut names: Vec<String> = g.edge_attrs().attribute_names().map(String::from).collect();
        names.sort();
        names
    };
    prop_assert_eq!(ecols(g2), ecols(g));
    for name in g.edge_attrs().attribute_names() {
        for ((a, b), value) in g.edge_attrs().column(name) {
            prop_assert_eq!(g2.edge_attrs().get(NodeId(a), NodeId(b), name), Some(value));
        }
    }
    Ok(())
}

/// Unique scratch path per invocation (proptest runs cases in-process).
fn scratch_egb() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ego-proptest-{}-{}.egb",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric_in_undirected_view(g in arb_graph()) {
        for a in g.node_ids() {
            for &b in g.neighbors(a) {
                prop_assert!(g.neighbors(b).contains(&a));
                prop_assert!(g.has_undirected_edge(a, b));
                prop_assert!(g.has_undirected_edge(b, a));
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_and_dedup(g in arb_graph()) {
        for a in g.node_ids() {
            let ns = g.neighbors(a);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&a), "self loop survived");
        }
    }

    #[test]
    fn degree_sum_counts_undirected_view(g in arb_graph()) {
        let sum: usize = g.node_ids().map(|n| g.degree(n)).sum();
        // The undirected view has each (deduped) edge twice.
        prop_assert_eq!(sum % 2, 0);
    }

    #[test]
    fn io_roundtrip_preserves_everything(g in arb_graph()) {
        let text = io::to_string(&g);
        let g2 = io::from_str(&text).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        prop_assert_eq!(g2.is_directed(), g.is_directed());
        for n in g.node_ids() {
            prop_assert_eq!(g2.label(n), g.label(n));
            prop_assert_eq!(g2.neighbors(n), g.neighbors(n));
            if g.is_directed() {
                prop_assert_eq!(g2.out_neighbors(n), g.out_neighbors(n));
                prop_assert_eq!(g2.in_neighbors(n), g.in_neighbors(n));
            }
        }
    }

    #[test]
    fn text_roundtrip_preserves_attrs_of_every_variant(g in arb_attr_graph()) {
        let text = io::to_string(&g);
        let g2 = io::from_str(&text).unwrap();
        assert_graphs_identical(&g, &g2)?;
    }

    #[test]
    fn binary_roundtrip_preserves_attrs_of_every_variant(g in arb_attr_graph()) {
        let path = scratch_egb();
        store::save_binary(&g, &path).unwrap();
        let g2 = store::open_binary(&path).unwrap();
        let res = assert_graphs_identical(&g, &g2);
        drop(g2); // unmap before unlinking
        std::fs::remove_file(&path).ok();
        res?;
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_over_edges(g in arb_graph()) {
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut dist = vec![0u32; g.num_nodes()];
        scratch.full_bfs_distances(&g, NodeId(0), &mut dist);
        for (a, b) in g.edges() {
            let (da, db) = (dist[a.index()], dist[b.index()]);
            if da != u32::MAX && db != u32::MAX {
                prop_assert!(da.abs_diff(db) <= 1, "edge distance gap > 1");
            } else {
                prop_assert_eq!(da, db, "one endpoint reachable, other not");
            }
        }
    }

    #[test]
    fn khop_monotone_and_consistent(g in arb_graph()) {
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let n = NodeId(0);
        let mut prev: Vec<NodeId> = vec![];
        for k in 0..4u32 {
            let cur = neighborhood::khop_nodes(&g, n, k);
            prop_assert!(cur.windows(2).all(|w| w[0] < w[1]), "not sorted");
            prop_assert!(prev.iter().all(|x| cur.binary_search(x).is_ok()), "shrunk");
            prev = cur;
        }
    }

    #[test]
    fn intersection_union_laws(g in arb_graph()) {
        if g.num_nodes() < 2 {
            return Ok(());
        }
        let mut scratch = BfsScratch::new(g.num_nodes());
        let a = NodeId(0);
        let b = NodeId(1);
        let inter = neighborhood::khop_intersection(&g, &mut scratch, a, b, 2);
        let uni = neighborhood::khop_union(&g, &mut scratch, a, b, 2);
        let ka = neighborhood::khop_nodes(&g, a, 2);
        let kb = neighborhood::khop_nodes(&g, b, 2);
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        prop_assert_eq!(ka.len() + kb.len(), uni.len() + inter.len());
        for x in &inter {
            prop_assert!(ka.binary_search(x).is_ok() && kb.binary_search(x).is_ok());
        }
    }

    #[test]
    fn profile_index_agrees_with_direct_profiles(g in arb_graph()) {
        let idx = ProfileIndex::build(&g);
        for n in g.node_ids() {
            let p = NodeProfile::of(&g, n);
            prop_assert_eq!(idx.entries(n), p.entries());
            prop_assert!(idx.contains(n, &p), "profile not self-contained");
        }
    }

    #[test]
    fn induced_subgraph_edges_match_membership(g in arb_graph()) {
        // Take every other node.
        let nodes: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
        let sub = InducedSubgraph::extract(&g, &nodes);
        // Every subgraph edge exists in the parent.
        for (a, b) in sub.graph.edges() {
            let (ga, gb) = (sub.to_global(a), sub.to_global(b));
            if g.is_directed() {
                prop_assert!(g.has_directed_edge(ga, gb));
            } else {
                prop_assert!(g.has_undirected_edge(ga, gb));
            }
        }
        // Every parent edge between members appears in the subgraph.
        for (ga, gb) in g.edges() {
            if let (Some(a), Some(b)) = (sub.to_local(ga), sub.to_local(gb)) {
                if g.is_directed() {
                    prop_assert!(sub.graph.has_directed_edge(a, b));
                } else {
                    prop_assert!(sub.graph.has_undirected_edge(a, b));
                }
            }
        }
    }
}

/// Malformed text inputs must produce a parse error, never a panic or a
/// silently wrong graph. (The binary-format counterpart corpus lives in
/// `store.rs` unit tests: truncated header, bad magic, mis-sized
/// sections.)
#[test]
fn malformed_text_corpus_all_error() {
    let corpus: &[&str] = &[
        "",                                                     // no header
        "node 0 1\n",                                           // node before header
        "edge 0 1\n",                                           // edge before header
        "graph sideways nodes=2\n",                             // bad directedness
        "graph undirected nodes=abc\n",                         // bad node count
        "graph undirected\n",                                   // missing nodes=
        "graph undirected nodes=2\ngraph undirected nodes=2\n", // duplicate header
        "graph undirected nodes=2\nnode 5 0\n",                 // node id out of range
        "graph undirected nodes=2\nnode 0 0\nedge 0 9\n",       // edge endpoint out of range
        "graph undirected nodes=2\nnode zero 0\n",              // bad node id
        "graph undirected nodes=2\nnode 0 red\n",               // bad label
        "graph undirected nodes=2\nwhatsit 0 1\n",              // unknown record
        "graph undirected nodes=2\nnode 0 0 name=\"%zz\"\n",    // bad percent escape
        "graph undirected nodes=2\nnode 0 0 name=\"open\n",     // unterminated quote
    ];
    for (i, input) in corpus.iter().enumerate() {
        let res = io::from_str(input);
        assert!(
            matches!(res, Err(io::IoError::Parse { .. })),
            "corpus[{i}] {input:?}: expected parse error, got {res:?}"
        );
    }
}
