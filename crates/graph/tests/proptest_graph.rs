//! Property-based tests for the graph substrate.

use ego_graph::bfs::BfsScratch;
use ego_graph::profile::{NodeProfile, ProfileIndex};
use ego_graph::subgraph::InducedSubgraph;
use ego_graph::{io, neighborhood, Graph, GraphBuilder, Label, NodeId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..120),
        1u16..5,
        any::<bool>(),
    )
        .prop_map(|(n, raw_edges, labels, directed)| {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            for i in 0..n {
                b.add_node(Label((i % labels as usize) as u16));
            }
            for (x, y) in raw_edges {
                let a = NodeId(x % n as u32);
                let c = NodeId(y % n as u32);
                if a != c {
                    b.add_edge(a, c);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric_in_undirected_view(g in arb_graph()) {
        for a in g.node_ids() {
            for &b in g.neighbors(a) {
                prop_assert!(g.neighbors(b).contains(&a));
                prop_assert!(g.has_undirected_edge(a, b));
                prop_assert!(g.has_undirected_edge(b, a));
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_and_dedup(g in arb_graph()) {
        for a in g.node_ids() {
            let ns = g.neighbors(a);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&a), "self loop survived");
        }
    }

    #[test]
    fn degree_sum_counts_undirected_view(g in arb_graph()) {
        let sum: usize = g.node_ids().map(|n| g.degree(n)).sum();
        // The undirected view has each (deduped) edge twice.
        prop_assert_eq!(sum % 2, 0);
    }

    #[test]
    fn io_roundtrip_preserves_everything(g in arb_graph()) {
        let text = io::to_string(&g);
        let g2 = io::from_str(&text).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        prop_assert_eq!(g2.is_directed(), g.is_directed());
        for n in g.node_ids() {
            prop_assert_eq!(g2.label(n), g.label(n));
            prop_assert_eq!(g2.neighbors(n), g.neighbors(n));
            if g.is_directed() {
                prop_assert_eq!(g2.out_neighbors(n), g.out_neighbors(n));
                prop_assert_eq!(g2.in_neighbors(n), g.in_neighbors(n));
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_over_edges(g in arb_graph()) {
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut dist = vec![0u32; g.num_nodes()];
        scratch.full_bfs_distances(&g, NodeId(0), &mut dist);
        for (a, b) in g.edges() {
            let (da, db) = (dist[a.index()], dist[b.index()]);
            if da != u32::MAX && db != u32::MAX {
                prop_assert!(da.abs_diff(db) <= 1, "edge distance gap > 1");
            } else {
                prop_assert_eq!(da, db, "one endpoint reachable, other not");
            }
        }
    }

    #[test]
    fn khop_monotone_and_consistent(g in arb_graph()) {
        if g.num_nodes() == 0 {
            return Ok(());
        }
        let n = NodeId(0);
        let mut prev: Vec<NodeId> = vec![];
        for k in 0..4u32 {
            let cur = neighborhood::khop_nodes(&g, n, k);
            prop_assert!(cur.windows(2).all(|w| w[0] < w[1]), "not sorted");
            prop_assert!(prev.iter().all(|x| cur.binary_search(x).is_ok()), "shrunk");
            prev = cur;
        }
    }

    #[test]
    fn intersection_union_laws(g in arb_graph()) {
        if g.num_nodes() < 2 {
            return Ok(());
        }
        let mut scratch = BfsScratch::new(g.num_nodes());
        let a = NodeId(0);
        let b = NodeId(1);
        let inter = neighborhood::khop_intersection(&g, &mut scratch, a, b, 2);
        let uni = neighborhood::khop_union(&g, &mut scratch, a, b, 2);
        let ka = neighborhood::khop_nodes(&g, a, 2);
        let kb = neighborhood::khop_nodes(&g, b, 2);
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        prop_assert_eq!(ka.len() + kb.len(), uni.len() + inter.len());
        for x in &inter {
            prop_assert!(ka.binary_search(x).is_ok() && kb.binary_search(x).is_ok());
        }
    }

    #[test]
    fn profile_index_agrees_with_direct_profiles(g in arb_graph()) {
        let idx = ProfileIndex::build(&g);
        for n in g.node_ids() {
            let p = NodeProfile::of(&g, n);
            prop_assert_eq!(idx.entries(n), p.entries());
            prop_assert!(idx.contains(n, &p), "profile not self-contained");
        }
    }

    #[test]
    fn induced_subgraph_edges_match_membership(g in arb_graph()) {
        // Take every other node.
        let nodes: Vec<NodeId> = g.node_ids().filter(|n| n.0 % 2 == 0).collect();
        let sub = InducedSubgraph::extract(&g, &nodes);
        // Every subgraph edge exists in the parent.
        for (a, b) in sub.graph.edges() {
            let (ga, gb) = (sub.to_global(a), sub.to_global(b));
            if g.is_directed() {
                prop_assert!(g.has_directed_edge(ga, gb));
            } else {
                prop_assert!(g.has_undirected_edge(ga, gb));
            }
        }
        // Every parent edge between members appears in the subgraph.
        for (ga, gb) in g.edges() {
            if let (Some(a), Some(b)) = (sub.to_local(ga), sub.to_local(gb)) {
                if g.is_directed() {
                    prop_assert!(sub.graph.has_directed_edge(a, b));
                } else {
                    prop_assert!(sub.graph.has_undirected_edge(a, b));
                }
            }
        }
    }
}
