//! Property-based equivalence tests for the set-intersection kernels:
//! every kernel must produce element-identical output to the scalar
//! two-pointer merge on arbitrary sorted, deduplicated inputs.

use ego_graph::setops::{
    self, gallop_count, gallop_into, merge_count, merge_into, NodeBitset, SetOpStats,
};
use ego_graph::NodeId;
use proptest::prelude::*;

/// A sorted, deduplicated node list with ids drawn from a universe small
/// enough that overlaps are common.
fn arb_sorted(max_len: usize, universe: u32) -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(0u32..universe, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(NodeId).collect()
    })
}

/// Reference implementation: the plain two-pointer merge.
fn reference(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    merge_into(a, b, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gallop_matches_merge(
        a in arb_sorted(64, 512),
        b in arb_sorted(64, 512),
    ) {
        let expect = reference(&a, &b);
        let mut out = Vec::new();
        gallop_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
        out.clear();
        gallop_into(&b, &a, &mut out);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(gallop_count(&a, &b), expect.len());
        prop_assert_eq!(merge_count(&a, &b), expect.len());
    }

    #[test]
    fn gallop_matches_merge_on_skewed_sizes(
        a in arb_sorted(8, 4096),
        b in arb_sorted(512, 4096),
    ) {
        let expect = reference(&a, &b);
        let mut out = Vec::new();
        gallop_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
    }

    #[test]
    fn bitset_matches_merge(
        a in arb_sorted(64, 512),
        b in arb_sorted(64, 512),
    ) {
        let expect = reference(&a, &b);
        let bits = NodeBitset::from_sorted(512, &b);
        let mut out = Vec::new();
        bits.filter_into(&a, &mut out);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(bits.count_in(&a), expect.len());

        // retain_sorted filters in place and reports removals.
        let mut v = a.clone();
        let removed = bits.retain_sorted(&mut v);
        prop_assert_eq!(&v, &expect);
        prop_assert_eq!(removed, a.len() - expect.len());
    }

    #[test]
    fn bitset_membership_agrees_with_list(
        b in arb_sorted(64, 512),
        probe in 0u32..600,
    ) {
        // Probes beyond the universe must report absent, not panic.
        let bits = NodeBitset::from_sorted(512, &b);
        prop_assert_eq!(bits.contains(NodeId(probe)), b.contains(&NodeId(probe)));
    }

    #[test]
    fn adaptive_dispatch_matches_merge(
        a in arb_sorted(128, 1024),
        b in arb_sorted(128, 1024),
    ) {
        // The default kernel is adaptive unless EGO_SETOPS overrides it;
        // whatever is configured must agree with the reference merge.
        let expect = reference(&a, &b);
        let mut out = Vec::new();
        let mut stats = SetOpStats::default();
        setops::intersect_into(&a, &b, &mut out, &mut stats);
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(setops::intersect_count(&a, &b, &mut stats), expect.len());
        prop_assert_eq!(stats.total_calls(), 2);
    }

    #[test]
    fn intersection_laws(
        a in arb_sorted(64, 256),
        b in arb_sorted(64, 256),
    ) {
        // Commutativity, idempotence, and annihilation by the empty set —
        // checked through the dispatcher so any kernel violating them is
        // caught regardless of EGO_SETOPS.
        let mut stats = SetOpStats::default();
        let (mut ab, mut ba, mut aa, mut ae) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        setops::intersect_into(&a, &b, &mut ab, &mut stats);
        setops::intersect_into(&b, &a, &mut ba, &mut stats);
        setops::intersect_into(&a, &a, &mut aa, &mut stats);
        setops::intersect_into(&a, &[], &mut ae, &mut stats);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&aa, &a);
        prop_assert!(ae.is_empty());
        prop_assert!(ab.windows(2).all(|w| w[0] < w[1]), "output stays sorted+dedup");
    }
}
