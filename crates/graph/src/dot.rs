//! Graphviz DOT export, for eyeballing small graphs and census results.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::fmt::Write as _;

/// Color palette cycled by label.
const COLORS: &[&str] = &[
    "lightblue",
    "lightsalmon",
    "palegreen",
    "plum",
    "khaki",
    "lightgray",
];

/// Render `g` as DOT. Node labels show `id:label`; an optional
/// `highlight` function can annotate nodes (e.g. census counts shown as
/// a second line and bolder peripheries for non-zero counts).
pub fn to_dot(g: &Graph, highlight: Option<&dyn Fn(NodeId) -> Option<String>>) -> String {
    let mut out = String::new();
    let (gtype, arrow) = if g.is_directed() {
        ("digraph", "->")
    } else {
        ("graph", "--")
    };
    let _ = writeln!(out, "{gtype} egocensus {{");
    let _ = writeln!(out, "  node [style=filled];");
    for n in g.node_ids() {
        let l = g.label(n);
        let color = COLORS[l.index() % COLORS.len()];
        let extra = highlight.and_then(|f| f(n));
        let label = match &extra {
            Some(e) => format!("{n}:{l}\\n{e}"),
            None => format!("{n}:{l}"),
        };
        let penwidth = if extra.is_some() { 2.0 } else { 1.0 };
        let _ = writeln!(
            out,
            "  n{n} [label=\"{label}\", fillcolor={color}, penwidth={penwidth}];"
        );
    }
    for (a, b) in g.edges() {
        let _ = writeln!(out, "  n{a} {arrow} n{b};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::Label;

    fn small() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.build()
    }

    #[test]
    fn undirected_dot_structure() {
        let dot = to_dot(&small(), None);
        assert!(dot.starts_with("graph egocensus {"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=lightsalmon"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn directed_uses_arrows() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(1), NodeId(0));
        let dot = to_dot(&b.build(), None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n1 -> n0;"));
    }

    #[test]
    fn highlight_annotations() {
        let g = small();
        let f = |n: NodeId| {
            if n.0 == 1 {
                Some("count=7".to_string())
            } else {
                None
            }
        };
        let dot = to_dot(&g, Some(&f));
        assert!(dot.contains("count=7"));
        assert!(dot.contains("penwidth=2"));
    }
}
