//! Graph storage backends: the [`GraphStore`] trait and the on-disk
//! binary CSR format.
//!
//! All adjacency and label access in [`Graph`](crate::Graph) is routed
//! through [`GraphStore`], which has two implementations:
//!
//! * [`VecStore`] — the original heap-owned `Vec` arrays, produced by
//!   [`crate::GraphBuilder::build`].
//! * [`MmapStore`] — a read-only view over the binary `.egb` file format
//!   defined here, memory-mapped so a graph loads in O(1) regardless of
//!   size and multiple processes censusing the same file share one
//!   physical copy of the adjacency arrays through the page cache.
//!
//! # Binary layout (`.egb`, version 1)
//!
//! Little-endian throughout. The file is a 4096-byte header page followed
//! by eight page-aligned sections:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "EGOCSR1\0"
//! 8       4     version (u32, = 1)
//! 12      4     flags   (u32, bit 0 = directed)
//! 16      8     num_nodes (u64)
//! 24      8     num_edges (u64, distinct edges)
//! 32      4     num_labels (u32, fits u16)
//! 36      4     section count (u32, = 8)
//! 40      8     fingerprint (u64, memoized census-cache key)
//! 48      128   section table: 8 x (byte offset u64, byte length u64)
//! ...     pad   zero padding to 4096
//! ```
//!
//! Sections, in table order: node labels (`u16` × n), undirected offsets
//! (`u32` × n+1), undirected targets (`u32` × und_offsets[n]), out
//! offsets, out targets, in offsets, in targets (all zero-length for
//! undirected graphs), and a serialized attribute blob. Every non-empty
//! section starts on a 4096-byte boundary, so mapped slices are always
//! aligned for their element type and adjacency pages never straddle a
//! section boundary.
//!
//! Opening validates the header, section table, and the section sizes
//! implied by the offset arrays' last entries, and deserializes the
//! (sparse, typically small) attribute blob; it does **not** touch the
//! adjacency sections, so open cost is independent of graph size. The
//! offset arrays themselves are trusted to be monotone — a corrupted
//! file can make slicing panic (safe, no UB), and
//! [`Graph::verify_fingerprint`](crate::Graph::verify_fingerprint)
//! (run by `egocensus convert` after writing) checks full content
//! integrity against the header fingerprint.

use crate::attrs::{AttrStore, AttrValue, EdgeAttrStore};
use crate::graph::Graph;
use crate::ids::{Label, NodeId};
use crate::io::IoError;
use std::io::Write;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// File extension that selects the binary mmap backend in
/// [`crate::io::load_path`].
pub const BINARY_EXTENSION: &str = "egb";

const MAGIC: [u8; 8] = *b"EGOCSR1\0";
const VERSION: u32 = 1;
const PAGE: usize = 4096;
const NUM_SECTIONS: usize = 8;

// Section table indices.
const SEC_LABELS: usize = 0;
const SEC_UND_OFF: usize = 1;
const SEC_UND_TGT: usize = 2;
const SEC_OUT_OFF: usize = 3;
const SEC_OUT_TGT: usize = 4;
const SEC_IN_OFF: usize = 5;
const SEC_IN_TGT: usize = 6;
const SEC_ATTRS: usize = 7;

/// Read-only access to the CSR sections of a graph.
///
/// Contract: `labels().len()` is the node count `n`; `und_offsets()` has
/// `n + 1` monotone entries with `und_offsets()[0] == 0` and
/// `und_offsets()[n] == und_targets().len()`; each window
/// `und_targets()[off[i]..off[i+1]]` is the sorted, deduplicated
/// undirected neighbor list of node `i`. For directed graphs the
/// out/in arrays satisfy the same invariants; for undirected graphs all
/// four are empty and callers fall back to the undirected view.
pub trait GraphStore: Send + Sync {
    /// Per-node labels, indexed by node id.
    fn labels(&self) -> &[Label];
    /// Undirected-view CSR offsets, length `n + 1`.
    fn und_offsets(&self) -> &[u32];
    /// Undirected-view neighbor lists, sorted per node.
    fn und_targets(&self) -> &[NodeId];
    /// Out-edge CSR offsets (empty for undirected graphs).
    fn out_offsets(&self) -> &[u32];
    /// Out-neighbor lists (empty for undirected graphs).
    fn out_targets(&self) -> &[NodeId];
    /// In-edge CSR offsets (empty for undirected graphs).
    fn in_offsets(&self) -> &[u32];
    /// In-neighbor lists (empty for undirected graphs).
    fn in_targets(&self) -> &[NodeId];
    /// Short backend name for stats/debugging (`"mem"` or `"mmap"`).
    fn kind(&self) -> &'static str;
}

/// Heap-owned storage: the backend every [`crate::GraphBuilder`] produces.
#[derive(Clone, Debug, Default)]
pub struct VecStore {
    pub(crate) labels: Vec<Label>,
    pub(crate) und_offsets: Vec<u32>,
    pub(crate) und_targets: Vec<NodeId>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_targets: Vec<NodeId>,
}

impl GraphStore for VecStore {
    #[inline(always)]
    fn labels(&self) -> &[Label] {
        &self.labels
    }
    #[inline(always)]
    fn und_offsets(&self) -> &[u32] {
        &self.und_offsets
    }
    #[inline(always)]
    fn und_targets(&self) -> &[NodeId] {
        &self.und_targets
    }
    #[inline(always)]
    fn out_offsets(&self) -> &[u32] {
        &self.out_offsets
    }
    #[inline(always)]
    fn out_targets(&self) -> &[NodeId] {
        &self.out_targets
    }
    #[inline(always)]
    fn in_offsets(&self) -> &[u32] {
        &self.in_offsets
    }
    #[inline(always)]
    fn in_targets(&self) -> &[NodeId] {
        &self.in_targets
    }
    fn kind(&self) -> &'static str {
        "mem"
    }
}

/// The two storage backends a [`Graph`] can sit on. Dispatch is a
/// two-way match (statically resolved per arm), so the hot accessors
/// stay branch-predictable instead of paying a vtable load per call.
#[derive(Clone)]
pub(crate) enum StoreBackend {
    Mem(VecStore),
    Mmap(Arc<MmapStore>),
}

impl std::fmt::Debug for StoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreBackend::Mem(s) => write!(
                f,
                "VecStore {{ nodes: {}, und_targets: {} }}",
                s.labels.len(),
                s.und_targets.len()
            ),
            StoreBackend::Mmap(s) => write!(
                f,
                "MmapStore {{ nodes: {}, bytes: {}, mapped: {} }}",
                s.labels().len(),
                s.buf.as_slice().len(),
                s.buf.is_mapped()
            ),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $method:ident) => {
        match $self {
            StoreBackend::Mem(s) => GraphStore::$method(s),
            StoreBackend::Mmap(s) => GraphStore::$method(&**s),
        }
    };
}

impl StoreBackend {
    #[inline(always)]
    pub(crate) fn labels(&self) -> &[Label] {
        dispatch!(self, labels)
    }
    #[inline(always)]
    pub(crate) fn und_offsets(&self) -> &[u32] {
        dispatch!(self, und_offsets)
    }
    #[inline(always)]
    pub(crate) fn und_targets(&self) -> &[NodeId] {
        dispatch!(self, und_targets)
    }
    #[inline(always)]
    pub(crate) fn out_offsets(&self) -> &[u32] {
        dispatch!(self, out_offsets)
    }
    #[inline(always)]
    pub(crate) fn out_targets(&self) -> &[NodeId] {
        dispatch!(self, out_targets)
    }
    #[inline(always)]
    pub(crate) fn in_offsets(&self) -> &[u32] {
        dispatch!(self, in_offsets)
    }
    #[inline(always)]
    pub(crate) fn in_targets(&self) -> &[NodeId] {
        dispatch!(self, in_targets)
    }
    #[inline]
    pub(crate) fn kind(&self) -> &'static str {
        dispatch!(self, kind)
    }
}

// ---------------------------------------------------------------------------
// Memory mapping

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An owned read-only `mmap` of a whole file. Unmapped on drop.
#[cfg(unix)]
struct Mapping {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl Mapping {
    /// Map `len` bytes of `file` read-only and `MAP_SHARED`, so every
    /// process mapping the same file shares one set of physical pages.
    fn new(file: &std::fs::File, len: usize) -> std::io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    fn as_slice(&self) -> &[u8] {
        // Safety: the region [ptr, ptr + len) stays mapped PROT_READ for
        // the lifetime of `self`; munmap happens only in Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

// Safety: the mapping is immutable (PROT_READ) and owned; concurrent
// reads from multiple threads are fine. Mutating the underlying file
// while mapped is outside the API's contract (same as any mmap user).
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

/// File bytes with 8-byte base alignment: an actual `mmap` when the
/// platform provides one, or an aligned heap buffer otherwise (and for
/// [`read_binary`]). Section offsets are multiples of [`PAGE`], so any
/// base alignment ≥ 8 keeps every typed section slice aligned.
enum MapBuf {
    #[cfg(unix)]
    Mmap(Mapping),
    Heap {
        buf: Vec<u64>,
        len: usize,
    },
}

impl MapBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MapBuf::Mmap(m) => m.as_slice(),
            MapBuf::Heap { buf, len } => {
                // Safety: buf holds ceil(len / 8) u64s, i.e. at least
                // `len` initialized bytes at an 8-aligned address.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            MapBuf::Mmap(_) => true,
            MapBuf::Heap { .. } => false,
        }
    }

    fn read_from(path: &Path) -> Result<MapBuf, IoError> {
        use std::io::Read as _;
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(IoError::Format("file too large for address space".into()));
        }
        let len = len as usize;
        let mut buf = vec![0u64; len.div_ceil(8)];
        // Safety: viewing the u64 buffer as bytes for reading; every
        // byte pattern is a valid u64.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(MapBuf::Heap { buf, len })
    }
}

/// Reinterpret an aligned byte slice as a slice of plain CSR elements.
///
/// Only instantiated at `u32`, `NodeId` (`repr(transparent)` over `u32`)
/// and `Label` (`repr(transparent)` over `u16`): no padding, every bit
/// pattern valid. Alignment and size divisibility hold by construction
/// (page-aligned sections, validated byte lengths) and are debug-checked.
fn cast_slice<T>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len() % size, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
    // Safety: see above; length and alignment checked by the caller's
    // validation pass.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
}

/// Read-only mmap-backed storage over the `.egb` binary format.
pub struct MmapStore {
    buf: MapBuf,
    labels: Range<usize>,
    und_offsets: Range<usize>,
    und_targets: Range<usize>,
    out_offsets: Range<usize>,
    out_targets: Range<usize>,
    in_offsets: Range<usize>,
    in_targets: Range<usize>,
}

impl MmapStore {
    #[inline(always)]
    fn bytes(&self, r: &Range<usize>) -> &[u8] {
        &self.buf.as_slice()[r.start..r.end]
    }
}

impl GraphStore for MmapStore {
    #[inline(always)]
    fn labels(&self) -> &[Label] {
        cast_slice(self.bytes(&self.labels))
    }
    #[inline(always)]
    fn und_offsets(&self) -> &[u32] {
        cast_slice(self.bytes(&self.und_offsets))
    }
    #[inline(always)]
    fn und_targets(&self) -> &[NodeId] {
        cast_slice(self.bytes(&self.und_targets))
    }
    #[inline(always)]
    fn out_offsets(&self) -> &[u32] {
        cast_slice(self.bytes(&self.out_offsets))
    }
    #[inline(always)]
    fn out_targets(&self) -> &[NodeId] {
        cast_slice(self.bytes(&self.out_targets))
    }
    #[inline(always)]
    fn in_offsets(&self) -> &[u32] {
        cast_slice(self.bytes(&self.in_offsets))
    }
    #[inline(always)]
    fn in_targets(&self) -> &[NodeId] {
        cast_slice(self.bytes(&self.in_targets))
    }
    fn kind(&self) -> &'static str {
        "mmap"
    }
}

// ---------------------------------------------------------------------------
// Writing

fn slice_bytes<T>(s: &[T]) -> &[u8] {
    // Safety: only used on u16/u32-shaped plain types (see cast_slice).
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> std::io::Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| bad_data("attribute name or string value longer than u32"))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &AttrValue) -> std::io::Result<()> {
    match v {
        AttrValue::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        AttrValue::Float(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        AttrValue::Str(s) => {
            out.push(2);
            put_str(out, s)?;
        }
        AttrValue::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
    }
    Ok(())
}

fn bad_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Serialize both attribute stores into a deterministic byte blob
/// (columns sorted by name, entries by key), so converting the same
/// graph always yields byte-identical files.
fn encode_attrs(g: &Graph) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::new();

    let mut names: Vec<&str> = g.node_attrs().attribute_names().collect();
    names.sort_unstable();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        put_str(&mut out, name)?;
        let mut entries: Vec<(u32, &AttrValue)> =
            g.node_attrs().column(name).map(|(n, v)| (n.0, v)).collect();
        entries.sort_unstable_by_key(|(n, _)| *n);
        let count = u32::try_from(entries.len())
            .map_err(|_| bad_data("too many node attribute entries"))?;
        put_u32(&mut out, count);
        for (node, value) in entries {
            put_u32(&mut out, node);
            put_value(&mut out, value)?;
        }
    }

    let mut enames: Vec<&str> = g.edge_attrs().attribute_names().collect();
    enames.sort_unstable();
    put_u32(&mut out, enames.len() as u32);
    for name in enames {
        put_str(&mut out, name)?;
        let mut entries: Vec<((u32, u32), &AttrValue)> = g.edge_attrs().column(name).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        let count = u32::try_from(entries.len())
            .map_err(|_| bad_data("too many edge attribute entries"))?;
        put_u32(&mut out, count);
        for ((a, b), value) in entries {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
            put_value(&mut out, value)?;
        }
    }
    Ok(out)
}

/// Serialize `g` into the binary `.egb` format.
///
/// Works over either backend (so `convert` can also rewrite binary
/// files). Refused on big-endian targets: the format is little-endian
/// and the mmap reader casts sections in place.
pub fn write_binary<W: Write>(g: &Graph, w: &mut W) -> std::io::Result<()> {
    if cfg!(target_endian = "big") {
        return Err(bad_data(
            "binary graph format requires a little-endian target",
        ));
    }
    let attrs = encode_attrs(g)?;
    let sections: [&[u8]; NUM_SECTIONS] = [
        slice_bytes(g.store().labels()),
        slice_bytes(g.store().und_offsets()),
        slice_bytes(g.store().und_targets()),
        slice_bytes(g.store().out_offsets()),
        slice_bytes(g.store().out_targets()),
        slice_bytes(g.store().in_offsets()),
        slice_bytes(g.store().in_targets()),
        &attrs,
    ];

    // Lay out the section table: each non-empty section page-aligned.
    let mut table = [(0u64, 0u64); NUM_SECTIONS];
    let mut cursor = PAGE;
    for (i, sec) in sections.iter().enumerate() {
        if sec.is_empty() {
            continue;
        }
        table[i] = (cursor as u64, sec.len() as u64);
        cursor += sec.len().next_multiple_of(PAGE);
    }

    let mut header = Vec::with_capacity(PAGE);
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, VERSION);
    put_u32(&mut header, g.is_directed() as u32);
    put_u64(&mut header, g.num_nodes() as u64);
    put_u64(&mut header, g.num_edges() as u64);
    put_u32(&mut header, g.num_labels() as u32);
    put_u32(&mut header, NUM_SECTIONS as u32);
    put_u64(&mut header, g.fingerprint());
    for (off, len) in table {
        put_u64(&mut header, off);
        put_u64(&mut header, len);
    }
    header.resize(PAGE, 0);
    w.write_all(&header)?;

    let pad = [0u8; 512];
    for sec in sections {
        if sec.is_empty() {
            continue;
        }
        w.write_all(sec)?;
        let mut rem = sec.len().next_multiple_of(PAGE) - sec.len();
        while rem > 0 {
            let chunk = rem.min(pad.len());
            w.write_all(&pad[..chunk])?;
            rem -= chunk;
        }
    }
    Ok(())
}

/// Write `g` to `path` in the binary format (buffered).
pub fn save_binary(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_binary(g, &mut w)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Opening

fn fmt_err(msg: impl Into<String>) -> IoError {
    IoError::Format(msg.into())
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

struct Header {
    directed: bool,
    num_nodes: usize,
    num_edges: usize,
    num_labels: u16,
    fingerprint: u64,
    sections: [Range<usize>; NUM_SECTIONS],
}

fn parse_header(bytes: &[u8]) -> Result<Header, IoError> {
    if cfg!(target_endian = "big") {
        return Err(fmt_err(
            "binary graph format requires a little-endian target",
        ));
    }
    if bytes.len() < PAGE {
        return Err(fmt_err("file too small for header page"));
    }
    if bytes[..8] != MAGIC {
        return Err(fmt_err("bad magic (not an egocensus binary graph)"));
    }
    let version = get_u32(bytes, 8);
    if version != VERSION {
        return Err(fmt_err(format!("unsupported format version {version}")));
    }
    let flags = get_u32(bytes, 12);
    if flags > 1 {
        return Err(fmt_err(format!("unknown header flags {flags:#x}")));
    }
    let num_nodes = get_u64(bytes, 16);
    if num_nodes > u32::MAX as u64 {
        return Err(fmt_err("node count exceeds the u32 id space"));
    }
    let num_edges = get_u64(bytes, 24);
    let num_labels = get_u32(bytes, 32);
    if num_labels > u16::MAX as u32 {
        return Err(fmt_err("label count exceeds the u16 label space"));
    }
    if get_u32(bytes, 36) != NUM_SECTIONS as u32 {
        return Err(fmt_err("unexpected section count"));
    }
    let fingerprint = get_u64(bytes, 40);

    let mut sections: [Range<usize>; NUM_SECTIONS] = Default::default();
    for (i, slot) in sections.iter_mut().enumerate() {
        let off = get_u64(bytes, 48 + i * 16);
        let len = get_u64(bytes, 48 + i * 16 + 8);
        let end = off
            .checked_add(len)
            .ok_or_else(|| fmt_err(format!("section {i} length overflows")))?;
        if end > bytes.len() as u64 {
            return Err(fmt_err(format!("section {i} extends past end of file")));
        }
        if len > 0 && !(off as usize).is_multiple_of(PAGE) {
            return Err(fmt_err(format!("section {i} is not page-aligned")));
        }
        *slot = off as usize..end as usize;
    }

    Ok(Header {
        directed: flags & 1 != 0,
        num_nodes: num_nodes as usize,
        num_edges: num_edges as usize,
        num_labels: num_labels as u16,
        fingerprint,
        sections,
    })
}

/// Check that an offsets/targets section pair has the sizes the header
/// implies: `n + 1` offsets whose last entry matches the target count.
fn check_csr_pair(
    bytes: &[u8],
    offsets: &Range<usize>,
    targets: &Range<usize>,
    n: usize,
    what: &str,
) -> Result<(), IoError> {
    if offsets.len() != (n + 1) * 4 {
        return Err(fmt_err(format!(
            "mis-sized section: {what} offsets hold {} bytes, expected {}",
            offsets.len(),
            (n + 1) * 4
        )));
    }
    let first = get_u32(bytes, offsets.start);
    if first != 0 {
        return Err(fmt_err(format!("{what} offsets do not start at 0")));
    }
    let last = get_u32(bytes, offsets.end - 4) as usize;
    if targets.len() != last * 4 {
        return Err(fmt_err(format!(
            "mis-sized section: {what} targets hold {} bytes, offsets imply {}",
            targets.len(),
            last * 4
        )));
    }
    Ok(())
}

fn open_buf(buf: MapBuf) -> Result<Graph, IoError> {
    let bytes = buf.as_slice();
    let h = parse_header(bytes)?;
    let n = h.num_nodes;
    let s = &h.sections;

    if s[SEC_LABELS].len() != n * 2 {
        return Err(fmt_err(format!(
            "mis-sized section: labels hold {} bytes, expected {}",
            s[SEC_LABELS].len(),
            n * 2
        )));
    }
    check_csr_pair(bytes, &s[SEC_UND_OFF], &s[SEC_UND_TGT], n, "undirected")?;
    if h.directed {
        check_csr_pair(bytes, &s[SEC_OUT_OFF], &s[SEC_OUT_TGT], n, "out")?;
        check_csr_pair(bytes, &s[SEC_IN_OFF], &s[SEC_IN_TGT], n, "in")?;
    } else {
        for i in [SEC_OUT_OFF, SEC_OUT_TGT, SEC_IN_OFF, SEC_IN_TGT] {
            if !s[i].is_empty() {
                return Err(fmt_err(
                    "directed sections present in an undirected graph file",
                ));
            }
        }
    }

    let (node_attrs, edge_attrs) =
        decode_attrs(&bytes[s[SEC_ATTRS].clone()], h.directed).map_err(fmt_err)?;

    let store = MmapStore {
        labels: s[SEC_LABELS].clone(),
        und_offsets: s[SEC_UND_OFF].clone(),
        und_targets: s[SEC_UND_TGT].clone(),
        out_offsets: s[SEC_OUT_OFF].clone(),
        out_targets: s[SEC_OUT_TGT].clone(),
        in_offsets: s[SEC_IN_OFF].clone(),
        in_targets: s[SEC_IN_TGT].clone(),
        buf,
    };
    Ok(Graph::from_parts(
        h.directed,
        h.num_labels,
        h.num_edges,
        StoreBackend::Mmap(Arc::new(store)),
        node_attrs,
        edge_attrs,
        h.fingerprint,
    ))
}

/// Open a binary graph file through the mmap backend.
///
/// Cost is O(header + attributes): adjacency pages fault in lazily as
/// the census touches them, and `MAP_SHARED` + `PROT_READ` means every
/// process serving the same file shares one physical copy. Falls back
/// to an aligned heap read where mmap is unavailable or fails.
pub fn open_binary(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    #[cfg(unix)]
    {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len <= usize::MAX as u64 {
            if let Ok(mapping) = Mapping::new(&file, len as usize) {
                return open_buf(MapBuf::Mmap(mapping));
            }
        }
        // mmap failed (e.g. a filesystem without mmap support): fall
        // through to the heap path below.
    }
    read_binary(path)
}

/// Read a binary graph file fully into (aligned) heap memory.
///
/// Same format checks as [`open_binary`] without the shared mapping —
/// useful when the file lives on a filesystem that does not support
/// mmap, and as the portable fallback.
pub fn read_binary(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    open_buf(MapBuf::read_from(path.as_ref())?)
}

// ---------------------------------------------------------------------------
// Attribute blob decoding

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("attribute blob truncated")?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "attribute string is not UTF-8".into())
    }

    fn value(&mut self) -> Result<AttrValue, String> {
        Ok(match self.u8()? {
            0 => AttrValue::Int(self.u64()? as i64),
            1 => AttrValue::Float(f64::from_bits(self.u64()?)),
            2 => AttrValue::Str(self.str()?),
            3 => AttrValue::Bool(self.u8()? != 0),
            tag => return Err(format!("unknown attribute value tag {tag}")),
        })
    }
}

fn decode_attrs(blob: &[u8], directed: bool) -> Result<(AttrStore, EdgeAttrStore), String> {
    let mut node_attrs = AttrStore::new();
    let mut edge_attrs = EdgeAttrStore::new(directed);
    if blob.is_empty() {
        return Ok((node_attrs, edge_attrs));
    }
    let mut c = Cursor { bytes: blob, at: 0 };

    let ncols = c.u32()?;
    for _ in 0..ncols {
        let name = c.str()?;
        let count = c.u32()?;
        for _ in 0..count {
            let node = NodeId(c.u32()?);
            let value = c.value()?;
            node_attrs.set(node, &name, value);
        }
    }
    let ecols = c.u32()?;
    for _ in 0..ecols {
        let name = c.str()?;
        let count = c.u32()?;
        for _ in 0..count {
            let a = NodeId(c.u32()?);
            let b = NodeId(c.u32()?);
            let value = c.value()?;
            edge_attrs.set(a, b, &name, value);
        }
    }
    if c.at != blob.len() {
        return Err("trailing bytes after attribute blob".into());
    }
    Ok((node_attrs, edge_attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "egocensus_store_{}_{seq}_{tag}.egb",
            std::process::id()
        ))
    }

    fn sample() -> Graph {
        let mut b = GraphBuilder::undirected();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(0));
        let d = b.add_node(Label(2));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.set_node_attr(a, "name", "alice in wonderland");
        b.set_node_attr(a, "age", 33i64);
        b.set_node_attr(d, "score", 1.5f64);
        b.set_node_attr(d, "vip", true);
        b.set_edge_attr(a, c, "w", 0.5f64);
        b.build()
    }

    fn to_bytes(g: &Graph) -> Vec<u8> {
        let mut out = Vec::new();
        write_binary(g, &mut out).unwrap();
        out
    }

    fn open_bytes(bytes: &[u8], tag: &str) -> Result<Graph, IoError> {
        let path = temp_path(tag);
        std::fs::write(&path, bytes).unwrap();
        let g = open_binary(&path);
        std::fs::remove_file(&path).ok();
        g
    }

    fn assert_graphs_equal(a: &Graph, b: &Graph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.is_directed(), b.is_directed());
        assert_eq!(a.num_labels(), b.num_labels());
        assert_eq!(a.fingerprint(), b.fingerprint());
        for n in a.node_ids() {
            assert_eq!(a.label(n), b.label(n));
            assert_eq!(a.neighbors(n), b.neighbors(n));
            if a.is_directed() {
                assert_eq!(a.out_neighbors(n), b.out_neighbors(n));
                assert_eq!(a.in_neighbors(n), b.in_neighbors(n));
            }
        }
        assert!(b.verify_fingerprint(), "content hash diverged from header");
    }

    #[test]
    fn binary_roundtrip_undirected_with_attrs() {
        let g = sample();
        let g2 = open_bytes(&to_bytes(&g), "rt_und").unwrap();
        assert_eq!(g2.storage_kind(), "mmap");
        assert_graphs_equal(&g, &g2);
        assert_eq!(
            g2.node_attr(NodeId(0), "name"),
            Some(&AttrValue::Str("alice in wonderland".into()))
        );
        assert_eq!(
            g2.edge_attr(NodeId(1), NodeId(0), "w"),
            Some(&AttrValue::Float(0.5))
        );
    }

    #[test]
    fn binary_roundtrip_directed() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(3), NodeId(2));
        b.set_edge_attr(NodeId(2), NodeId(0), "w", 7i64);
        let g = b.build();
        let g2 = open_bytes(&to_bytes(&g), "rt_dir").unwrap();
        assert_graphs_equal(&g, &g2);
        assert_eq!(
            g2.edge_attr(NodeId(2), NodeId(0), "w"),
            Some(&AttrValue::Int(7))
        );
        assert_eq!(g2.edge_attr(NodeId(0), NodeId(2), "w"), None);
    }

    #[test]
    fn binary_roundtrip_empty_and_isolated() {
        let g = GraphBuilder::undirected().build();
        let g2 = open_bytes(&to_bytes(&g), "rt_empty").unwrap();
        assert_graphs_equal(&g, &g2);

        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(3));
        let g = b.build();
        let g2 = open_bytes(&to_bytes(&g), "rt_isolated").unwrap();
        assert_graphs_equal(&g, &g2);
    }

    #[test]
    fn read_binary_heap_fallback_matches_mmap() {
        let g = sample();
        let path = temp_path("heap");
        std::fs::write(&path, to_bytes(&g)).unwrap();
        let heap = read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_graphs_equal(&g, &heap);
    }

    #[test]
    fn writing_is_deterministic() {
        let a = to_bytes(&sample());
        let b = to_bytes(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_truncated_header() {
        let bytes = to_bytes(&sample());
        let err = open_bytes(&bytes[..10], "trunc").unwrap_err();
        assert!(err.to_string().contains("too small"), "{err}");
    }

    #[test]
    fn malformed_bad_magic() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        let err = open_bytes(&bytes, "magic").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn malformed_bad_version() {
        let mut bytes = to_bytes(&sample());
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        let err = open_bytes(&bytes, "version").unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn malformed_missized_section() {
        // Shrink the labels section length in the table.
        let mut bytes = to_bytes(&sample());
        let len_at = 48 + SEC_LABELS * 16 + 8;
        bytes[len_at..len_at + 8].copy_from_slice(&2u64.to_le_bytes());
        let err = open_bytes(&bytes, "missized").unwrap_err();
        assert!(err.to_string().contains("mis-sized"), "{err}");
    }

    #[test]
    fn malformed_targets_disagree_with_offsets() {
        // Claim one fewer undirected-target byte row than offsets imply.
        let mut bytes = to_bytes(&sample());
        let len_at = 48 + SEC_UND_TGT * 16 + 8;
        let old = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().unwrap());
        bytes[len_at..len_at + 8].copy_from_slice(&(old - 4).to_le_bytes());
        let err = open_bytes(&bytes, "tgt").unwrap_err();
        assert!(err.to_string().contains("mis-sized"), "{err}");
    }

    #[test]
    fn malformed_section_past_eof() {
        let mut bytes = to_bytes(&sample());
        let off_at = 48 + SEC_ATTRS * 16;
        bytes[off_at..off_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = open_bytes(&bytes, "eof").unwrap_err();
        assert!(err.to_string().contains("past end"), "{err}");
    }

    #[test]
    fn malformed_unaligned_section() {
        let mut bytes = to_bytes(&sample());
        let off_at = 48 + SEC_UND_OFF * 16;
        let old = u64::from_le_bytes(bytes[off_at..off_at + 8].try_into().unwrap());
        bytes[off_at..off_at + 8].copy_from_slice(&(old + 2).to_le_bytes());
        let err = open_bytes(&bytes, "align").unwrap_err();
        assert!(err.to_string().contains("page-aligned"), "{err}");
    }

    #[test]
    fn malformed_attr_blob() {
        let g = sample();
        let mut bytes = to_bytes(&g);
        // Corrupt the first attribute column's entry count to a huge value.
        let attrs_off = u64::from_le_bytes(
            bytes[48 + SEC_ATTRS * 16..48 + SEC_ATTRS * 16 + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        bytes[attrs_off..attrs_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = open_bytes(&bytes, "attrs").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn tampered_adjacency_fails_fingerprint_verification() {
        let g = sample();
        let mut bytes = to_bytes(&g);
        let tgt_off = u64::from_le_bytes(
            bytes[48 + SEC_UND_TGT * 16..48 + SEC_UND_TGT * 16 + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        // Swap a neighbor id without touching the header fingerprint.
        bytes[tgt_off] ^= 1;
        let g2 = open_bytes(&bytes, "tamper").unwrap();
        assert!(!g2.verify_fingerprint());
    }
}
