//! Attribute storage for nodes and edges.
//!
//! The data model (Section II) allows arbitrary attribute-value pairs on
//! both nodes and edges, with attribute references interpreted dynamically
//! ("the list of attributes does not have to be pre-specified"). We store
//! attributes sparsely: most algorithmic work touches only the label, so
//! attribute lookups happen during predicate evaluation only.

use crate::hash::FastHashMap;
use crate::ids::NodeId;
use std::fmt;

/// A dynamically-typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// Numeric view (ints widen to float) for comparison purposes.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Compare two values for equality with Int/Float coercion.
    pub fn loosely_eq(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => a == b,
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Total order for comparison predicates; `None` if incomparable types.
    pub fn partial_cmp_loose(&self, other: &AttrValue) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Sparse attribute store: attribute name -> (node -> value).
///
/// Organized column-wise so that evaluating one predicate over many nodes
/// touches a single map, and nodes without the attribute cost nothing.
#[derive(Clone, Debug, Default)]
pub struct AttrStore {
    columns: FastHashMap<String, FastHashMap<u32, AttrValue>>,
}

impl AttrStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `name` = `value` for `node`.
    pub fn set(&mut self, node: NodeId, name: &str, value: AttrValue) {
        self.columns
            .entry(name.to_string())
            .or_default()
            .insert(node.0, value);
    }

    /// Get the value of `name` for `node`, if present.
    pub fn get(&self, node: NodeId, name: &str) -> Option<&AttrValue> {
        self.columns.get(name)?.get(&node.0)
    }

    /// Iterate all `(node, value)` pairs of one attribute column.
    pub fn column(&self, name: &str) -> impl Iterator<Item = (NodeId, &AttrValue)> + '_ {
        self.columns
            .get(name)
            .into_iter()
            .flat_map(|col| col.iter().map(|(&n, v)| (NodeId(n), v)))
    }

    /// Names of all attribute columns present.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Number of attribute columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if no attribute has ever been set.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Sparse attribute store for edges, keyed by (source, target) pairs.
///
/// For undirected graphs the key is normalized to (min, max) so lookups
/// succeed from either endpoint.
#[derive(Clone, Debug, Default)]
pub struct EdgeAttrStore {
    columns: FastHashMap<String, FastHashMap<(u32, u32), AttrValue>>,
    directed: bool,
}

impl EdgeAttrStore {
    /// Empty store; `directed` controls key normalization.
    pub fn new(directed: bool) -> Self {
        EdgeAttrStore {
            columns: FastHashMap::default(),
            directed,
        }
    }

    fn key(&self, a: NodeId, b: NodeId) -> (u32, u32) {
        if self.directed || a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// Set `name` = `value` for edge `(a, b)`.
    pub fn set(&mut self, a: NodeId, b: NodeId, name: &str, value: AttrValue) {
        let key = self.key(a, b);
        self.columns
            .entry(name.to_string())
            .or_default()
            .insert(key, value);
    }

    /// Get the value of `name` for edge `(a, b)`, if present.
    pub fn get(&self, a: NodeId, b: NodeId, name: &str) -> Option<&AttrValue> {
        let key = self.key(a, b);
        self.columns.get(name)?.get(&key)
    }

    /// True if no attribute has ever been set.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Names of all edge-attribute columns present.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Drop every entry whose `(source, target)` key fails `keep`, then
    /// drop emptied columns. Used by the builder to discard attributes of
    /// edges that never made it into the graph (self-loops, orphans).
    pub(crate) fn retain_edges(&mut self, mut keep: impl FnMut(u32, u32) -> bool) {
        self.columns.retain(|_, col| {
            col.retain(|&(a, b), _| keep(a, b));
            !col.is_empty()
        });
    }

    /// All `((source, target), value)` entries of one attribute column,
    /// in hash-map (unspecified) order. Keys are normalized as stored.
    pub fn column(&self, name: &str) -> impl Iterator<Item = ((u32, u32), &AttrValue)> {
        self.columns
            .get(name)
            .into_iter()
            .flat_map(|col| col.iter().map(|(k, v)| (*k, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_attr_set_get() {
        let mut s = AttrStore::new();
        s.set(NodeId(3), "age", AttrValue::Int(30));
        s.set(NodeId(3), "name", "carol".into());
        s.set(NodeId(5), "age", AttrValue::Int(40));

        assert_eq!(s.get(NodeId(3), "age"), Some(&AttrValue::Int(30)));
        assert_eq!(
            s.get(NodeId(3), "name"),
            Some(&AttrValue::Str("carol".into()))
        );
        assert_eq!(s.get(NodeId(4), "age"), None);
        assert_eq!(s.get(NodeId(3), "height"), None);
        assert_eq!(s.num_columns(), 2);
    }

    #[test]
    fn column_iteration() {
        let mut s = AttrStore::new();
        s.set(NodeId(0), "x", AttrValue::Int(1));
        s.set(NodeId(1), "x", AttrValue::Int(2));
        let mut got: Vec<_> = s.column("x").map(|(n, v)| (n.0, v.clone())).collect();
        got.sort_by_key(|(n, _)| *n);
        assert_eq!(got, vec![(0, AttrValue::Int(1)), (1, AttrValue::Int(2))]);
        assert_eq!(s.column("missing").count(), 0);
    }

    #[test]
    fn loose_equality_coerces_numerics() {
        assert!(AttrValue::Int(3).loosely_eq(&AttrValue::Float(3.0)));
        assert!(!AttrValue::Int(3).loosely_eq(&AttrValue::Str("3".into())));
        assert!(AttrValue::Str("a".into()).loosely_eq(&AttrValue::Str("a".into())));
        assert!(AttrValue::Bool(true).loosely_eq(&AttrValue::Bool(true)));
        assert!(!AttrValue::Bool(true).loosely_eq(&AttrValue::Int(1)));
    }

    #[test]
    fn loose_comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(
            AttrValue::Int(2).partial_cmp_loose(&AttrValue::Float(3.0)),
            Some(Less)
        );
        assert_eq!(
            AttrValue::Str("b".into()).partial_cmp_loose(&AttrValue::Str("a".into())),
            Some(Greater)
        );
        assert_eq!(
            AttrValue::Str("b".into()).partial_cmp_loose(&AttrValue::Int(1)),
            None
        );
    }

    #[test]
    fn edge_attrs_undirected_normalization() {
        let mut s = EdgeAttrStore::new(false);
        s.set(NodeId(5), NodeId(2), "sign", AttrValue::Int(-1));
        assert_eq!(
            s.get(NodeId(2), NodeId(5), "sign"),
            Some(&AttrValue::Int(-1))
        );
        assert_eq!(
            s.get(NodeId(5), NodeId(2), "sign"),
            Some(&AttrValue::Int(-1))
        );
    }

    #[test]
    fn edge_attrs_directed_no_normalization() {
        let mut s = EdgeAttrStore::new(true);
        s.set(NodeId(5), NodeId(2), "w", AttrValue::Int(7));
        assert_eq!(s.get(NodeId(5), NodeId(2), "w"), Some(&AttrValue::Int(7)));
        assert_eq!(s.get(NodeId(2), NodeId(5), "w"), None);
    }
}
