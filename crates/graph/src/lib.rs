//! # ego-graph
//!
//! In-memory property graph substrate for ego-centric pattern census.
//!
//! The paper's algorithms operate on an adjacency-list graph representation
//! with labeled, attributed nodes and edges. This crate provides:
//!
//! * [`Graph`] — a compressed sparse row (CSR) graph with sorted neighbor
//!   lists, supporting both directed and undirected graphs, O(log d) edge
//!   membership tests, and an *undirected view* used for neighborhood
//!   traversal (the paper's `k`-hop neighborhoods ignore edge direction).
//! * [`GraphBuilder`] — incremental construction, deduplicating parallel
//!   edges and self-loops.
//! * [`NodeProfile`]s — the per-label neighbor-count index used by the
//!   matching algorithms for candidate filtering (Section III-A).
//! * BFS utilities with reusable scratch space ([`bfs::BfsScratch`]) and
//!   bounded-depth traversal, `k`-hop neighborhood extraction, pairwise
//!   neighborhood intersection/union ([`neighborhood`]).
//! * Induced subgraph extraction with id remapping ([`subgraph`]).
//! * A plain-text edge-list serialization format ([`io`]), plus a
//!   page-aligned binary CSR format served through a read-only memory
//!   map ([`store`]) so graphs beyond RAM open in O(1) and processes
//!   share physical pages.
//! * Basic network statistics ([`stats`]).
//!
//! ## Example
//!
//! ```
//! use ego_graph::{GraphBuilder, Label};
//!
//! let mut b = GraphBuilder::undirected();
//! let a = b.add_node(Label(0));
//! let c = b.add_node(Label(1));
//! let d = b.add_node(Label(0));
//! b.add_edge(a, c);
//! b.add_edge(c, d);
//! let g = b.build();
//!
//! assert_eq!(g.num_nodes(), 3);
//! assert!(g.has_undirected_edge(a, c));
//! assert_eq!(g.neighbors(c), &[a, d]);
//! ```

pub mod attrs;
pub mod bfs;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod io;
pub mod neighborhood;
pub mod profile;
pub mod setops;
pub mod stats;
pub mod store;
pub mod subgraph;

pub use attrs::{AttrStore, AttrValue};
pub use builder::GraphBuilder;
pub use graph::Graph;
pub use hash::{FastHashMap, FastHashSet};
pub use ids::{Label, NodeId};
pub use neighborhood::{khop_nodes, khop_nodes_with_dist, NeighborhoodKind};
pub use profile::NodeProfile;
pub use setops::{NodeBitset, SetOpStats, SetOpsTuning};
pub use store::{GraphStore, MmapStore, VecStore};
pub use subgraph::InducedSubgraph;
