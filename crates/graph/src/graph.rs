//! The CSR graph type.

use crate::attrs::{AttrStore, AttrValue, EdgeAttrStore};
use crate::ids::{Label, NodeId};

/// An immutable labeled, attributed graph in compressed-sparse-row form.
///
/// Construction goes through [`crate::GraphBuilder`]. Neighbor lists are
/// sorted by node id, which gives:
///
/// * O(log d) edge-membership tests via binary search,
/// * linear-time sorted-list intersection for the candidate-neighbor
///   operations of the matching algorithm,
/// * deterministic iteration order everywhere.
///
/// Directed graphs keep three adjacency structures: out-neighbors,
/// in-neighbors, and the *undirected view* (union of both, deduplicated).
/// The undirected view is what `k`-hop neighborhoods traverse: the paper
/// defines `S(n, k)` as the subgraph incident on nodes *reachable* from
/// `n`, and its neighborhood semantics ignore edge orientation. For
/// undirected graphs all three views are the same arrays.
#[derive(Clone, Debug)]
pub struct Graph {
    pub(crate) directed: bool,
    pub(crate) labels: Vec<Label>,
    pub(crate) num_labels: u16,

    /// Undirected view: offsets into `und_targets`, length `n + 1`.
    pub(crate) und_offsets: Vec<u32>,
    pub(crate) und_targets: Vec<NodeId>,

    /// Directed views; empty for undirected graphs (use the undirected view).
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_targets: Vec<NodeId>,

    /// Count of distinct edges (undirected edges counted once).
    pub(crate) num_edges: usize,

    pub(crate) node_attrs: AttrStore,
    pub(crate) edge_attrs: EdgeAttrStore,

    /// Structural fingerprint, memoized at build time (see
    /// [`Graph::fingerprint`]).
    pub(crate) fingerprint: u64,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct edges (an undirected edge counts once; a directed
    /// edge and its reverse count as two).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Size of the label space (labels are `0..num_labels`).
    #[inline]
    pub fn num_labels(&self) -> u16 {
        self.num_labels
    }

    /// The label of `n`.
    #[inline(always)]
    pub fn label(&self, n: NodeId) -> Label {
        self.labels[n.index()]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + Clone {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Neighbors of `n` in the undirected view, sorted by id.
    #[inline(always)]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        let lo = self.und_offsets[n.index()] as usize;
        let hi = self.und_offsets[n.index() + 1] as usize;
        &self.und_targets[lo..hi]
    }

    /// Degree of `n` in the undirected view.
    #[inline(always)]
    pub fn degree(&self, n: NodeId) -> usize {
        (self.und_offsets[n.index() + 1] - self.und_offsets[n.index()]) as usize
    }

    /// Out-neighbors of `n` (same as [`Self::neighbors`] for undirected graphs).
    #[inline(always)]
    pub fn out_neighbors(&self, n: NodeId) -> &[NodeId] {
        if !self.directed {
            return self.neighbors(n);
        }
        let lo = self.out_offsets[n.index()] as usize;
        let hi = self.out_offsets[n.index() + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbors of `n` (same as [`Self::neighbors`] for undirected graphs).
    #[inline(always)]
    pub fn in_neighbors(&self, n: NodeId) -> &[NodeId] {
        if !self.directed {
            return self.neighbors(n);
        }
        let lo = self.in_offsets[n.index()] as usize;
        let hi = self.in_offsets[n.index() + 1] as usize;
        &self.in_targets[lo..hi]
    }

    /// True if `a` and `b` are adjacent in the undirected view.
    #[inline]
    pub fn has_undirected_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// True if the directed edge `a -> b` exists. For undirected graphs this
    /// is adjacency.
    #[inline]
    pub fn has_directed_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.out_neighbors(a).binary_search(&b).is_ok()
    }

    /// Node attribute store.
    #[inline]
    pub fn node_attrs(&self) -> &AttrStore {
        &self.node_attrs
    }

    /// Edge attribute store.
    #[inline]
    pub fn edge_attrs(&self) -> &EdgeAttrStore {
        &self.edge_attrs
    }

    /// Convenience: node attribute lookup.
    pub fn node_attr(&self, n: NodeId, name: &str) -> Option<&AttrValue> {
        self.node_attrs.get(n, name)
    }

    /// Convenience: edge attribute lookup.
    pub fn edge_attr(&self, a: NodeId, b: NodeId, name: &str) -> Option<&AttrValue> {
        self.edge_attrs.get(a, b, name)
    }

    /// Iterator over distinct edges. For undirected graphs each edge is
    /// yielded once with `a < b`; for directed graphs each `(src, dst)` pair
    /// is yielded once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let directed = self.directed;
        self.node_ids().flat_map(move |a| {
            let neigh = if directed {
                self.out_neighbors(a)
            } else {
                self.neighbors(a)
            };
            neigh
                .iter()
                .copied()
                .filter(move |&b| directed || a < b)
                .map(move |b| (a, b))
        })
    }

    /// Maximum undirected degree over all nodes (0 for empty graphs).
    pub fn max_degree(&self) -> usize {
        self.node_ids().map(|n| self.degree(n)).max().unwrap_or(0)
    }

    /// The `count` highest-degree nodes (ties broken by lower id), used for
    /// degree-centrality center selection (Section IV-B4).
    pub fn top_degree_nodes(&self, count: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.node_ids().collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(self.degree(n)), n));
        nodes.truncate(count);
        nodes
    }

    /// A structural fingerprint of the graph: an Fx hash over direction,
    /// labels, the CSR adjacency arrays, and the node-attribute columns.
    ///
    /// Two graphs with different topology, labels, or attribute values
    /// fingerprint differently (modulo hash collisions); the same graph
    /// always fingerprints identically. Used to key caches of census
    /// results so a cache entry can never outlive the graph it was
    /// computed on. Memoized at [`crate::GraphBuilder::build`] time, so
    /// this is a plain field read — cheap enough to sit on the hot path
    /// of every cache lookup.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Hash the graph contents; called once by the builder to populate
    /// the memoized [`Graph::fingerprint`].
    pub(crate) fn compute_fingerprint(&self) -> u64 {
        use crate::hash::FxHasher;
        use std::hash::Hasher;

        let mut h = FxHasher::default();
        h.write_u8(self.directed as u8);
        h.write_u16(self.num_labels);
        h.write_usize(self.labels.len());
        for l in &self.labels {
            h.write_u16(l.0);
        }
        h.write_usize(self.num_edges);
        for off in &self.und_offsets {
            h.write_u32(*off);
        }
        for t in &self.und_targets {
            h.write_u32(t.0);
        }
        for t in &self.out_targets {
            h.write_u32(t.0);
        }
        // Attribute columns, hashed order-independently (column iteration
        // order is hash-map order): XOR of per-entry hashes.
        let mut attr_acc: u64 = 0;
        let mut names: Vec<&str> = self.node_attrs.attribute_names().collect();
        names.sort_unstable();
        for name in names {
            for (node, value) in self.node_attrs.column(name) {
                let mut eh = FxHasher::default();
                eh.write(name.as_bytes());
                eh.write_u32(node.0);
                hash_attr_value(&mut eh, value);
                attr_acc ^= eh.finish();
            }
        }
        let mut enames: Vec<&str> = self.edge_attrs.attribute_names().collect();
        enames.sort_unstable();
        for name in enames {
            for ((a, b), value) in self.edge_attrs.column(name) {
                let mut eh = FxHasher::default();
                eh.write(name.as_bytes());
                eh.write_u32(a);
                eh.write_u32(b);
                hash_attr_value(&mut eh, value);
                attr_acc ^= eh.finish();
            }
        }
        h.write_u64(attr_acc);
        h.finish()
    }
}

fn hash_attr_value(h: &mut crate::hash::FxHasher, v: &AttrValue) {
    use std::hash::Hasher;
    match v {
        AttrValue::Int(i) => {
            h.write_u8(0);
            h.write_u64(*i as u64);
        }
        AttrValue::Float(f) => {
            h.write_u8(1);
            h.write_u64(f.to_bits());
        }
        AttrValue::Str(s) => {
            h.write_u8(2);
            h.write(s.as_bytes());
        }
        AttrValue::Bool(b) => {
            h.write_u8(3);
            h.write_u8(*b as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{Label, NodeId};

    fn path3_undirected() -> super::Graph {
        // 0 - 1 - 2
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(1));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.build()
    }

    #[test]
    fn undirected_adjacency() {
        let g = path3_undirected();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_directed());
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert!(g.has_undirected_edge(NodeId(0), NodeId(1)));
        assert!(g.has_undirected_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_undirected_edge(NodeId(0), NodeId(2)));
        // For undirected graphs directed adjacency == adjacency.
        assert!(g.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(g.has_directed_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn directed_adjacency_and_views() {
        // 0 -> 1 -> 2, and 2 -> 0
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.add_edge(n2, n0);
        let g = b.build();

        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.in_neighbors(NodeId(0)), &[NodeId(2)]);
        // Undirected view merges both directions.
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(g.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_directed_edge(NodeId(1), NodeId(0)));
        assert!(g.has_undirected_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn antiparallel_directed_edges_count_separately() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        // But the undirected view has one neighbor entry each.
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn edges_iterator_undirected_yields_each_once() {
        let g = path3_undirected();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn edges_iterator_directed_yields_oriented() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n1, n0);
        let g = b.build();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(NodeId(1), NodeId(0))]);
    }

    #[test]
    fn top_degree_nodes_orders_by_degree_then_id() {
        // Star around 1 plus an edge 2-3: degrees 1:3, 2:2, and 0/3/4 tie at 1
        // (lowest id wins the tie).
        let mut b = GraphBuilder::undirected();
        for _ in 0..5 {
            b.add_node(Label(0));
        }
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(1), NodeId(4));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        assert_eq!(g.top_degree_nodes(3), vec![NodeId(1), NodeId(2), NodeId(0)]);
        assert_eq!(g.top_degree_nodes(0), Vec::<NodeId>::new());
        assert_eq!(g.top_degree_nodes(100).len(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.node_ids().count(), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        use crate::attrs::AttrValue;

        let g1 = path3_undirected();
        let g2 = path3_undirected();
        assert_eq!(g1.fingerprint(), g2.fingerprint());

        // Extra edge changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());

        // Different label changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(0));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());

        // An attribute value changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.set_node_attr(NodeId(0), "age", AttrValue::Int(30));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());
    }
}
