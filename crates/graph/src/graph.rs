//! The CSR graph type.

use crate::attrs::{AttrStore, AttrValue, EdgeAttrStore};
use crate::ids::{Label, NodeId};
use crate::store::StoreBackend;

/// An immutable labeled, attributed graph in compressed-sparse-row form.
///
/// Construction goes through [`crate::GraphBuilder`] (heap-backed) or
/// [`crate::store::open_binary`] (mmap-backed). Neighbor lists are
/// sorted by node id, which gives:
///
/// * O(log d) edge-membership tests via binary search,
/// * linear-time sorted-list intersection for the candidate-neighbor
///   operations of the matching algorithm,
/// * deterministic iteration order everywhere.
///
/// Directed graphs keep three adjacency structures: out-neighbors,
/// in-neighbors, and the *undirected view* (union of both, deduplicated).
/// The undirected view is what `k`-hop neighborhoods traverse: the paper
/// defines `S(n, k)` as the subgraph incident on nodes *reachable* from
/// `n`, and its neighborhood semantics ignore edge orientation. For
/// undirected graphs all three views are the same arrays.
///
/// The label and adjacency arrays live behind the
/// [`GraphStore`](crate::store::GraphStore) trait: either heap-owned
/// `Vec`s ([`crate::store::VecStore`]) or a read-only memory map of the
/// binary file format ([`crate::store::MmapStore`]). Algorithms are
/// agnostic — every accessor below returns plain slices either way.
#[derive(Clone, Debug)]
pub struct Graph {
    pub(crate) directed: bool,
    pub(crate) num_labels: u16,

    /// Labels + CSR adjacency arrays, behind a storage backend.
    pub(crate) store: StoreBackend,

    /// Count of distinct edges (undirected edges counted once).
    pub(crate) num_edges: usize,

    pub(crate) node_attrs: AttrStore,
    pub(crate) edge_attrs: EdgeAttrStore,

    /// Structural fingerprint, memoized at build time (see
    /// [`Graph::fingerprint`]).
    pub(crate) fingerprint: u64,
}

impl Graph {
    /// Assemble a graph from already-validated parts (builder / binary
    /// loader only).
    pub(crate) fn from_parts(
        directed: bool,
        num_labels: u16,
        num_edges: usize,
        store: StoreBackend,
        node_attrs: AttrStore,
        edge_attrs: EdgeAttrStore,
        fingerprint: u64,
    ) -> Graph {
        Graph {
            directed,
            num_labels,
            store,
            num_edges,
            node_attrs,
            edge_attrs,
            fingerprint,
        }
    }

    /// The storage backend holding labels and adjacency.
    #[inline(always)]
    pub(crate) fn store(&self) -> &StoreBackend {
        &self.store
    }

    /// Which storage backend this graph sits on: `"mem"` (heap `Vec`s)
    /// or `"mmap"` (read-only binary file view).
    #[inline]
    pub fn storage_kind(&self) -> &'static str {
        self.store.kind()
    }
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.store.labels().len()
    }

    /// Number of distinct edges (an undirected edge counts once; a directed
    /// edge and its reverse count as two).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Size of the label space (labels are `0..num_labels`).
    #[inline]
    pub fn num_labels(&self) -> u16 {
        self.num_labels
    }

    /// The label of `n`.
    #[inline(always)]
    pub fn label(&self, n: NodeId) -> Label {
        self.store.labels()[n.index()]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        self.store.labels()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + Clone {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Neighbors of `n` in the undirected view, sorted by id.
    #[inline(always)]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        let offsets = self.store.und_offsets();
        let lo = offsets[n.index()] as usize;
        let hi = offsets[n.index() + 1] as usize;
        &self.store.und_targets()[lo..hi]
    }

    /// Degree of `n` in the undirected view.
    #[inline(always)]
    pub fn degree(&self, n: NodeId) -> usize {
        let offsets = self.store.und_offsets();
        (offsets[n.index() + 1] - offsets[n.index()]) as usize
    }

    /// Out-neighbors of `n` (same as [`Self::neighbors`] for undirected graphs).
    #[inline(always)]
    pub fn out_neighbors(&self, n: NodeId) -> &[NodeId] {
        if !self.directed {
            return self.neighbors(n);
        }
        let offsets = self.store.out_offsets();
        let lo = offsets[n.index()] as usize;
        let hi = offsets[n.index() + 1] as usize;
        &self.store.out_targets()[lo..hi]
    }

    /// In-neighbors of `n` (same as [`Self::neighbors`] for undirected graphs).
    #[inline(always)]
    pub fn in_neighbors(&self, n: NodeId) -> &[NodeId] {
        if !self.directed {
            return self.neighbors(n);
        }
        let offsets = self.store.in_offsets();
        let lo = offsets[n.index()] as usize;
        let hi = offsets[n.index() + 1] as usize;
        &self.store.in_targets()[lo..hi]
    }

    /// True if `a` and `b` are adjacent in the undirected view.
    #[inline]
    pub fn has_undirected_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// True if the directed edge `a -> b` exists. For undirected graphs this
    /// is adjacency.
    #[inline]
    pub fn has_directed_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.out_neighbors(a).binary_search(&b).is_ok()
    }

    /// Node attribute store.
    #[inline]
    pub fn node_attrs(&self) -> &AttrStore {
        &self.node_attrs
    }

    /// Edge attribute store.
    #[inline]
    pub fn edge_attrs(&self) -> &EdgeAttrStore {
        &self.edge_attrs
    }

    /// Convenience: node attribute lookup.
    pub fn node_attr(&self, n: NodeId, name: &str) -> Option<&AttrValue> {
        self.node_attrs.get(n, name)
    }

    /// Convenience: edge attribute lookup.
    pub fn edge_attr(&self, a: NodeId, b: NodeId, name: &str) -> Option<&AttrValue> {
        self.edge_attrs.get(a, b, name)
    }

    /// Iterator over distinct edges. For undirected graphs each edge is
    /// yielded once with `a < b`; for directed graphs each `(src, dst)` pair
    /// is yielded once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let directed = self.directed;
        self.node_ids().flat_map(move |a| {
            let neigh = if directed {
                self.out_neighbors(a)
            } else {
                self.neighbors(a)
            };
            neigh
                .iter()
                .copied()
                .filter(move |&b| directed || a < b)
                .map(move |b| (a, b))
        })
    }

    /// Maximum undirected degree over all nodes (0 for empty graphs).
    pub fn max_degree(&self) -> usize {
        self.node_ids().map(|n| self.degree(n)).max().unwrap_or(0)
    }

    /// The `count` highest-degree nodes (ties broken by lower id), used for
    /// degree-centrality center selection (Section IV-B4).
    pub fn top_degree_nodes(&self, count: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.node_ids().collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(self.degree(n)), n));
        nodes.truncate(count);
        nodes
    }

    /// A structural fingerprint of the graph: an Fx hash over direction,
    /// labels, the CSR adjacency arrays, and the node-attribute columns.
    ///
    /// Two graphs with different topology, labels, or attribute values
    /// fingerprint differently (modulo hash collisions); the same graph
    /// always fingerprints identically. Used to key caches of census
    /// results so a cache entry can never outlive the graph it was
    /// computed on. Memoized at [`crate::GraphBuilder::build`] time, so
    /// this is a plain field read — cheap enough to sit on the hot path
    /// of every cache lookup.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recompute the content hash and compare it with the memoized
    /// fingerprint. Always true for built graphs; for a binary file
    /// (whose header carries the fingerprint and is otherwise trusted)
    /// this is the full-integrity check — it reads every section, so
    /// it costs O(n + m) page-ins on an mmap-backed graph.
    pub fn verify_fingerprint(&self) -> bool {
        self.compute_fingerprint() == self.fingerprint
    }

    /// Hash the graph contents; called once by the builder to populate
    /// the memoized [`Graph::fingerprint`].
    pub(crate) fn compute_fingerprint(&self) -> u64 {
        use crate::hash::FxHasher;
        use std::hash::Hasher;

        let mut h = FxHasher::default();
        h.write_u8(self.directed as u8);
        h.write_u16(self.num_labels);
        h.write_usize(self.num_nodes());
        for l in self.store.labels() {
            h.write_u16(l.0);
        }
        h.write_usize(self.num_edges);
        for off in self.store.und_offsets() {
            h.write_u32(*off);
        }
        for t in self.store.und_targets() {
            h.write_u32(t.0);
        }
        for t in self.store.out_targets() {
            h.write_u32(t.0);
        }
        // Attribute columns, hashed order-independently (column iteration
        // order is hash-map order): XOR of per-entry hashes.
        let mut attr_acc: u64 = 0;
        let mut names: Vec<&str> = self.node_attrs.attribute_names().collect();
        names.sort_unstable();
        for name in names {
            for (node, value) in self.node_attrs.column(name) {
                let mut eh = FxHasher::default();
                eh.write(name.as_bytes());
                eh.write_u32(node.0);
                hash_attr_value(&mut eh, value);
                attr_acc ^= eh.finish();
            }
        }
        let mut enames: Vec<&str> = self.edge_attrs.attribute_names().collect();
        enames.sort_unstable();
        for name in enames {
            for ((a, b), value) in self.edge_attrs.column(name) {
                let mut eh = FxHasher::default();
                eh.write(name.as_bytes());
                eh.write_u32(a);
                eh.write_u32(b);
                hash_attr_value(&mut eh, value);
                attr_acc ^= eh.finish();
            }
        }
        h.write_u64(attr_acc);
        h.finish()
    }
}

fn hash_attr_value(h: &mut crate::hash::FxHasher, v: &AttrValue) {
    use std::hash::Hasher;
    match v {
        AttrValue::Int(i) => {
            h.write_u8(0);
            h.write_u64(*i as u64);
        }
        AttrValue::Float(f) => {
            h.write_u8(1);
            h.write_u64(f.to_bits());
        }
        AttrValue::Str(s) => {
            h.write_u8(2);
            h.write(s.as_bytes());
        }
        AttrValue::Bool(b) => {
            h.write_u8(3);
            h.write_u8(*b as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{Label, NodeId};

    fn path3_undirected() -> super::Graph {
        // 0 - 1 - 2
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(1));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.build()
    }

    #[test]
    fn undirected_adjacency() {
        let g = path3_undirected();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_directed());
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert!(g.has_undirected_edge(NodeId(0), NodeId(1)));
        assert!(g.has_undirected_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_undirected_edge(NodeId(0), NodeId(2)));
        // For undirected graphs directed adjacency == adjacency.
        assert!(g.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(g.has_directed_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn directed_adjacency_and_views() {
        // 0 -> 1 -> 2, and 2 -> 0
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.add_edge(n2, n0);
        let g = b.build();

        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.in_neighbors(NodeId(0)), &[NodeId(2)]);
        // Undirected view merges both directions.
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(g.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_directed_edge(NodeId(1), NodeId(0)));
        assert!(g.has_undirected_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn antiparallel_directed_edges_count_separately() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        // But the undirected view has one neighbor entry each.
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn edges_iterator_undirected_yields_each_once() {
        let g = path3_undirected();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn edges_iterator_directed_yields_oriented() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n1, n0);
        let g = b.build();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(NodeId(1), NodeId(0))]);
    }

    #[test]
    fn top_degree_nodes_orders_by_degree_then_id() {
        // Star around 1 plus an edge 2-3: degrees 1:3, 2:2, and 0/3/4 tie at 1
        // (lowest id wins the tie).
        let mut b = GraphBuilder::undirected();
        for _ in 0..5 {
            b.add_node(Label(0));
        }
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(1), NodeId(4));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        assert_eq!(g.top_degree_nodes(3), vec![NodeId(1), NodeId(2), NodeId(0)]);
        assert_eq!(g.top_degree_nodes(0), Vec::<NodeId>::new());
        assert_eq!(g.top_degree_nodes(100).len(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.node_ids().count(), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        use crate::attrs::AttrValue;

        let g1 = path3_undirected();
        let g2 = path3_undirected();
        assert_eq!(g1.fingerprint(), g2.fingerprint());

        // Extra edge changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());

        // Different label changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(0));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());

        // An attribute value changes the fingerprint.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.set_node_attr(NodeId(0), "age", AttrValue::Int(30));
        assert_ne!(b.build().fingerprint(), g1.fingerprint());
    }
}
