//! Basic network statistics.
//!
//! Several of the paper's motivating ego-centric measures (degree,
//! clustering coefficient) are special cases of pattern census; these
//! direct implementations serve as independent oracles in the test suite.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Degree histogram: `hist[d]` = number of nodes with undirected degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for n in g.node_ids() {
        hist[g.degree(n)] += 1;
    }
    hist
}

/// Number of triangles incident to `n` (pairs of adjacent neighbors).
pub fn local_triangles(g: &Graph, n: NodeId) -> usize {
    let neigh = g.neighbors(n);
    let mut count = 0;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if g.has_undirected_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of `n`: triangles / possible neighbor pairs.
/// 0.0 for degree < 2.
pub fn local_clustering(g: &Graph, n: NodeId) -> f64 {
    let d = g.degree(n);
    if d < 2 {
        return 0.0;
    }
    let pairs = d * (d - 1) / 2;
    local_triangles(g, n) as f64 / pairs as f64
}

/// Average local clustering coefficient over all nodes.
pub fn average_clustering(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let sum: f64 = g.node_ids().map(|n| local_clustering(g, n)).sum();
    sum / g.num_nodes() as f64
}

/// Total triangle count in the graph (each counted once).
pub fn total_triangles(g: &Graph) -> usize {
    // Each triangle {a,b,c} is seen once from each vertex; rely on ordering:
    // count only pairs (a,b) with n < a < b.
    let mut count = 0;
    for n in g.node_ids() {
        let neigh = g.neighbors(n);
        let start = neigh.partition_point(|&m| m <= n);
        let upper = &neigh[start..];
        for (i, &a) in upper.iter().enumerate() {
            for &b in &upper[i + 1..] {
                if g.has_undirected_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges); NaN-free: returns 0.0 for degenerate graphs.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (a, b) in g.edges() {
        // Count each undirected edge in both orientations so the measure
        // is symmetric.
        for (x, y) in [(a, b), (b, a)] {
            let dx = g.degree(x) as f64;
            let dy = g.degree(y) as f64;
            n += 1.0;
            sx += dx;
            sy += dy;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
    }
    if n == 0.0 {
        return 0.0;
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n) * (sx / n);
    let vy = syy / n - (sy / n) * (sy / n);
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Estimate the diameter (longest shortest path) with the standard
/// double-sweep lower bound: BFS from `samples` seed nodes, then BFS again
/// from the farthest node found in each sweep. Exact on trees; a lower
/// bound in general.
pub fn diameter_lower_bound(g: &Graph, samples: usize) -> u32 {
    use crate::bfs::BfsScratch;
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut dist = vec![0u32; g.num_nodes()];
    let mut best = 0;
    let step = (g.num_nodes() / samples.max(1)).max(1);
    for s in (0..g.num_nodes()).step_by(step).take(samples.max(1)) {
        let start = NodeId::from_index(s);
        scratch.full_bfs_distances(g, start, &mut dist);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u32::MAX)
            .max_by_key(|&(_, &d)| d)
            .map(|(i, &d)| (NodeId::from_index(i), d))
            .unwrap_or((start, 0));
        best = best.max(d);
        // Second sweep from the eccentric node.
        scratch.full_bfs_distances(g, far, &mut dist);
        let d2 = dist
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        best = best.max(d2);
    }
    best
}

/// Number of connected components (undirected view).
pub fn connected_components(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    let mut components = 0;
    for start in g.node_ids() {
        if seen[start.index()] {
            continue;
        }
        components += 1;
        seen[start.index()] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &m in g.neighbors(v) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::Label;

    /// Triangle 0-1-2 with a pendant 3 on node 2, plus isolated node 4.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(0));
        for (a, c) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(NodeId(a), NodeId(c));
        }
        b.build()
    }

    #[test]
    fn degree_histogram_counts() {
        let g = fixture();
        // degrees: 0:2, 1:2, 2:3, 3:1, 4:0
        assert_eq!(degree_histogram(&g), vec![1, 1, 2, 1]);
    }

    #[test]
    fn triangles() {
        let g = fixture();
        assert_eq!(local_triangles(&g, NodeId(0)), 1);
        assert_eq!(local_triangles(&g, NodeId(2)), 1);
        assert_eq!(local_triangles(&g, NodeId(3)), 0);
        assert_eq!(total_triangles(&g), 1);
    }

    #[test]
    fn clustering() {
        let g = fixture();
        assert_eq!(local_clustering(&g, NodeId(0)), 1.0);
        // Node 2 has degree 3 -> 3 pairs, 1 closed.
        assert!((local_clustering(&g, NodeId(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, NodeId(3)), 0.0);
        assert_eq!(local_clustering(&g, NodeId(4)), 0.0);
        let avg = average_clustering(&g);
        assert!((avg - (1.0 + 1.0 + 1.0 / 3.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn components() {
        let g = fixture();
        assert_eq!(connected_components(&g), 2);
        let empty = GraphBuilder::undirected().build();
        assert_eq!(connected_components(&empty), 0);
    }

    #[test]
    fn assortativity_signs() {
        // A star is maximally disassortative (hub-leaf edges only).
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for i in 1..6u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let star = b.build();
        assert!(degree_assortativity(&star) <= 0.0);
        // A disjoint union of same-degree cliques is degenerate: variance 0.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for base in [0u32, 3] {
            for i in 0..3u32 {
                for j in (i + 1)..3 {
                    b.add_edge(NodeId(base + i), NodeId(base + j));
                }
            }
        }
        assert_eq!(degree_assortativity(&b.build()), 0.0);
        assert_eq!(
            degree_assortativity(&GraphBuilder::undirected().build()),
            0.0
        );
    }

    #[test]
    fn diameter_bounds() {
        // Path of 10: diameter 9, found exactly by the double sweep.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(10, Label(0));
        for i in 0..9u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        assert_eq!(diameter_lower_bound(&g, 2), 9);
        // Complete graph: diameter 1.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(0));
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert_eq!(diameter_lower_bound(&b.build(), 1), 1);
        assert_eq!(
            diameter_lower_bound(&GraphBuilder::undirected().build(), 1),
            0
        );
    }

    #[test]
    fn complete_graph_k4_triangles() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        for i in 0u32..4 {
            for j in (i + 1)..4 {
                b.add_edge(NodeId(i), NodeId(j));
            }
        }
        let g = b.build();
        assert_eq!(total_triangles(&g), 4);
        assert_eq!(average_clustering(&g), 1.0);
    }
}
