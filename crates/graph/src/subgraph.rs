//! Induced subgraph extraction with id remapping.
//!
//! The node-driven baseline (ND-BAS) extracts `S(n, k)` — the incident
//! subgraph on a k-hop node set — and runs the matcher on it. The extracted
//! graph uses dense local ids; [`InducedSubgraph`] carries the mapping back
//! to the original graph's ids.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::NodeId;

/// A subgraph induced on a node set, with a bidirectional id mapping.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The extracted graph over local ids `0..nodes.len()`.
    pub graph: Graph,
    /// `local_to_global[local.index()]` = original id.
    pub local_to_global: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Extract the subgraph of `g` induced on `nodes`.
    ///
    /// `nodes` must be sorted and deduplicated (as produced by the
    /// neighborhood functions). Node labels carry over; attributes are not
    /// copied (census algorithms evaluate attribute predicates against the
    /// *original* graph through the id mapping).
    pub fn extract(g: &Graph, nodes: &[NodeId]) -> Self {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "nodes must be sorted+dedup"
        );
        let mut b = if g.is_directed() {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        b = b.with_capacity(nodes.len(), nodes.len() * 4);
        for &n in nodes {
            b.add_node(g.label(n));
        }
        // For each member, keep edges to members with a larger local id
        // (undirected) or all out-edges to members (directed). Membership
        // tests are binary searches over the sorted `nodes` slice.
        for (li, &n) in nodes.iter().enumerate() {
            if g.is_directed() {
                for &m in g.out_neighbors(n) {
                    if let Ok(lj) = nodes.binary_search(&m) {
                        b.add_edge(NodeId::from_index(li), NodeId::from_index(lj));
                    }
                }
            } else {
                for &m in g.neighbors(n) {
                    if m <= n {
                        continue;
                    }
                    if let Ok(lj) = nodes.binary_search(&m) {
                        b.add_edge(NodeId::from_index(li), NodeId::from_index(lj));
                    }
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            local_to_global: nodes.to_vec(),
        }
    }

    /// Map a local id back to the original graph.
    #[inline]
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.local_to_global[local.index()]
    }

    /// Map an original id to its local id, if the node is in the subgraph.
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.local_to_global
            .binary_search(&global)
            .ok()
            .map(NodeId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::Label;
    use crate::neighborhood::khop_nodes;

    /// Triangle 0-1-2 plus pendant 3 attached to 2.
    fn triangle_with_tail() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(2));
        b.add_node(Label(3));
        for (a, c) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(NodeId(a), NodeId(c));
        }
        b.build()
    }

    #[test]
    fn extract_preserves_labels_and_edges() {
        let g = triangle_with_tail();
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2)];
        let sub = InducedSubgraph::extract(&g, &nodes);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // the triangle
        for local in sub.graph.node_ids() {
            assert_eq!(sub.graph.label(local), g.label(sub.to_global(local)));
        }
    }

    #[test]
    fn edges_to_outside_are_dropped() {
        let g = triangle_with_tail();
        let nodes = vec![NodeId(2), NodeId(3)];
        let sub = InducedSubgraph::extract(&g, &nodes);
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.to_global(NodeId(0)), NodeId(2));
        assert_eq!(sub.to_global(NodeId(1)), NodeId(3));
        assert_eq!(sub.to_local(NodeId(3)), Some(NodeId(1)));
        assert_eq!(sub.to_local(NodeId(0)), None);
    }

    #[test]
    fn khop_subgraph_roundtrip() {
        let g = triangle_with_tail();
        let nodes = khop_nodes(&g, NodeId(0), 1); // {0,1,2}
        let sub = InducedSubgraph::extract(&g, &nodes);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
    }

    #[test]
    fn directed_subgraph_keeps_orientation() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(1));
        let g = b.build();
        let sub = InducedSubgraph::extract(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(sub.graph.is_directed());
        assert!(sub.graph.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(!sub.graph.has_directed_edge(NodeId(1), NodeId(0)));
        assert!(sub.graph.has_directed_edge(NodeId(2), NodeId(1)));
    }

    #[test]
    fn empty_node_set() {
        let g = triangle_with_tail();
        let sub = InducedSubgraph::extract(&g, &[]);
        assert_eq!(sub.graph.num_nodes(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn singleton_node_set() {
        let g = triangle_with_tail();
        let sub = InducedSubgraph::extract(&g, &[NodeId(1)]);
        assert_eq!(sub.graph.num_nodes(), 1);
        assert_eq!(sub.graph.num_edges(), 0);
        assert_eq!(sub.graph.label(NodeId(0)), Label(1));
    }
}
