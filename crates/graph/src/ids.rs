//! Strongly-typed identifiers for graph nodes and labels.
//!
//! Node ids are `u32` internally: the paper's largest graphs (1M nodes)
//! fit comfortably, and halving the index width keeps adjacency arrays,
//! match tuples, and distance vectors cache-friendly.

use std::fmt;

/// Identifier of a node in a [`crate::Graph`].
///
/// Ids are dense: a graph with `n` nodes uses ids `0..n`.
///
/// `repr(transparent)` guarantees the layout matches `u32` exactly, so
/// the mmap store can reinterpret on-disk `u32` sections as `&[NodeId]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into per-node arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index. Panics if it does not fit in `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A node label, drawn from a small finite label space.
///
/// The unlabeled case is modeled as every node carrying `Label(0)`
/// (Section III: "the unlabeled case is equivalent to both the database
/// and pattern graphs having the same label for all nodes").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Label(pub u16);

impl Label {
    /// The label used for unlabeled graphs.
    pub const UNLABELED: Label = Label(0);

    /// The label as a `usize` index into per-label arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Label {
    #[inline]
    fn from(v: u16) -> Self {
        Label(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn label_roundtrip() {
        let l = Label(3);
        assert_eq!(l.index(), 3);
        assert_eq!(format!("{l:?}"), "L3");
        assert_ne!(l, Label::UNLABELED);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Label(0) < Label(1));
    }
}
