//! Search neighborhoods: `SUBGRAPH`, `SUBGRAPH-INTERSECTION`, `SUBGRAPH-UNION`.
//!
//! The language (Section II) supports three neighborhood types. This module
//! computes their *node sets*; [`crate::subgraph`] turns a node set into the
//! induced subgraph when an algorithm needs the actual edges.

use crate::bfs::BfsScratch;
use crate::graph::Graph;
use crate::ids::NodeId;

/// The kind of search neighborhood named in a census query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeighborhoodKind {
    /// `SUBGRAPH(N, k)` — the k-hop neighborhood of one node.
    Single,
    /// `SUBGRAPH-INTERSECTION(N1, N2, k)` — nodes within k hops of *both*.
    Intersection,
    /// `SUBGRAPH-UNION(N1, N2, k)` — nodes within k hops of *either*.
    Union,
}

/// Nodes within `k` hops of `n` (including `n`), sorted by id.
pub fn khop_nodes(g: &Graph, n: NodeId, k: u32) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut out = Vec::new();
    scratch.bounded_bfs(g, n, k, &mut out);
    out.sort_unstable();
    out
}

/// Nodes within `k` hops of `n` with their distances, in nondecreasing
/// distance order.
pub fn khop_nodes_with_dist(g: &Graph, n: NodeId, k: u32) -> Vec<(NodeId, u32)> {
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut out = Vec::new();
    scratch.bounded_bfs(g, n, k, &mut out);
    out.into_iter().map(|m| (m, scratch.distance(m))).collect()
}

/// `N_k(n1) ∩ N_k(n2)`: nodes within `k` hops of both, sorted by id.
///
/// Implemented as two bounded BFS runs and a sorted-merge; uses caller
/// scratch so pairwise census loops don't re-allocate.
pub fn khop_intersection(
    g: &Graph,
    scratch: &mut BfsScratch,
    n1: NodeId,
    n2: NodeId,
    k: u32,
) -> Vec<NodeId> {
    let mut a = Vec::new();
    scratch.bounded_bfs(g, n1, k, &mut a);
    a.sort_unstable();
    let mut b = Vec::new();
    scratch.bounded_bfs(g, n2, k, &mut b);
    b.sort_unstable();
    intersect_sorted(&a, &b)
}

/// `N_k(n1) ∪ N_k(n2)`: nodes within `k` hops of either, sorted by id.
pub fn khop_union(
    g: &Graph,
    scratch: &mut BfsScratch,
    n1: NodeId,
    n2: NodeId,
    k: u32,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    scratch.bounded_bfs_multi(g, &[n1, n2], k, &mut out);
    out.sort_unstable();
    out
}

/// Intersection of two sorted, deduplicated node slices.
///
/// Allocating convenience wrapper over [`crate::setops::intersect_into`];
/// hot loops should call the kernel layer directly with a reused buffer.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut stats = crate::setops::SetOpStats::default();
    crate::setops::intersect_into(a, b, &mut out, &mut stats);
    out
}

/// Set-difference `a \ b` of two sorted, deduplicated node slices.
pub fn difference_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::Label;

    /// 0-1-2-3-4 path.
    fn path5() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(0));
        for i in 0u32..4 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        b.build()
    }

    #[test]
    fn khop_sorted() {
        let g = path5();
        assert_eq!(
            khop_nodes(&g, NodeId(2), 1),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            khop_nodes(&g, NodeId(0), 2),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn khop_with_dist() {
        let g = path5();
        let d = khop_nodes_with_dist(&g, NodeId(0), 2);
        assert_eq!(d, vec![(NodeId(0), 0), (NodeId(1), 1), (NodeId(2), 2)]);
    }

    #[test]
    fn intersection_and_union() {
        let g = path5();
        let mut s = BfsScratch::new(g.num_nodes());
        // N_1(1) = {0,1,2}, N_1(3) = {2,3,4}
        assert_eq!(
            khop_intersection(&g, &mut s, NodeId(1), NodeId(3), 1),
            vec![NodeId(2)]
        );
        assert_eq!(
            khop_union(&g, &mut s, NodeId(1), NodeId(3), 1),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn intersection_of_identical_nodes_is_khop() {
        let g = path5();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(
            khop_intersection(&g, &mut s, NodeId(2), NodeId(2), 1),
            khop_nodes(&g, NodeId(2), 1)
        );
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let g = path5();
        let mut s = BfsScratch::new(g.num_nodes());
        assert!(khop_intersection(&g, &mut s, NodeId(0), NodeId(4), 1).is_empty());
    }

    #[test]
    fn sorted_set_ops() {
        let a: Vec<NodeId> = [1u32, 3, 5, 7].iter().map(|&i| NodeId(i)).collect();
        let b: Vec<NodeId> = [3u32, 4, 5].iter().map(|&i| NodeId(i)).collect();
        assert_eq!(intersect_sorted(&a, &b), vec![NodeId(3), NodeId(5)]);
        assert_eq!(intersect_sorted(&b, &a), vec![NodeId(3), NodeId(5)]);
        assert_eq!(difference_sorted(&a, &b), vec![NodeId(1), NodeId(7)]);
        assert_eq!(difference_sorted(&b, &a), vec![NodeId(4)]);
        assert_eq!(intersect_sorted(&a, &[]), vec![]);
        assert_eq!(difference_sorted(&a, &[]), a);
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        let long: Vec<NodeId> = (0..10_000u32).map(NodeId).collect();
        let short: Vec<NodeId> = [5u32, 9_999, 20_000].iter().map(|&i| NodeId(i)).collect();
        assert_eq!(
            intersect_sorted(&short, &long),
            vec![NodeId(5), NodeId(9_999)]
        );
    }
}
