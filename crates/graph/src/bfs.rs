//! Breadth-first traversal with reusable scratch space.
//!
//! Every census algorithm runs BFS over many (often overlapping)
//! neighborhoods. Allocating a visited array per traversal would dominate
//! runtime on large graphs, so [`BfsScratch`] uses *epoch-stamped* marks:
//! clearing between traversals is a single counter increment.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Reusable BFS workspace sized for one graph.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    /// Epoch stamp per node; a node is visited in the current traversal iff
    /// `stamp[n] == epoch`.
    stamp: Vec<u32>,
    /// Distance per node, valid only where `stamp[n] == epoch`.
    dist: Vec<u32>,
    epoch: u32,
    queue: VecDeque<NodeId>,
    /// Cumulative count of neighbor-list entries examined across all
    /// traversals — the disk-I/O proxy metric the paper's pattern-driven
    /// optimizations minimize.
    edges_scanned: u64,
}

impl BfsScratch {
    /// Create scratch for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        BfsScratch {
            stamp: vec![0; num_nodes],
            dist: vec![0; num_nodes],
            epoch: 0,
            queue: VecDeque::new(),
            edges_scanned: 0,
        }
    }

    /// Total neighbor-list entries examined since construction (or the
    /// last [`Self::reset_edges_scanned`]).
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned
    }

    /// Zero the edge-scan counter.
    pub fn reset_edges_scanned(&mut self) {
        self.edges_scanned = 0;
    }

    /// Begin a new traversal: invalidate all marks in O(1) (amortized; a
    /// full clear happens only on epoch wrap-around, every 2^32 calls).
    pub fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Whether `n` was visited in the current traversal.
    #[inline(always)]
    pub fn visited(&self, n: NodeId) -> bool {
        self.stamp[n.index()] == self.epoch
    }

    /// Distance of `n` from the source set, valid only if [`Self::visited`].
    #[inline(always)]
    pub fn distance(&self, n: NodeId) -> u32 {
        debug_assert!(self.visited(n));
        self.dist[n.index()]
    }

    #[inline(always)]
    fn mark(&mut self, n: NodeId, d: u32) {
        self.stamp[n.index()] = self.epoch;
        self.dist[n.index()] = d;
    }

    /// BFS from `source` up to depth `k` (inclusive) over the undirected
    /// view. Appends every visited node (including `source`, at distance 0)
    /// to `out` in nondecreasing distance order. Distances are queryable via
    /// [`Self::distance`] until the next [`Self::begin`].
    pub fn bounded_bfs(&mut self, g: &Graph, source: NodeId, k: u32, out: &mut Vec<NodeId>) {
        self.begin();
        self.mark(source, 0);
        out.push(source);
        self.queue.push_back(source);
        while let Some(n) = self.queue.pop_front() {
            let d = self.dist[n.index()];
            if d == k {
                continue;
            }
            self.edges_scanned += g.degree(n) as u64;
            for &m in g.neighbors(n) {
                if !self.visited(m) {
                    self.mark(m, d + 1);
                    out.push(m);
                    self.queue.push_back(m);
                }
            }
        }
    }

    /// Multi-source bounded BFS: distance is the minimum over all sources.
    /// Appends visited nodes to `out` in nondecreasing distance order.
    pub fn bounded_bfs_multi(
        &mut self,
        g: &Graph,
        sources: &[NodeId],
        k: u32,
        out: &mut Vec<NodeId>,
    ) {
        self.begin();
        for &s in sources {
            if !self.visited(s) {
                self.mark(s, 0);
                out.push(s);
                self.queue.push_back(s);
            }
        }
        while let Some(n) = self.queue.pop_front() {
            let d = self.dist[n.index()];
            if d == k {
                continue;
            }
            self.edges_scanned += g.degree(n) as u64;
            for &m in g.neighbors(n) {
                if !self.visited(m) {
                    self.mark(m, d + 1);
                    out.push(m);
                    self.queue.push_back(m);
                }
            }
        }
    }

    /// Unbounded single-source BFS distances to every reachable node,
    /// written into `dist_out` as `u32` (unreachable = `u32::MAX`).
    /// Used to precompute center distance indexes.
    pub fn full_bfs_distances(&mut self, g: &Graph, source: NodeId, dist_out: &mut [u32]) {
        debug_assert_eq!(dist_out.len(), g.num_nodes());
        dist_out.iter_mut().for_each(|d| *d = u32::MAX);
        self.begin();
        self.mark(source, 0);
        dist_out[source.index()] = 0;
        self.queue.push_back(source);
        while let Some(n) = self.queue.pop_front() {
            let d = self.dist[n.index()];
            self.edges_scanned += g.degree(n) as u64;
            for &m in g.neighbors(n) {
                if !self.visited(m) {
                    self.mark(m, d + 1);
                    dist_out[m.index()] = d + 1;
                    self.queue.push_back(m);
                }
            }
        }
    }
}

/// One-shot convenience: nodes within `k` hops of `source` (including it),
/// in nondecreasing distance order.
pub fn khop(g: &Graph, source: NodeId, k: u32) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(g.num_nodes());
    let mut out = Vec::new();
    scratch.bounded_bfs(g, source, k, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::Label;

    /// Path 0-1-2-3-4 plus a branch 2-5.
    fn path_with_branch() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for (a, c) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (2, 5)] {
            b.add_edge(NodeId(a), NodeId(c));
        }
        b.build()
    }

    #[test]
    fn bounded_bfs_distances_and_frontier() {
        let g = path_with_branch();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        s.bounded_bfs(&g, NodeId(0), 2, &mut out);
        let got: Vec<(u32, u32)> = out.iter().map(|&n| (n.0, s.distance(n))).collect();
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2)]);
        assert!(!s.visited(NodeId(3)));
        assert!(!s.visited(NodeId(5)));
    }

    #[test]
    fn k_zero_visits_only_source() {
        let g = path_with_branch();
        assert_eq!(khop(&g, NodeId(2), 0), vec![NodeId(2)]);
    }

    #[test]
    fn full_coverage_with_large_k() {
        let g = path_with_branch();
        let mut nodes = khop(&g, NodeId(0), 10);
        nodes.sort();
        assert_eq!(nodes.len(), 6);
    }

    #[test]
    fn scratch_reuse_across_traversals() {
        let g = path_with_branch();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        s.bounded_bfs(&g, NodeId(0), 1, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        s.bounded_bfs(&g, NodeId(4), 1, &mut out);
        let got: Vec<u32> = out.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![4, 3]);
        // Marks from the first traversal are gone.
        assert!(!s.visited(NodeId(0)));
        assert!(!s.visited(NodeId(1)));
    }

    #[test]
    fn multi_source_takes_min_distance() {
        let g = path_with_branch();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        s.bounded_bfs_multi(&g, &[NodeId(0), NodeId(4)], 2, &mut out);
        // Node 2 is distance 2 from both ends; node 3 is 1 from node 4.
        assert!(s.visited(NodeId(2)));
        assert_eq!(s.distance(NodeId(2)), 2);
        assert_eq!(s.distance(NodeId(3)), 1);
        assert_eq!(s.distance(NodeId(0)), 0);
        assert_eq!(s.distance(NodeId(4)), 0);
    }

    #[test]
    fn multi_source_duplicate_sources_ok() {
        let g = path_with_branch();
        let mut s = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        s.bounded_bfs_multi(&g, &[NodeId(1), NodeId(1)], 1, &mut out);
        let mut got: Vec<u32> = out.iter().map(|n| n.0).collect();
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn full_bfs_distances_unreachable_is_max() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let mut s = BfsScratch::new(3);
        let mut dist = vec![0u32; 3];
        s.full_bfs_distances(&g, NodeId(0), &mut dist);
        assert_eq!(dist, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn directed_graph_bfs_ignores_orientation() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(1), NodeId(0)); // 1 -> 0
        b.add_edge(NodeId(1), NodeId(2)); // 1 -> 2
        let g = b.build();
        // From node 0 we can still reach 1 and 2 through the undirected view.
        let mut nodes = khop(&g, NodeId(0), 2);
        nodes.sort();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
