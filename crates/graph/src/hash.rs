//! Fast, non-cryptographic hashing for hot hash-table paths.
//!
//! The census algorithms hash node ids (small integers) constantly —
//! pattern-match indexes, visited sets, candidate sets. The standard
//! library's SipHash is collision-resistant but slow for integer keys, so
//! we use the Fx hash algorithm (the multiply-xor hash used by rustc),
//! implemented here directly to keep the dependency set to the approved
//! list. HashDoS is not a concern: all inputs are internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with the Fx hasher.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with the Fx hasher.
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash function: for each input word, `hash = (hash.rotl(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_basic_ops() {
        let mut m: FastHashMap<u32, &str> = FastHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FastHashSet<u64> = FastHashSet::default();
        for i in 0..1000u64 {
            s.insert(i * 7);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn byte_stream_hashing_distinguishes_lengths() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        // Different-length zero-padded inputs must not collide trivially.
        assert_ne!(h(&[0, 0, 0]), h(&[0, 0, 0, 0]));
        assert_ne!(h(b"abc"), h(b"abd"));
        // Long inputs exercise the chunked path.
        assert_ne!(h(b"abcdefghijklmnop"), h(b"abcdefghijklmnoq"));
    }

    #[test]
    fn integer_keys_have_low_collision_rate_in_low_bits() {
        // Sanity check the hash spreads sequential keys: a table of 1<<12
        // buckets should see most buckets occupied for 4096 sequential keys.
        let mut buckets = vec![0u32; 1 << 12];
        for i in 0..4096u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(i);
            buckets[(hasher.finish() & 0xFFF) as usize] += 1;
        }
        let occupied = buckets.iter().filter(|&&c| c > 0).count();
        assert!(occupied > 2000, "only {occupied} of 4096 buckets occupied");
    }
}
