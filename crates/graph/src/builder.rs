//! Incremental graph construction.

use crate::attrs::{AttrStore, AttrValue, EdgeAttrStore};
use crate::graph::Graph;
use crate::ids::{Label, NodeId};
use crate::store::{StoreBackend, VecStore};

/// Builds a [`Graph`] incrementally, then freezes it into CSR form.
///
/// Parallel edges and self-loops are dropped at [`GraphBuilder::build`]
/// time (the paper's data model works on simple graphs). Labels may be
/// assigned at node-creation time or re-assigned later.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    directed: bool,
    labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId)>,
    node_attrs: AttrStore,
    edge_attrs: Option<EdgeAttrStore>,
}

impl GraphBuilder {
    /// A builder for an undirected graph.
    pub fn undirected() -> Self {
        Self::new(false)
    }

    /// A builder for a directed graph.
    pub fn directed() -> Self {
        Self::new(true)
    }

    fn new(directed: bool) -> Self {
        GraphBuilder {
            directed,
            labels: Vec::new(),
            edges: Vec::new(),
            node_attrs: AttrStore::new(),
            edge_attrs: None,
        }
    }

    /// Pre-size internal buffers.
    pub fn with_capacity(mut self, nodes: usize, edges: usize) -> Self {
        self.labels.reserve(nodes);
        self.edges.reserve(edges);
        self
    }

    /// Add a node with the given label; returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = NodeId::from_index(self.labels.len());
        self.labels.push(label);
        id
    }

    /// Add `count` nodes all carrying `label`; returns the first new id.
    pub fn add_nodes(&mut self, count: usize, label: Label) -> NodeId {
        let first = NodeId::from_index(self.labels.len());
        self.labels.resize(self.labels.len() + count, label);
        first
    }

    /// Current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Overwrite the label of an existing node.
    pub fn set_label(&mut self, n: NodeId, label: Label) {
        self.labels[n.index()] = label;
    }

    /// Add an edge. For directed builders the edge is `a -> b`. Self-loops
    /// and duplicates are silently dropped during `build`.
    ///
    /// # Panics
    /// If either endpoint has not been added.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            a.index() < self.labels.len() && b.index() < self.labels.len(),
            "edge ({a:?}, {b:?}) references a node that was never added"
        );
        self.edges.push((a, b));
    }

    /// Set a node attribute.
    pub fn set_node_attr(&mut self, n: NodeId, name: &str, value: impl Into<AttrValue>) {
        self.node_attrs.set(n, name, value.into());
    }

    /// Set an edge attribute. The edge does not need to exist yet.
    pub fn set_edge_attr(&mut self, a: NodeId, b: NodeId, name: &str, value: impl Into<AttrValue>) {
        self.edge_attrs
            .get_or_insert_with(|| EdgeAttrStore::new(self.directed))
            .set(a, b, name, value.into());
    }

    /// Freeze into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let num_labels = self.labels.iter().map(|l| l.0).max().map_or(1, |m| m + 1);

        // Deduplicate and drop self-loops. For directed graphs (a,b) and
        // (b,a) are distinct; for undirected they are normalized.
        let mut edges: Vec<(NodeId, NodeId)> = self
            .edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| {
                if !self.directed && b < a {
                    (b, a)
                } else {
                    (a, b)
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let num_edges = edges.len();

        // Build the undirected view: both directions of every edge,
        // deduplicated (antiparallel directed pairs collapse to one entry).
        let mut und_pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in &edges {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            und_pairs.push((lo, hi));
        }
        und_pairs.sort_unstable();
        und_pairs.dedup();

        // Drop attributes of edges that did not survive (self-loops,
        // duplicates collapse to one surviving key, never-added edges).
        // Store keys are normalized exactly like `edges`, so a sorted
        // membership test suffices.
        let mut edge_attrs = self
            .edge_attrs
            .unwrap_or_else(|| EdgeAttrStore::new(self.directed));
        if !edge_attrs.is_empty() {
            edge_attrs.retain_edges(|a, b| edges.binary_search(&(NodeId(a), NodeId(b))).is_ok());
        }

        let (und_offsets, und_targets) = csr_from_symmetric(n, &und_pairs);

        let (out_offsets, out_targets, in_offsets, in_targets) = if self.directed {
            let (oo, ot) = csr_from_oriented(n, edges.iter().copied());
            let (io, it) = csr_from_oriented(n, edges.iter().map(|&(a, b)| (b, a)));
            (oo, ot, io, it)
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };

        let store = StoreBackend::Mem(VecStore {
            labels: self.labels,
            und_offsets,
            und_targets,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        });
        let mut g = Graph::from_parts(
            self.directed,
            num_labels,
            num_edges,
            store,
            self.node_attrs,
            edge_attrs,
            0,
        );
        g.fingerprint = g.compute_fingerprint();
        g
    }
}

/// Build CSR from normalized (lo, hi) pairs, emitting both directions.
fn csr_from_symmetric(n: usize, pairs: &[(NodeId, NodeId)]) -> (Vec<u32>, Vec<NodeId>) {
    let mut degree = vec![0u32; n];
    for &(a, b) in pairs {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![NodeId(0); acc as usize];
    for &(a, b) in pairs {
        targets[cursor[a.index()] as usize] = b;
        cursor[a.index()] += 1;
        targets[cursor[b.index()] as usize] = a;
        cursor[b.index()] += 1;
    }
    sort_adjacency(&offsets, &mut targets);
    (offsets, targets)
}

/// Build CSR from oriented (src, dst) pairs.
fn csr_from_oriented(
    n: usize,
    pairs: impl Iterator<Item = (NodeId, NodeId)> + Clone,
) -> (Vec<u32>, Vec<NodeId>) {
    let mut degree = vec![0u32; n];
    for (a, _) in pairs.clone() {
        degree[a.index()] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![NodeId(0); acc as usize];
    for (a, b) in pairs {
        targets[cursor[a.index()] as usize] = b;
        cursor[a.index()] += 1;
    }
    sort_adjacency(&offsets, &mut targets);
    (offsets, targets)
}

fn sort_adjacency(offsets: &[u32], targets: &mut [NodeId]) {
    for w in offsets.windows(2) {
        targets[w[0] as usize..w[1] as usize].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n0); // duplicate (reversed)
        b.add_edge(n0, n1); // duplicate
        b.add_edge(n0, n0); // self loop
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(n0), &[n1]);
        assert_eq!(g.neighbors(n1), &[n0]);
    }

    #[test]
    fn directed_dedup_keeps_antiparallel() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n0, n1);
        b.add_edge(n1, n0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::undirected();
        let first = b.add_nodes(10, Label(2));
        assert_eq!(first, NodeId(0));
        assert_eq!(b.num_nodes(), 10);
        b.set_label(NodeId(3), Label(5));
        let g = b.build();
        assert_eq!(g.label(NodeId(0)), Label(2));
        assert_eq!(g.label(NodeId(3)), Label(5));
        assert_eq!(g.num_labels(), 6);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::undirected();
        for _ in 0..6 {
            b.add_node(Label(0));
        }
        // Insert edges in scrambled order.
        for &t in &[5u32, 2, 4, 1, 3] {
            b.add_edge(NodeId(0), NodeId(t));
        }
        let g = b.build();
        let ns: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|n| n.0).collect();
        assert_eq!(ns, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn attributes_survive_build() {
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.set_node_attr(n0, "org", "acme");
        b.set_edge_attr(n0, n1, "since", 2001i64);
        let g = b.build();
        assert_eq!(g.node_attr(n0, "org"), Some(&AttrValue::Str("acme".into())));
        assert_eq!(g.edge_attr(n1, n0, "since"), Some(&AttrValue::Int(2001)));
    }

    #[test]
    fn build_drops_orphaned_edge_attrs() {
        // Attrs on a self-loop and on a never-added edge must not survive
        // build; the duplicate-edge attr keys collapse to the surviving
        // normalized key and stay.
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n0, n0); // self loop, dropped at build
        b.set_edge_attr(n0, n0, "w", 1i64); // orphaned by the self-loop drop
        b.set_edge_attr(n1, n2, "w", 2i64); // edge (1,2) never added
        b.set_edge_attr(n1, n0, "w", 3i64); // normalized to surviving (0,1)
        let g = b.build();
        assert_eq!(g.edge_attr(n0, n0, "w"), None);
        assert_eq!(g.edge_attr(n1, n2, "w"), None);
        assert_eq!(g.edge_attr(n0, n1, "w"), Some(&AttrValue::Int(3)));

        // A column that becomes entirely orphaned disappears.
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.set_edge_attr(n0, n0, "ghost", true);
        let g = b.build();
        assert!(g.edge_attrs().is_empty());
        assert_eq!(g.edge_attrs().attribute_names().count(), 0);
    }

    #[test]
    fn orphaned_edge_attrs_do_not_perturb_fingerprint() {
        let clean = {
            let mut b = GraphBuilder::undirected();
            let n0 = b.add_node(Label(0));
            let n1 = b.add_node(Label(0));
            b.add_edge(n0, n1);
            b.build()
        };
        let with_orphans = {
            let mut b = GraphBuilder::undirected();
            let n0 = b.add_node(Label(0));
            let n1 = b.add_node(Label(0));
            b.add_edge(n0, n1);
            b.set_edge_attr(n0, n0, "w", 9i64);
            b.build()
        };
        assert_eq!(clean.fingerprint(), with_orphans.fingerprint());
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn edge_to_missing_node_panics() {
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        b.add_edge(n0, NodeId(7));
    }

    #[test]
    fn isolated_nodes_have_empty_neighborhoods() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(3, Label(0));
        let g = b.build();
        for n in g.node_ids() {
            assert!(g.neighbors(n).is_empty());
        }
    }
}
