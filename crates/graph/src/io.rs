//! Plain-text graph serialization.
//!
//! A deliberately simple, self-describing line format so generated
//! datasets can be inspected, diffed, and shared:
//!
//! ```text
//! # egocensus graph v1
//! graph <directed|undirected> nodes=<n>
//! node <id> <label> [key=value ...]
//! edge <a> <b> [key=value ...]
//! ```
//!
//! `node` lines may be omitted for nodes with label 0 and no attributes.
//! Attribute values are typed by syntax: `123` is an Int, `1.5` a Float,
//! `true`/`false` Bool, anything else a Str (no spaces).

use crate::attrs::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::{Label, NodeId};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from graph deserialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Serialize `g` to `w` in the v1 text format.
pub fn write_graph<W: Write>(g: &Graph, w: &mut W) -> std::io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "# egocensus graph v1").unwrap();
    writeln!(
        buf,
        "graph {} nodes={}",
        if g.is_directed() {
            "directed"
        } else {
            "undirected"
        },
        g.num_nodes()
    )
    .unwrap();
    for n in g.node_ids() {
        let label = g.label(n);
        let mut attrs: Vec<(String, String)> = g
            .node_attrs()
            .attribute_names()
            .filter_map(|name| {
                g.node_attr(n, name)
                    .map(|v| (name.to_string(), format_value(v)))
            })
            .collect();
        attrs.sort();
        if label != Label::UNLABELED || !attrs.is_empty() {
            write!(buf, "node {} {}", n.0, label.0).unwrap();
            for (k, v) in attrs {
                write!(buf, " {k}={v}").unwrap();
            }
            buf.push('\n');
        }
        if buf.len() > 1 << 16 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    for (a, b) in g.edges() {
        write!(buf, "edge {} {}", a.0, b.0).unwrap();
        let mut attrs: Vec<(String, String)> = g
            .edge_attrs()
            .attribute_names()
            .filter_map(|name| {
                g.edge_attr(a, b, name)
                    .map(|v| (name.to_string(), format_value(v)))
            })
            .collect();
        attrs.sort();
        for (k, v) in attrs {
            write!(buf, " {k}={v}").unwrap();
        }
        buf.push('\n');
        if buf.len() > 1 << 16 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    w.write_all(buf.as_bytes())
}

fn format_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => {
            // Ensure floats round-trip as floats even when integral.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        AttrValue::Str(s) => s.clone(),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn parse_value(s: &str) -> AttrValue {
    if s == "true" {
        return AttrValue::Bool(true);
    }
    if s == "false" {
        return AttrValue::Bool(false);
    }
    if let Ok(i) = s.parse::<i64>() {
        return AttrValue::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return AttrValue::Float(f);
    }
    AttrValue::Str(s.to_string())
}

/// Deserialize a graph from `r` in the v1 text format.
pub fn read_graph<R: Read>(r: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(r);
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("graph") => {
                let dir = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing directedness"))?;
                let directed = match dir {
                    "directed" => true,
                    "undirected" => false,
                    other => return Err(parse_err(lineno, format!("bad directedness `{other}`"))),
                };
                let nodes_kv = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing nodes=<n>"))?;
                let n: usize = nodes_kv
                    .strip_prefix("nodes=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad nodes=<n>"))?;
                let mut b = if directed {
                    GraphBuilder::directed()
                } else {
                    GraphBuilder::undirected()
                };
                b.add_nodes(n, Label::UNLABELED);
                builder = Some(b);
            }
            Some("node") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "node before graph header"))?;
                let id: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad node id"))?;
                let label: u16 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad label"))?;
                if id as usize >= b.num_nodes() {
                    return Err(parse_err(lineno, format!("node id {id} out of range")));
                }
                b.set_label(NodeId(id), Label(label));
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, format!("bad attr `{kv}`")))?;
                    b.set_node_attr(NodeId(id), k, parse_value(v));
                }
            }
            Some("edge") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "edge before graph header"))?;
                let a: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge source"))?;
                let c: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge target"))?;
                if a as usize >= b.num_nodes() || c as usize >= b.num_nodes() {
                    return Err(parse_err(lineno, "edge endpoint out of range"));
                }
                b.add_edge(NodeId(a), NodeId(c));
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, format!("bad attr `{kv}`")))?;
                    b.set_edge_attr(NodeId(a), NodeId(c), k, parse_value(v));
                }
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record `{other}`")));
            }
            None => unreachable!("empty lines filtered above"),
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| parse_err(0, "missing graph header"))
}

/// Read a plain edge list (SNAP / common research format): one `src dst`
/// pair per line, whitespace-separated, `#`/`%` comment lines ignored.
/// Node ids are taken literally (the graph allocates `0..=max_id` nodes);
/// all nodes get [`Label::UNLABELED`].
pub fn read_edge_list<R: Read>(r: R, directed: bool) -> Result<Graph, IoError> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let a: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad source id"))?;
        let b: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad target id"))?;
        max_id = max_id.max(a).max(b);
        edges.push((a, b));
    }
    let mut builder = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    if !edges.is_empty() || max_id > 0 {
        builder.add_nodes(max_id as usize + 1, Label::UNLABELED);
    }
    for (a, b) in edges {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    Ok(builder.build())
}

/// Serialize to an in-memory string.
pub fn to_string(g: &Graph) -> String {
    let mut out = Vec::new();
    write_graph(g, &mut out).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("format is ASCII")
}

/// Deserialize from a string.
pub fn from_str(s: &str) -> Result<Graph, IoError> {
    read_graph(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::undirected();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(0));
        let d = b.add_node(Label(2));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.set_node_attr(a, "name", "alice");
        b.set_node_attr(a, "age", 33i64);
        b.set_edge_attr(a, c, "w", 0.5f64);
        b.build()
    }

    #[test]
    fn roundtrip_undirected() {
        let g = sample();
        let text = to_string(&g);
        let g2 = from_str(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(!g2.is_directed());
        for n in g.node_ids() {
            assert_eq!(g2.label(n), g.label(n));
            assert_eq!(g2.neighbors(n), g.neighbors(n));
        }
        assert_eq!(
            g2.node_attr(NodeId(0), "name"),
            Some(&AttrValue::Str("alice".into()))
        );
        assert_eq!(g2.node_attr(NodeId(0), "age"), Some(&AttrValue::Int(33)));
        assert_eq!(
            g2.edge_attr(NodeId(0), NodeId(1), "w"),
            Some(&AttrValue::Float(0.5))
        );
    }

    #[test]
    fn roundtrip_directed() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(2), NodeId(0));
        let g = b.build();
        let g2 = from_str(&to_string(&g)).unwrap();
        assert!(g2.is_directed());
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(g2.has_directed_edge(NodeId(1), NodeId(0)));
        assert!(g2.has_directed_edge(NodeId(2), NodeId(0)));
        assert!(!g2.has_directed_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn float_attrs_roundtrip_as_floats() {
        let mut b = GraphBuilder::undirected();
        let n = b.add_node(Label(0));
        b.set_node_attr(n, "x", 2.0f64);
        let g = b.build();
        let g2 = from_str(&to_string(&g)).unwrap();
        assert_eq!(g2.node_attr(NodeId(0), "x"), Some(&AttrValue::Float(2.0)));
    }

    #[test]
    fn error_on_garbage() {
        assert!(from_str("nonsense 1 2").is_err());
        assert!(from_str("").is_err());
        assert!(from_str("edge 0 1").is_err()); // before header
        assert!(from_str("graph undirected nodes=1\nedge 0 5").is_err()); // out of range
        assert!(from_str("graph sideways nodes=1").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ngraph undirected nodes=2\n# another\nedge 0 1\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_import() {
        let text = "# a SNAP-style comment\n% another\n0 1\n1 2\n2 0\n2 5\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 6); // ids 0..=5, gaps become isolated nodes
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_undirected_edge(NodeId(2), NodeId(5)));
        assert!(g.neighbors(NodeId(3)).is_empty());

        let d = read_edge_list("0 1\n1 0\n".as_bytes(), true).unwrap();
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), 2);
    }

    #[test]
    fn edge_list_errors_and_empty() {
        assert!(read_edge_list("0 x".as_bytes(), false).is_err());
        assert!(read_edge_list("justone".as_bytes(), false).is_err());
        let empty = read_edge_list("# nothing\n".as_bytes(), false).unwrap();
        assert_eq!(empty.num_nodes(), 0);
    }

    #[test]
    fn value_parsing_types() {
        assert_eq!(parse_value("42"), AttrValue::Int(42));
        assert_eq!(parse_value("4.5"), AttrValue::Float(4.5));
        assert_eq!(parse_value("true"), AttrValue::Bool(true));
        assert_eq!(parse_value("hello"), AttrValue::Str("hello".into()));
    }
}
