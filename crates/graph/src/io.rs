//! Plain-text graph serialization.
//!
//! A deliberately simple, self-describing line format so generated
//! datasets can be inspected, diffed, and shared:
//!
//! ```text
//! # egocensus graph v1
//! graph <directed|undirected> nodes=<n>
//! node <id> <label> [key=value ...]
//! edge <a> <b> [key=value ...]
//! ```
//!
//! `node` lines may be omitted for nodes with label 0 and no attributes.
//! Attribute values are typed by syntax: `123` is an Int, `1.5` a Float,
//! `true`/`false` Bool, anything else a Str. String values that would
//! be ambiguous — empty, containing whitespace, `=`, `"`, control
//! characters, or text that re-parses as another type (`"123"`,
//! `"true"`) — are written double-quoted with `%XX` percent-escapes for
//! the unsafe bytes, and a quoted token always reads back as a Str.
//!
//! [`load_path`] / [`save_path`] dispatch on the file extension:
//! `.egb` selects the binary mmap format ([`crate::store`]), anything
//! else the text formats here (v1 if the first non-comment line is a
//! `graph` header, SNAP-style edge list otherwise).

use crate::attrs::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::{Label, NodeId};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from graph deserialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with a text file, with a line number.
    Parse { line: usize, message: String },
    /// Structural problem with a binary file.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(message) => write!(f, "invalid binary graph: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Serialize `g` to `w` in the v1 text format.
///
/// Fails with [`std::io::ErrorKind::InvalidData`] on an attribute *key*
/// that cannot appear on a `key=value` line (empty, whitespace, `=`, or
/// control characters); ambiguous `Str` *values* are quoted and escaped
/// instead (see [`format_str_value`]).
pub fn write_graph<W: Write>(g: &Graph, w: &mut W) -> std::io::Result<()> {
    for name in g
        .node_attrs()
        .attribute_names()
        .chain(g.edge_attrs().attribute_names())
    {
        if !valid_attr_key(name) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("attribute key `{name}` cannot be written to the text format"),
            ));
        }
    }
    let mut buf = String::new();
    writeln!(buf, "# egocensus graph v1").unwrap();
    writeln!(
        buf,
        "graph {} nodes={}",
        if g.is_directed() {
            "directed"
        } else {
            "undirected"
        },
        g.num_nodes()
    )
    .unwrap();
    for n in g.node_ids() {
        let label = g.label(n);
        let mut attrs: Vec<(String, String)> = g
            .node_attrs()
            .attribute_names()
            .filter_map(|name| {
                g.node_attr(n, name)
                    .map(|v| (name.to_string(), format_value(v)))
            })
            .collect();
        attrs.sort();
        if label != Label::UNLABELED || !attrs.is_empty() {
            write!(buf, "node {} {}", n.0, label.0).unwrap();
            for (k, v) in attrs {
                write!(buf, " {k}={v}").unwrap();
            }
            buf.push('\n');
        }
        if buf.len() > 1 << 16 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    for (a, b) in g.edges() {
        write!(buf, "edge {} {}", a.0, b.0).unwrap();
        let mut attrs: Vec<(String, String)> = g
            .edge_attrs()
            .attribute_names()
            .filter_map(|name| {
                g.edge_attr(a, b, name)
                    .map(|v| (name.to_string(), format_value(v)))
            })
            .collect();
        attrs.sort();
        for (k, v) in attrs {
            write!(buf, " {k}={v}").unwrap();
        }
        buf.push('\n');
        if buf.len() > 1 << 16 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    w.write_all(buf.as_bytes())
}

fn format_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => {
            // Ensure floats round-trip as floats even when integral.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        AttrValue::Str(s) => format_str_value(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Serialize a `Str` value so it reads back as the same `Str`.
///
/// A plain token is written verbatim. A value that would be ambiguous —
/// empty, containing whitespace (which would split the line), `=`, `"`,
/// or control characters, or text that [`parse_value`] would type as
/// Int/Float/Bool (`"123"`, `"1.5"`, `"true"`) — is wrapped in double
/// quotes with the unsafe bytes percent-escaped; the reader decodes a
/// quoted token unconditionally as a `Str`.
fn format_str_value(s: &str) -> String {
    let needs_quoting = s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || c.is_control() || c == '=' || c == '"')
        || !matches!(parse_value(s), Ok(AttrValue::Str(_)));
    if !needs_quoting {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        if c.is_whitespace() || c.is_control() || c == '=' || c == '"' || c == '%' {
            let mut utf8 = [0u8; 4];
            for byte in c.encode_utf8(&mut utf8).bytes() {
                out.push_str(&format!("%{byte:02X}"));
            }
        } else {
            out.push(c);
        }
    }
    out.push('"');
    out
}

/// True if `key` can appear verbatim on a `key=value` line.
fn valid_attr_key(key: &str) -> bool {
    !key.is_empty()
        && !key
            .chars()
            .any(|c| c.is_whitespace() || c.is_control() || c == '=')
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Decode the interior of a quoted string token.
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let (hi, lo) = match (bytes.get(i + 1), bytes.get(i + 2)) {
                (Some(&a), Some(&b)) => (hex_digit(a), hex_digit(b)),
                _ => (None, None),
            };
            match (hi, lo) {
                (Some(hi), Some(lo)) => {
                    out.push(hi << 4 | lo);
                    i += 3;
                }
                _ => return Err(format!("bad percent escape in `{s}`")),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent escapes in `{s}` are not UTF-8"))
}

/// Type an attribute value token. `raw` is the token as it appears on
/// the line; a `"..."`-quoted token percent-decodes to a `Str`, anything
/// else is typed by syntax.
fn parse_value(raw: &str) -> Result<AttrValue, String> {
    if raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"') {
        return percent_decode(&raw[1..raw.len() - 1]).map(AttrValue::Str);
    }
    // The writer fully quotes any value containing `"` (and quoted
    // tokens cannot contain whitespace — escapes cover it), so a stray
    // quote here is always a mangled/truncated quoted string.
    if raw.contains('"') {
        return Err(format!("unterminated quoted string `{raw}`"));
    }
    if raw == "true" {
        return Ok(AttrValue::Bool(true));
    }
    if raw == "false" {
        return Ok(AttrValue::Bool(false));
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(AttrValue::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(AttrValue::Float(f));
    }
    Ok(AttrValue::Str(raw.to_string()))
}

/// Deserialize a graph from `r` in the v1 text format.
pub fn read_graph<R: Read>(r: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(r);
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("graph") => {
                if builder.is_some() {
                    return Err(parse_err(
                        lineno,
                        "duplicate graph header (would discard previously parsed nodes/edges)",
                    ));
                }
                let dir = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing directedness"))?;
                let directed = match dir {
                    "directed" => true,
                    "undirected" => false,
                    other => return Err(parse_err(lineno, format!("bad directedness `{other}`"))),
                };
                let nodes_kv = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing nodes=<n>"))?;
                let n: usize = nodes_kv
                    .strip_prefix("nodes=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad nodes=<n>"))?;
                let mut b = if directed {
                    GraphBuilder::directed()
                } else {
                    GraphBuilder::undirected()
                };
                b.add_nodes(n, Label::UNLABELED);
                builder = Some(b);
            }
            Some("node") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "node before graph header"))?;
                let id: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad node id"))?;
                let label: u16 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad label"))?;
                if id as usize >= b.num_nodes() {
                    return Err(parse_err(lineno, format!("node id {id} out of range")));
                }
                b.set_label(NodeId(id), Label(label));
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, format!("bad attr `{kv}`")))?;
                    let value = parse_value(v).map_err(|m| parse_err(lineno, m))?;
                    b.set_node_attr(NodeId(id), k, value);
                }
            }
            Some("edge") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "edge before graph header"))?;
                let a: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge source"))?;
                let c: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad edge target"))?;
                if a as usize >= b.num_nodes() || c as usize >= b.num_nodes() {
                    return Err(parse_err(lineno, "edge endpoint out of range"));
                }
                b.add_edge(NodeId(a), NodeId(c));
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, format!("bad attr `{kv}`")))?;
                    let value = parse_value(v).map_err(|m| parse_err(lineno, m))?;
                    b.set_edge_attr(NodeId(a), NodeId(c), k, value);
                }
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record `{other}`")));
            }
            None => unreachable!("empty lines filtered above"),
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| parse_err(0, "missing graph header"))
}

/// Read a plain edge list (SNAP / common research format): one `src dst`
/// pair per line, whitespace-separated, `#`/`%` comment lines ignored.
/// Node ids are taken literally (the graph allocates `0..=max_id` nodes);
/// all nodes get [`Label::UNLABELED`].
pub fn read_edge_list<R: Read>(r: R, directed: bool) -> Result<Graph, IoError> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let a: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad source id"))?;
        let b: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad target id"))?;
        max_id = max_id.max(a).max(b);
        edges.push((a, b));
    }
    let mut builder = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    if !edges.is_empty() || max_id > 0 {
        builder.add_nodes(max_id as usize + 1, Label::UNLABELED);
    }
    for (a, b) in edges {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    Ok(builder.build())
}

/// Load a graph from `path`, picking the storage backend by extension:
///
/// * `.egb` — the binary format, opened through the read-only mmap
///   backend ([`crate::store::open_binary`]); O(1) in graph size.
/// * anything else — text, heap-backed: the v1 format if the first
///   non-comment line is a `graph` header, otherwise a SNAP-style
///   edge list (loaded as undirected).
pub fn load_path(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    if path.extension().and_then(|e| e.to_str()) == Some(crate::store::BINARY_EXTENSION) {
        return crate::store::open_binary(path);
    }
    let text = std::fs::read_to_string(path)?;
    let is_v1 = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'))
        .is_some_and(|l| l.starts_with("graph "));
    if is_v1 {
        read_graph(text.as_bytes())
    } else {
        read_edge_list(text.as_bytes(), false)
    }
}

/// Write a graph to `path`, picking the format by extension: `.egb`
/// writes the binary mmap format, anything else the v1 text format.
pub fn save_path(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    if path.extension().and_then(|e| e.to_str()) == Some(crate::store::BINARY_EXTENSION) {
        return crate::store::save_binary(g, path).map_err(IoError::Io);
    }
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_graph(g, &mut w)?;
    Ok(w.flush()?)
}

/// Serialize to an in-memory string.
pub fn to_string(g: &Graph) -> String {
    let mut out = Vec::new();
    write_graph(g, &mut out).expect("in-memory write with serializable attribute keys");
    String::from_utf8(out).expect("format is UTF-8")
}

/// Deserialize from a string.
pub fn from_str(s: &str) -> Result<Graph, IoError> {
    read_graph(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::undirected();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(0));
        let d = b.add_node(Label(2));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.set_node_attr(a, "name", "alice");
        b.set_node_attr(a, "age", 33i64);
        b.set_edge_attr(a, c, "w", 0.5f64);
        b.build()
    }

    #[test]
    fn roundtrip_undirected() {
        let g = sample();
        let text = to_string(&g);
        let g2 = from_str(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(!g2.is_directed());
        for n in g.node_ids() {
            assert_eq!(g2.label(n), g.label(n));
            assert_eq!(g2.neighbors(n), g.neighbors(n));
        }
        assert_eq!(
            g2.node_attr(NodeId(0), "name"),
            Some(&AttrValue::Str("alice".into()))
        );
        assert_eq!(g2.node_attr(NodeId(0), "age"), Some(&AttrValue::Int(33)));
        assert_eq!(
            g2.edge_attr(NodeId(0), NodeId(1), "w"),
            Some(&AttrValue::Float(0.5))
        );
    }

    #[test]
    fn roundtrip_directed() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(2), NodeId(0));
        let g = b.build();
        let g2 = from_str(&to_string(&g)).unwrap();
        assert!(g2.is_directed());
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_directed_edge(NodeId(0), NodeId(1)));
        assert!(g2.has_directed_edge(NodeId(1), NodeId(0)));
        assert!(g2.has_directed_edge(NodeId(2), NodeId(0)));
        assert!(!g2.has_directed_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn float_attrs_roundtrip_as_floats() {
        let mut b = GraphBuilder::undirected();
        let n = b.add_node(Label(0));
        b.set_node_attr(n, "x", 2.0f64);
        let g = b.build();
        let g2 = from_str(&to_string(&g)).unwrap();
        assert_eq!(g2.node_attr(NodeId(0), "x"), Some(&AttrValue::Float(2.0)));
    }

    #[test]
    fn error_on_garbage() {
        assert!(from_str("nonsense 1 2").is_err());
        assert!(from_str("").is_err());
        assert!(from_str("edge 0 1").is_err()); // before header
        assert!(from_str("graph undirected nodes=1\nedge 0 5").is_err()); // out of range
        assert!(from_str("graph sideways nodes=1").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ngraph undirected nodes=2\n# another\nedge 0 1\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_import() {
        let text = "# a SNAP-style comment\n% another\n0 1\n1 2\n2 0\n2 5\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 6); // ids 0..=5, gaps become isolated nodes
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_undirected_edge(NodeId(2), NodeId(5)));
        assert!(g.neighbors(NodeId(3)).is_empty());

        let d = read_edge_list("0 1\n1 0\n".as_bytes(), true).unwrap();
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), 2);
    }

    #[test]
    fn edge_list_errors_and_empty() {
        assert!(read_edge_list("0 x".as_bytes(), false).is_err());
        assert!(read_edge_list("justone".as_bytes(), false).is_err());
        let empty = read_edge_list("# nothing\n".as_bytes(), false).unwrap();
        assert_eq!(empty.num_nodes(), 0);
    }

    #[test]
    fn value_parsing_types() {
        assert_eq!(parse_value("42").unwrap(), AttrValue::Int(42));
        assert_eq!(parse_value("4.5").unwrap(), AttrValue::Float(4.5));
        assert_eq!(parse_value("true").unwrap(), AttrValue::Bool(true));
        assert_eq!(
            parse_value("hello").unwrap(),
            AttrValue::Str("hello".into())
        );
    }

    #[test]
    fn ambiguous_str_values_roundtrip_as_str() {
        // Regression: these used to be written verbatim and re-read as
        // Int/Float/Bool, or to corrupt the line entirely.
        let tricky = [
            "123",
            "1.5",
            "-7",
            "true",
            "false",
            "inf",
            "NaN",
            "has space",
            "tab\there",
            "a=b",
            "\"quoted\"",
            "",
            " ",
            "50%",
            "%41",
            "mixed =\" %\nline",
            "naïve café",
        ];
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        for (i, s) in tricky.iter().enumerate() {
            b.set_node_attr(n0, &format!("a{i}"), AttrValue::Str(s.to_string()));
            b.set_edge_attr(n0, n1, &format!("e{i}"), AttrValue::Str(s.to_string()));
        }
        let g = b.build();
        let g2 = from_str(&to_string(&g)).unwrap();
        for (i, s) in tricky.iter().enumerate() {
            assert_eq!(
                g2.node_attr(n0, &format!("a{i}")),
                Some(&AttrValue::Str(s.to_string())),
                "node attr {s:?}"
            );
            assert_eq!(
                g2.edge_attr(n0, n1, &format!("e{i}")),
                Some(&AttrValue::Str(s.to_string())),
                "edge attr {s:?}"
            );
        }
        assert_eq!(g2.fingerprint(), g.fingerprint());
    }

    #[test]
    fn unquoted_plain_strings_stay_human_readable() {
        let mut b = GraphBuilder::undirected();
        let n = b.add_node(Label(0));
        b.set_node_attr(n, "name", "alice");
        let g = b.build();
        let text = to_string(&g);
        assert!(text.contains("name=alice"), "{text}");
    }

    #[test]
    fn duplicate_graph_header_is_an_error() {
        let text = "graph undirected nodes=2\nedge 0 1\ngraph undirected nodes=9\n";
        let err = from_str(text).unwrap_err();
        match err {
            IoError::Parse { line, ref message } => {
                assert_eq!(line, 3, "error should carry the offending line");
                assert!(message.contains("duplicate graph header"), "{message}");
            }
            other => panic!("expected Parse error, got {other}"),
        }
    }

    #[test]
    fn bad_percent_escape_is_an_error() {
        let text = "graph undirected nodes=1\nnode 0 0 k=\"%zz\"\n";
        let err = from_str(text).unwrap_err();
        assert!(err.to_string().contains("percent escape"), "{err}");
    }

    #[test]
    fn unwritable_attr_key_rejected_on_write() {
        let mut b = GraphBuilder::undirected();
        let n = b.add_node(Label(0));
        b.set_node_attr(n, "bad key", 1i64);
        let g = b.build();
        let err = write_graph(&g, &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_and_save_path_dispatch_on_extension() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let txt = dir.join(format!("egocensus_io_{pid}.txt"));
        let egb = dir.join(format!("egocensus_io_{pid}.egb"));
        let g = sample();
        save_path(&g, &txt).unwrap();
        save_path(&g, &egb).unwrap();
        let from_txt = load_path(&txt).unwrap();
        let from_egb = load_path(&egb).unwrap();
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&egb).ok();
        assert_eq!(from_txt.storage_kind(), "mem");
        assert_eq!(from_egb.storage_kind(), "mmap");
        assert_eq!(from_txt.fingerprint(), g.fingerprint());
        assert_eq!(from_egb.fingerprint(), g.fingerprint());
    }
}
