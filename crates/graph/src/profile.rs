//! Node profiles: the per-label neighbor-count index (Section III-A).
//!
//! A node's profile is the vector `<|N^l1(n)|, ..., |N^lL(n)|>` of neighbor
//! counts per label. A database node `n` is a candidate for a pattern node
//! `v` iff `P(v) ⊑ P(n)` (containment: `n` has at least as many neighbors
//! of every label as `v`). The paper stores profiles "along with the graph
//! as an index" — [`ProfileIndex`] is that index, computed once per graph.

use crate::graph::Graph;
use crate::ids::{Label, NodeId};

/// A single node's profile: sorted `(label, count)` pairs for labels with
/// at least one neighbor. Sparse because real label spaces are small but a
/// node usually touches only a few of them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeProfile {
    entries: Vec<(Label, u32)>,
}

impl NodeProfile {
    /// Compute the profile of `n` in `g` (undirected-view neighbors).
    pub fn of(g: &Graph, n: NodeId) -> Self {
        Self::from_neighbor_labels(g.neighbors(n).iter().map(|&m| g.label(m)))
    }

    /// Build from an iterator of neighbor labels.
    pub fn from_neighbor_labels(labels: impl Iterator<Item = Label>) -> Self {
        let mut entries: Vec<(Label, u32)> = Vec::new();
        for l in labels {
            match entries.binary_search_by_key(&l, |&(el, _)| el) {
                Ok(i) => entries[i].1 += 1,
                Err(i) => entries.insert(i, (l, 1)),
            }
        }
        NodeProfile { entries }
    }

    /// Count of neighbors with label `l`.
    pub fn count(&self, l: Label) -> u32 {
        self.entries
            .binary_search_by_key(&l, |&(el, _)| el)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Total neighbor count (the node's degree).
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Containment test: `self ⊑ other` iff for every label,
    /// `self.count(l) <= other.count(l)`.
    pub fn contained_in(&self, other: &NodeProfile) -> bool {
        // Both entry lists are sorted by label: merge-scan.
        let mut oi = 0;
        for &(l, c) in &self.entries {
            while oi < other.entries.len() && other.entries[oi].0 < l {
                oi += 1;
            }
            if oi >= other.entries.len() || other.entries[oi].0 != l || other.entries[oi].1 < c {
                return false;
            }
        }
        true
    }

    /// The sorted `(label, count)` entries.
    pub fn entries(&self) -> &[(Label, u32)] {
        &self.entries
    }
}

/// Profiles for every node of a graph, stored in one flat arena.
#[derive(Clone, Debug)]
pub struct ProfileIndex {
    offsets: Vec<u32>,
    entries: Vec<(Label, u32)>,
}

impl ProfileIndex {
    /// Compute the index for `g`. O(sum of degrees).
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        let mut counts = vec![0u32; g.num_labels() as usize];
        let mut touched: Vec<Label> = Vec::new();
        for node in g.node_ids() {
            for &m in g.neighbors(node) {
                let l = g.label(m);
                if counts[l.index()] == 0 {
                    touched.push(l);
                }
                counts[l.index()] += 1;
            }
            touched.sort_unstable();
            for &l in &touched {
                entries.push((l, counts[l.index()]));
                counts[l.index()] = 0;
            }
            touched.clear();
            offsets.push(entries.len() as u32);
        }
        ProfileIndex { offsets, entries }
    }

    /// The profile entries of `n` as a sorted `(label, count)` slice.
    #[inline]
    pub fn entries(&self, n: NodeId) -> &[(Label, u32)] {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Containment test `needle ⊑ profile(n)` without materializing a
    /// [`NodeProfile`] for `n`.
    #[inline]
    pub fn contains(&self, n: NodeId, needle: &NodeProfile) -> bool {
        let hay = self.entries(n);
        let mut oi = 0;
        for &(l, c) in needle.entries() {
            while oi < hay.len() && hay[oi].0 < l {
                oi += 1;
            }
            if oi >= hay.len() || hay[oi].0 != l || hay[oi].1 < c {
                return false;
            }
        }
        true
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Star: center 0 with two label-1 leaves and one label-2 leaf.
    fn star() -> Graph {
        let mut b = GraphBuilder::undirected();
        let c = b.add_node(Label(0));
        let l1a = b.add_node(Label(1));
        let l1b = b.add_node(Label(1));
        let l2 = b.add_node(Label(2));
        b.add_edge(c, l1a);
        b.add_edge(c, l1b);
        b.add_edge(c, l2);
        b.build()
    }

    #[test]
    fn profile_counts() {
        let g = star();
        let p = NodeProfile::of(&g, NodeId(0));
        assert_eq!(p.count(Label(1)), 2);
        assert_eq!(p.count(Label(2)), 1);
        assert_eq!(p.count(Label(0)), 0);
        assert_eq!(p.total(), 3);

        let leaf = NodeProfile::of(&g, NodeId(1));
        assert_eq!(leaf.count(Label(0)), 1);
        assert_eq!(leaf.total(), 1);
    }

    #[test]
    fn containment() {
        let g = star();
        let center = NodeProfile::of(&g, NodeId(0));
        let one_l1 = NodeProfile::from_neighbor_labels([Label(1)].into_iter());
        let two_l1 = NodeProfile::from_neighbor_labels([Label(1), Label(1)].into_iter());
        let three_l1 = NodeProfile::from_neighbor_labels([Label(1); 3].into_iter());
        let l3 = NodeProfile::from_neighbor_labels([Label(3)].into_iter());

        assert!(one_l1.contained_in(&center));
        assert!(two_l1.contained_in(&center));
        assert!(!three_l1.contained_in(&center));
        assert!(!l3.contained_in(&center));
        // Empty profile is contained in everything.
        assert!(NodeProfile::default().contained_in(&center));
        assert!(NodeProfile::default().contained_in(&NodeProfile::default()));
        // Nothing nonempty is contained in the empty profile.
        assert!(!one_l1.contained_in(&NodeProfile::default()));
    }

    #[test]
    fn index_matches_per_node_profiles() {
        let g = star();
        let idx = ProfileIndex::build(&g);
        assert_eq!(idx.num_nodes(), 4);
        for n in g.node_ids() {
            let p = NodeProfile::of(&g, n);
            assert_eq!(idx.entries(n), p.entries(), "node {n:?}");
            assert!(idx.contains(n, &p));
        }
    }

    #[test]
    fn index_containment_agrees_with_profile_containment() {
        let g = star();
        let idx = ProfileIndex::build(&g);
        let needle = NodeProfile::from_neighbor_labels([Label(1), Label(2)].into_iter());
        for n in g.node_ids() {
            let full = NodeProfile::of(&g, n);
            assert_eq!(idx.contains(n, &needle), needle.contained_in(&full));
        }
    }
}
