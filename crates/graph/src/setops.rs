//! Adaptive set-intersection kernels.
//!
//! Every matcher and census path bottoms out in sorted-set intersection:
//! candidate-neighbor construction intersects adjacency lists with
//! candidate lists, match extraction intersects CN lists along the search
//! order, and the pairwise/approx census paths intersect neighborhood
//! balls. Subgraph-counting cost is dominated by exactly these adjacency
//! intersections (Silvestri; Deng et al.), so this module provides the
//! kernels once, allocation-free, and picks the right one per call:
//!
//! * **merge** — the scalar two-pointer merge; fastest when the inputs
//!   are comparably sized.
//! * **gallop** — exponential (doubling) search from a moving cursor in
//!   the longer list; `O(s · log(l/s))`, the winner on skewed sizes.
//! * **bitset** — a fixed-width `u64`-block membership bitmap
//!   ([`NodeBitset`]) with build-once / intersect-many semantics, for
//!   candidate sets that get intersected against many adjacency lists
//!   (CN-set initialization, the prune fixpoint).
//!
//! The [`intersect_into`] dispatcher chooses merge vs gallop from the
//! size ratio ([`GALLOP_RATIO`]); call sites with reuse opt into bitsets
//! via [`NodeBitset`] directly. Every choice is tallied in a
//! [`SetOpStats`] so the dispatcher's behavior is observable (the matcher
//! folds these into its `MatchStats`; long-running processes expose the
//! process-wide [`global_snapshot`]).
//!
//! The kernel can be forced process-wide for equivalence testing with the
//! `EGO_SETOPS` environment variable (`merge`, `gallop`, `bitset`,
//! `adaptive`); all kernels produce byte-identical sorted output.

use crate::ids::NodeId;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Default long/short size ratio beyond which galloping beats the linear
/// merge (the measured crossover on uniform graphs).
pub const GALLOP_RATIO: usize = 16;

/// Default minimum reuse count (intersections sharing one right-hand
/// set) for a [`NodeBitset`] build to amortize in the adaptive policy.
pub const BITSET_MIN_REUSE: usize = 64;

/// Default minimum right-hand set size for a bitset build to beat
/// per-call galloping in the adaptive policy.
pub const BITSET_MIN_SET: usize = 1024;

/// The adaptive dispatcher's thresholds. Defaults are the measured
/// constants above; `ANALYZE` re-seeds them per graph shape through
/// [`set_tuning`] (high degree skew lowers the gallop ratio, density
/// lowers the bitset bars). Tuning never changes results — all kernels
/// are element-identical — only which kernel serves a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetOpsTuning {
    /// Long/short size ratio that engages galloping.
    pub gallop_ratio: usize,
    /// Minimum reuse count for a bitset build to amortize.
    pub bitset_min_reuse: usize,
    /// Minimum set size for a bitset build to amortize.
    pub bitset_min_set: usize,
}

impl Default for SetOpsTuning {
    fn default() -> Self {
        SetOpsTuning {
            gallop_ratio: GALLOP_RATIO,
            bitset_min_reuse: BITSET_MIN_REUSE,
            bitset_min_set: BITSET_MIN_SET,
        }
    }
}

// Process-wide tunable thresholds, read relaxed on the hot path (plain
// loads on x86; the dispatcher ratio test already branches).
static T_GALLOP_RATIO: AtomicUsize = AtomicUsize::new(GALLOP_RATIO);
static T_BITSET_MIN_REUSE: AtomicUsize = AtomicUsize::new(BITSET_MIN_REUSE);
static T_BITSET_MIN_SET: AtomicUsize = AtomicUsize::new(BITSET_MIN_SET);

/// Replace the process-wide adaptive thresholds (graph-shape seeding
/// from `ANALYZE`; [`SetOpsTuning::default`] restores the constants).
/// A zero `gallop_ratio` is clamped to 1 so the ratio test stays sane.
pub fn set_tuning(t: SetOpsTuning) {
    T_GALLOP_RATIO.store(t.gallop_ratio.max(1), Ordering::Relaxed);
    T_BITSET_MIN_REUSE.store(t.bitset_min_reuse, Ordering::Relaxed);
    T_BITSET_MIN_SET.store(t.bitset_min_set, Ordering::Relaxed);
}

/// The currently active adaptive thresholds.
pub fn current_tuning() -> SetOpsTuning {
    SetOpsTuning {
        gallop_ratio: T_GALLOP_RATIO.load(Ordering::Relaxed),
        bitset_min_reuse: T_BITSET_MIN_REUSE.load(Ordering::Relaxed),
        bitset_min_set: T_BITSET_MIN_SET.load(Ordering::Relaxed),
    }
}

/// Counters for kernel dispatch decisions and scratch-buffer reuse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetOpStats {
    /// Intersections executed by the two-pointer merge kernel.
    pub merge_calls: u64,
    /// Intersections executed by the galloping kernel.
    pub gallop_calls: u64,
    /// Intersections answered through a [`NodeBitset`] membership filter.
    pub bitset_calls: u64,
    /// Intersections that reused a caller scratch buffer instead of
    /// allocating a fresh `Vec` (the pre-kernel code allocated per call).
    pub saved_allocs: u64,
}

impl SetOpStats {
    /// Accumulate another tally into this one.
    pub fn add(&mut self, other: &SetOpStats) {
        self.merge_calls += other.merge_calls;
        self.gallop_calls += other.gallop_calls;
        self.bitset_calls += other.bitset_calls;
        self.saved_allocs += other.saved_allocs;
    }

    /// Total kernel invocations, all kinds.
    pub fn total_calls(&self) -> u64 {
        self.merge_calls + self.gallop_calls + self.bitset_calls
    }
}

/// Which intersection kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Always the two-pointer merge (the pre-kernel scalar baseline).
    Merge,
    /// Always exponential search.
    Gallop,
    /// Always a membership bitmap (built on the fly when no prebuilt
    /// bitset exists — slow, but exercises the bitset path everywhere).
    Bitset,
    /// Pick per call from the size ratio / reuse count. Default.
    Adaptive,
}

impl Kernel {
    /// Parse an `EGO_SETOPS` value.
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "merge" => Some(Kernel::Merge),
            "gallop" => Some(Kernel::Gallop),
            "bitset" => Some(Kernel::Bitset),
            "adaptive" | "auto" => Some(Kernel::Adaptive),
            _ => None,
        }
    }

    /// Stable lowercase name (the `EGO_SETOPS` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Merge => "merge",
            Kernel::Gallop => "gallop",
            Kernel::Bitset => "bitset",
            Kernel::Adaptive => "adaptive",
        }
    }
}

// Encoded kernel config: 0 = uninitialized, then Kernel discriminant + 1.
static KERNEL_CONFIG: AtomicU8 = AtomicU8::new(0);

fn encode(k: Kernel) -> u8 {
    match k {
        Kernel::Merge => 1,
        Kernel::Gallop => 2,
        Kernel::Bitset => 3,
        Kernel::Adaptive => 4,
    }
}

fn decode(v: u8) -> Kernel {
    match v {
        1 => Kernel::Merge,
        2 => Kernel::Gallop,
        3 => Kernel::Bitset,
        _ => Kernel::Adaptive,
    }
}

/// The process-wide kernel selection: initialized from the `EGO_SETOPS`
/// environment variable on first use (unset or unparsable means
/// [`Kernel::Adaptive`]), overridable at run time via [`set_kernel`].
pub fn configured_kernel() -> Kernel {
    let v = KERNEL_CONFIG.load(Ordering::Relaxed);
    if v != 0 {
        return decode(v);
    }
    let k = std::env::var("EGO_SETOPS")
        .ok()
        .and_then(|s| Kernel::parse(&s))
        .unwrap_or(Kernel::Adaptive);
    // A racing first read may store the same value twice; that's fine.
    KERNEL_CONFIG.store(encode(k), Ordering::Relaxed);
    k
}

/// Force the kernel selection process-wide (tests and tools; normal code
/// should let the adaptive dispatcher decide).
pub fn set_kernel(k: Kernel) {
    KERNEL_CONFIG.store(encode(k), Ordering::Relaxed);
}

// Process-wide counters, flushed coarsely (once per matcher run, not per
// call) so long-running hosts like the server can report them.
static G_MERGE: AtomicU64 = AtomicU64::new(0);
static G_GALLOP: AtomicU64 = AtomicU64::new(0);
static G_BITSET: AtomicU64 = AtomicU64::new(0);
static G_SAVED: AtomicU64 = AtomicU64::new(0);

/// Fold a finished run's tally into the process-wide counters.
pub fn record_global(s: &SetOpStats) {
    if s.merge_calls != 0 {
        G_MERGE.fetch_add(s.merge_calls, Ordering::Relaxed);
    }
    if s.gallop_calls != 0 {
        G_GALLOP.fetch_add(s.gallop_calls, Ordering::Relaxed);
    }
    if s.bitset_calls != 0 {
        G_BITSET.fetch_add(s.bitset_calls, Ordering::Relaxed);
    }
    if s.saved_allocs != 0 {
        G_SAVED.fetch_add(s.saved_allocs, Ordering::Relaxed);
    }
}

/// Snapshot of the process-wide kernel counters.
pub fn global_snapshot() -> SetOpStats {
    SetOpStats {
        merge_calls: G_MERGE.load(Ordering::Relaxed),
        gallop_calls: G_GALLOP.load(Ordering::Relaxed),
        bitset_calls: G_BITSET.load(Ordering::Relaxed),
        saved_allocs: G_SAVED.load(Ordering::Relaxed),
    }
}

/// Two-pointer merge intersection of two sorted, deduplicated slices into
/// `out` (cleared first). The scalar baseline every other kernel must be
/// element-identical to.
pub fn merge_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Counting-only two-pointer merge.
pub fn merge_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Galloping (exponential-search) intersection into `out` (cleared
/// first): for each element of the shorter list, double a probe offset
/// from a monotone cursor into the longer list, then binary-search the
/// bracketed window. `O(s · log(l/s))` — the winner when `l >> s`.
pub fn gallop_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    gallop_each(a, b, |x| out.push(x));
}

/// Counting-only galloping intersection.
pub fn gallop_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let mut n = 0;
    gallop_each(a, b, |_| n += 1);
    n
}

fn gallop_each(a: &[NodeId], b: &[NodeId], mut emit: impl FnMut(NodeId)) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    for &x in short {
        if base >= long.len() {
            break;
        }
        let mut offset = 1usize;
        while base + offset < long.len() && long[base + offset] < x {
            offset <<= 1;
        }
        let hi = (base + offset + 1).min(long.len());
        match long[base..hi].binary_search(&x) {
            Ok(i) => {
                emit(x);
                base += i + 1;
            }
            Err(i) => base += i,
        }
    }
}

/// Dispatching intersection into a caller-owned buffer (cleared first):
/// the configured kernel, or — under [`Kernel::Adaptive`] — merge vs
/// gallop by the [`GALLOP_RATIO`] size-ratio test. `out` keeps its
/// allocation across calls, which is the point: the old
/// `intersect_sorted` allocated a fresh `Vec` per call.
pub fn intersect_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>, stats: &mut SetOpStats) {
    if out.capacity() > 0 {
        stats.saved_allocs += 1;
    }
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    match configured_kernel() {
        Kernel::Merge => {
            stats.merge_calls += 1;
            merge_into(a, b, out);
        }
        Kernel::Gallop => {
            stats.gallop_calls += 1;
            gallop_into(a, b, out);
        }
        Kernel::Bitset => {
            // No prebuilt bitmap at a one-shot call site: build one over
            // the longer side. Slow by design — this mode exists so the
            // equivalence harness can drive the bitset path everywhere.
            stats.bitset_calls += 1;
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if long.is_empty() {
                out.clear();
                return;
            }
            let universe = long.last().map(|n| n.index() + 1).unwrap_or(0);
            let bits = NodeBitset::from_sorted(universe, long);
            bits.filter_into(short, out);
        }
        Kernel::Adaptive => {
            if s == 0 || l >= T_GALLOP_RATIO.load(Ordering::Relaxed) * s {
                stats.gallop_calls += 1;
                gallop_into(a, b, out);
            } else {
                stats.merge_calls += 1;
                merge_into(a, b, out);
            }
        }
    }
}

/// Counting-only dispatching intersection — no output buffer at all.
pub fn intersect_count(a: &[NodeId], b: &[NodeId], stats: &mut SetOpStats) -> usize {
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    match configured_kernel() {
        Kernel::Merge => {
            stats.merge_calls += 1;
            merge_count(a, b)
        }
        Kernel::Gallop => {
            stats.gallop_calls += 1;
            gallop_count(a, b)
        }
        Kernel::Bitset => {
            stats.bitset_calls += 1;
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            let universe = long.last().map(|n| n.index() + 1).unwrap_or(0);
            let bits = NodeBitset::from_sorted(universe, long);
            bits.count_in(short)
        }
        Kernel::Adaptive => {
            if s == 0 || l >= T_GALLOP_RATIO.load(Ordering::Relaxed) * s {
                stats.gallop_calls += 1;
                gallop_count(a, b)
            } else {
                stats.merge_calls += 1;
                merge_count(a, b)
            }
        }
    }
}

/// Should the adaptive policy pay for a bitset build at a
/// build-once/intersect-many call site? `reuse` is the number of
/// intersections that will share the set of `set_len` elements.
pub fn bitset_pays_off(reuse: usize, set_len: usize) -> bool {
    match configured_kernel() {
        Kernel::Bitset => true,
        Kernel::Merge | Kernel::Gallop => false,
        Kernel::Adaptive => {
            reuse >= T_BITSET_MIN_REUSE.load(Ordering::Relaxed)
                && set_len >= T_BITSET_MIN_SET.load(Ordering::Relaxed)
        }
    }
}

/// Fixed-width `u64`-block membership bitmap over node ids `0..universe`,
/// with build-once / intersect-many semantics: one `O(universe/64 + |s|)`
/// build, then each intersection against a sorted list is a pure
/// membership filter — `O(len)` with a 2-instruction test per element,
/// independent of `|s|`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitset {
    blocks: Vec<u64>,
}

impl NodeBitset {
    /// An empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        NodeBitset {
            blocks: vec![0u64; universe.div_ceil(64)],
        }
    }

    /// Build from a sorted (or unsorted — order is irrelevant) id slice.
    pub fn from_sorted(universe: usize, items: &[NodeId]) -> Self {
        let mut s = Self::new(universe);
        for &n in items {
            s.insert(n);
        }
        s
    }

    /// Zero every block, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Add `n` to the set.
    #[inline]
    pub fn insert(&mut self, n: NodeId) {
        self.blocks[n.index() >> 6] |= 1u64 << (n.index() & 63);
    }

    /// Remove `n` from the set.
    #[inline]
    pub fn remove(&mut self, n: NodeId) {
        if let Some(b) = self.blocks.get_mut(n.index() >> 6) {
            *b &= !(1u64 << (n.index() & 63));
        }
    }

    /// Membership test. Ids beyond the universe are absent, not a panic,
    /// so a bitset built over a graph can be probed with any id.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.blocks
            .get(n.index() >> 6)
            .is_some_and(|b| b >> (n.index() & 63) & 1 == 1)
    }

    /// `out = list ∩ self`, order-preserving (sorted in → sorted out).
    pub fn filter_into(&self, list: &[NodeId], out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(list.iter().copied().filter(|&n| self.contains(n)));
    }

    /// In-place `v ∩ self`; returns how many elements were removed.
    pub fn retain_sorted(&self, v: &mut Vec<NodeId>) -> usize {
        let before = v.len();
        v.retain(|&n| self.contains(n));
        before - v.len()
    }

    /// `|list ∩ self|`.
    pub fn count_in(&self, list: &[NodeId]) -> usize {
        list.iter().filter(|&&n| self.contains(n)).count()
    }

    /// Number of set bits (the set's cardinality).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The kernel config is process-global; tests that set or depend on
    /// it serialize through this lock.
    static KERNEL_LOCK: Mutex<()> = Mutex::new(());

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn kernels_agree_on_fixed_inputs() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 3, 5, 7], &[3, 4, 5]),
            (&[0, 2, 4, 6, 8], &[1, 3, 5, 7]),
            (&[5], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 100]),
            (&[0, 100], &[0, 1, 2, 3, 100]),
        ];
        for (a, b) in cases {
            let a = ids(a);
            let b = ids(b);
            let mut merge = Vec::new();
            let mut gallop = Vec::new();
            merge_into(&a, &b, &mut merge);
            gallop_into(&a, &b, &mut gallop);
            assert_eq!(merge, gallop, "a={a:?} b={b:?}");
            let universe = b.last().map(|n| n.index() + 1).unwrap_or(0);
            let bits = NodeBitset::from_sorted(universe, &b);
            let mut filtered = Vec::new();
            bits.filter_into(&a, &mut filtered);
            assert_eq!(merge, filtered, "a={a:?} b={b:?}");
            assert_eq!(merge.len(), merge_count(&a, &b));
            assert_eq!(merge.len(), gallop_count(&a, &b));
            assert_eq!(merge.len(), bits.count_in(&a));
        }
    }

    #[test]
    fn gallop_handles_extreme_skew() {
        let long: Vec<NodeId> = (0..100_000u32).map(NodeId).collect();
        let short = ids(&[7, 99_999, 200_000]);
        let mut out = Vec::new();
        gallop_into(&short, &long, &mut out);
        assert_eq!(out, ids(&[7, 99_999]));
        // Symmetric argument order.
        gallop_into(&long, &short, &mut out);
        assert_eq!(out, ids(&[7, 99_999]));
    }

    #[test]
    fn dispatcher_counts_choices() {
        let _guard = KERNEL_LOCK.lock().unwrap();
        set_kernel(Kernel::Adaptive);
        let mut stats = SetOpStats::default();
        let balanced_a = ids(&[1, 2, 3, 4]);
        let balanced_b = ids(&[2, 3, 4, 5]);
        let mut out = Vec::new();
        intersect_into(&balanced_a, &balanced_b, &mut out, &mut stats);
        assert_eq!(stats.merge_calls, 1);
        let long: Vec<NodeId> = (0..10_000u32).map(NodeId).collect();
        intersect_into(&balanced_a, &long, &mut out, &mut stats);
        assert_eq!(stats.gallop_calls, 1);
        // Second call reused `out`'s allocation.
        assert!(stats.saved_allocs >= 1);
        assert_eq!(stats.total_calls(), 2);
    }

    #[test]
    fn forced_kernels_are_identical() {
        let _guard = KERNEL_LOCK.lock().unwrap();
        let a: Vec<NodeId> = (0..2_000u32).step_by(3).map(NodeId).collect();
        let b: Vec<NodeId> = (0..2_000u32).step_by(7).map(NodeId).collect();
        let mut expect = Vec::new();
        merge_into(&a, &b, &mut expect);
        for k in [
            Kernel::Merge,
            Kernel::Gallop,
            Kernel::Bitset,
            Kernel::Adaptive,
        ] {
            set_kernel(k);
            let mut stats = SetOpStats::default();
            let mut out = Vec::new();
            intersect_into(&a, &b, &mut out, &mut stats);
            assert_eq!(out, expect, "kernel={k:?}");
            assert_eq!(intersect_count(&a, &b, &mut stats), expect.len());
            assert_eq!(stats.total_calls(), 2);
        }
        set_kernel(Kernel::Adaptive);
    }

    #[test]
    fn bitset_membership_and_retain() {
        let mut bits = NodeBitset::new(130);
        assert!(bits.is_empty());
        for i in [0u32, 63, 64, 129] {
            bits.insert(NodeId(i));
        }
        assert_eq!(bits.len(), 4);
        assert!(bits.contains(NodeId(63)));
        assert!(!bits.contains(NodeId(62)));
        assert!(!bits.contains(NodeId(10_000))); // beyond universe: absent
        bits.remove(NodeId(63));
        assert!(!bits.contains(NodeId(63)));
        let mut v = ids(&[0, 1, 64, 129]);
        assert_eq!(bits.retain_sorted(&mut v), 1);
        assert_eq!(v, ids(&[0, 64, 129]));
        bits.clear();
        assert!(bits.is_empty());
    }

    #[test]
    fn kernel_parse_roundtrip() {
        for k in [
            Kernel::Merge,
            Kernel::Gallop,
            Kernel::Bitset,
            Kernel::Adaptive,
        ] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("AUTO"), Some(Kernel::Adaptive));
        assert_eq!(Kernel::parse("nonsense"), None);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = global_snapshot();
        record_global(&SetOpStats {
            merge_calls: 2,
            gallop_calls: 3,
            bitset_calls: 4,
            saved_allocs: 5,
        });
        let after = global_snapshot();
        assert!(after.merge_calls >= before.merge_calls + 2);
        assert!(after.gallop_calls >= before.gallop_calls + 3);
        assert!(after.bitset_calls >= before.bitset_calls + 4);
        assert!(after.saved_allocs >= before.saved_allocs + 5);
    }

    #[test]
    fn tuning_moves_the_adaptive_crossovers() {
        let _guard = KERNEL_LOCK.lock().unwrap();
        set_kernel(Kernel::Adaptive);
        assert_eq!(current_tuning(), SetOpsTuning::default());
        // 4-vs-16 is merge territory at ratio 16 but gallop at ratio 2.
        let a = ids(&[1, 2, 3, 4]);
        let b: Vec<NodeId> = (0..16u32).map(NodeId).collect();
        let mut stats = SetOpStats::default();
        let mut out = Vec::new();
        intersect_into(&a, &b, &mut out, &mut stats);
        assert_eq!((stats.merge_calls, stats.gallop_calls), (1, 0));
        set_tuning(SetOpsTuning {
            gallop_ratio: 2,
            bitset_min_reuse: 1,
            bitset_min_set: 1,
        });
        intersect_into(&a, &b, &mut out, &mut stats);
        assert_eq!((stats.merge_calls, stats.gallop_calls), (1, 1));
        assert!(bitset_pays_off(1, 1));
        set_tuning(SetOpsTuning::default());
        assert!(!bitset_pays_off(1, 1));
        // Zero gallop ratio is clamped, not a divide-by-zero-ish trap.
        set_tuning(SetOpsTuning {
            gallop_ratio: 0,
            ..SetOpsTuning::default()
        });
        assert_eq!(current_tuning().gallop_ratio, 1);
        set_tuning(SetOpsTuning::default());
    }

    #[test]
    fn adaptive_bitset_policy() {
        let _guard = KERNEL_LOCK.lock().unwrap();
        set_kernel(Kernel::Adaptive);
        assert!(bitset_pays_off(BITSET_MIN_REUSE, BITSET_MIN_SET));
        assert!(!bitset_pays_off(1, BITSET_MIN_SET));
        assert!(!bitset_pays_off(BITSET_MIN_REUSE, 10));
        set_kernel(Kernel::Bitset);
        assert!(bitset_pays_off(1, 1));
        set_kernel(Kernel::Merge);
        assert!(!bitset_pays_off(usize::MAX, usize::MAX));
        set_kernel(Kernel::Adaptive);
    }
}
