//! The continuous-census invariant, end to end: the rows a subscription
//! pushes after each mutation batch must equal the diff of two **full
//! recomputes** (counts on the graph before vs. after the batch), for
//! every census algorithm, thread count 1–4, and both aggregate kinds
//! (`COUNTP` and `COUNTSP`). The incremental engine may skip clean
//! focal nodes and keep match-list survivors, but none of that is
//! allowed to change a single pushed row.

use ego_census::{run_batch_exec, CensusSpec, CountVector, FocalNodes};
use ego_continuous::{diff_counts, Algorithm, ContinuousEngine, ExecConfig, PtConfig};
use ego_dynamic::DeltaGraph;
use ego_graph::{Graph, GraphBuilder, Label, NodeId};
use ego_query::{QueryEngine, SubscriptionSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// Every algorithm the engine accepts, including the planner.
const ALGORITHMS: [Algorithm; 7] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
    Algorithm::Auto,
];

/// Both aggregate kinds; the `WHERE` on the second also exercises a
/// frozen focal subset.
const STATEMENTS: [&str; 2] = [
    "SUBSCRIBE SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes",
    "SUBSCRIBE SELECT ID, COUNTSP(pair, tria, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 20",
];

/// ND-BAS and ND-DIFF cannot evaluate COUNTSP (no subpattern support).
fn supported(sql: &str) -> impl Iterator<Item = Algorithm> + '_ {
    ALGORITHMS.into_iter().filter(move |a| {
        !sql.contains("COUNTSP") || !matches!(a, Algorithm::NdBaseline | Algorithm::NdDiff)
    })
}

fn random_graph(n: u32, raw_edges: &[(u32, u32)]) -> Arc<Graph> {
    let mut b = GraphBuilder::undirected();
    for _ in 0..n {
        b.add_node(Label(0));
    }
    for &(x, y) in raw_edges {
        let a = NodeId(x % n);
        let c = NodeId(y % n);
        if a != c {
            b.add_edge(a, c);
        }
    }
    Arc::new(b.build())
}

fn compile(g: &Graph, sql: &str) -> SubscriptionSpec {
    let mut e = QueryEngine::new(g);
    for def in [
        "PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }",
        "PATTERN tria { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN pair {?A; ?B;} }",
    ] {
        e.catalog_mut().define(def).unwrap();
    }
    e.compile_subscription(sql).unwrap()
}

/// The reference: a from-scratch batch evaluation of the subscription's
/// aggregates on `g` — no maintained state, no dirty sets.
fn full_counts(
    g: &Graph,
    spec: &SubscriptionSpec,
    algorithm: Algorithm,
    exec: &ExecConfig,
) -> Vec<CountVector> {
    let cspecs: Vec<CensusSpec<'_>> = spec
        .aggs
        .iter()
        .map(|a| {
            let mut s =
                CensusSpec::single(&a.pattern, a.k).with_focal(FocalNodes::Set(spec.focal.clone()));
            if let Some(sp) = &a.subpattern {
                s = s.with_subpattern(sp);
            }
            s
        })
        .collect();
    let provided = vec![None; cspecs.len()];
    run_batch_exec(g, &cspecs, algorithm, &PtConfig::default(), exec, &provided)
        .expect("full recompute")
        .counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized graphs and mutation sequences: after every batch, the
    /// pushed rows equal `diff_counts` of two full recomputes, under
    /// every algorithm × thread count × aggregate kind.
    #[test]
    fn pushed_deltas_equal_full_recompute_diff(
        n in 8u32..24,
        raw_edges in prop::collection::vec((any::<u32>(), any::<u32>()), 6..50),
        batches in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 1..4),
            1..3,
        ),
    ) {
        let g0 = random_graph(n, &raw_edges);
        for sql in STATEMENTS {
            let reference = compile(&g0, sql);
            for algorithm in supported(sql) {
                for threads in 1..=4usize {
                    let exec = ExecConfig::with_threads(threads);
                    let eng = ContinuousEngine::new();
                    let ack = eng
                        .subscribe(&g0, compile(&g0, sql), 0, algorithm,
                                   &PtConfig::default(), &exec)
                        .expect("subscribe");
                    prop_assert_eq!(ack.focal, reference.focal.len());
                    let mut base = g0.clone();
                    let mut old = full_counts(&base, &reference, algorithm, &exec);
                    for (i, batch) in batches.iter().enumerate() {
                        let mut d = DeltaGraph::new(base.clone());
                        for &(insert, x, y) in batch {
                            let (a, b) = (NodeId(x % n), NodeId(y % n));
                            if a == b {
                                continue;
                            }
                            // Redundant ops (inserting a present edge,
                            // deleting an absent one) are rejected by
                            // the delta; skipping them keeps the batch
                            // well-formed without constraining the
                            // generator.
                            if insert {
                                let _ = d.insert_edge(a, b);
                            } else {
                                let _ = d.delete_edge(a, b);
                            }
                        }
                        let new_graph = Arc::new(d.compact());
                        let generation = (i + 1) as u64;
                        let frames = eng
                            .apply_update(&d, &new_graph, generation, algorithm,
                                          &PtConfig::default(), &exec)
                            .expect("apply_update");
                        prop_assert_eq!(frames.len(), 1);
                        prop_assert_eq!(frames[0].generation, generation);
                        let new = full_counts(&new_graph, &reference, algorithm, &exec);
                        let expected = diff_counts(&reference.focal, &old, &new);
                        prop_assert_eq!(
                            &frames[0].rows,
                            &expected,
                            "pushed rows diverge from full-recompute diff: \
                             {} algo={:?} threads={} batch={}",
                            sql, algorithm, threads, i
                        );
                        old = new;
                        base = new_graph;
                    }
                }
            }
        }
    }
}
