//! # ego-continuous
//!
//! The continuous census: standing-query subscriptions whose per-focal
//! pattern counts are maintained incrementally as the graph mutates.
//!
//! A subscription is a compiled census statement
//! ([`ego_query::SubscriptionSpec`]): a frozen focal set plus resolved
//! aggregates. [`ContinuousEngine`] keeps, per subscription, the last
//! published [`CountVector`] **and** the pattern's global match list.
//! On every mutation batch it runs the incremental engine
//! ([`ego_dynamic::update_batch_on`]) — dirty-focal re-census with
//! |delta|-scaled match-list maintenance — against the shared compacted
//! graph, diffs new counts against old over the focal set, and emits a
//! [`Notification`] per subscription carrying only the *changed rows*
//! `(focal, column, old, new)` tagged with the new generation.
//!
//! One notification is produced per (subscription, update) even when no
//! row changed: the empty frame acknowledges the generation, which is
//! what lets a scatter/gather router treat "worker finished with no
//! changes" and "worker hasn't answered yet" as different states.
//!
//! Diff rows are ordered by focal node ascending, then aggregate
//! (projection) order — deterministic, and concatenable across focal
//! shards in shard order.
//!
//! The engine is deliberately transport-free: it never touches sockets.
//! `ego-server` owns the session registry and the push path; a fleet
//! router owns broadcast and per-shard merging. Both layer on this type.

use ego_census::run_batch_exec;
use ego_dynamic::{update_batch_on, DeltaGraph, MaintainStats, UpdateStats};
use ego_graph::{Graph, NodeId};
use ego_query::{ChangedRow, SubscriptionSpec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// Re-exported so hosts (e.g. the server) can configure evaluation —
// and drive view refresh / baseline seeding — without a direct
// ego-census dependency.
pub use ego_census::{
    Algorithm, CensusError, CensusSpec, CountVector, ExecConfig, FocalNodes, PtConfig,
};
pub use ego_matcher::MatchList;

/// Acknowledgment returned by [`ContinuousEngine::subscribe`].
#[derive(Clone, Debug)]
pub struct SubscribeAck {
    /// The subscription id (unique per engine, never reused).
    pub id: u64,
    /// Graph generation the initial evaluation ran against.
    pub generation: u64,
    /// Focal set size.
    pub focal: usize,
    /// Aggregate column names, in projection order.
    pub columns: Vec<String>,
}

/// One pushed frame: the changed rows of one subscription under one
/// mutation batch.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The subscription this frame belongs to.
    pub subscription: u64,
    /// Graph generation after the mutation batch that produced it.
    pub generation: u64,
    /// Aggregate column names (indexed by [`ChangedRow::agg`]).
    pub columns: Arc<Vec<String>>,
    /// Changed rows, focal-ascending then aggregate order. May be empty
    /// (generation acknowledgment).
    pub rows: Vec<ChangedRow>,
}

/// One registered standing query and its maintained state.
struct SubState {
    spec: SubscriptionSpec,
    columns: Arc<Vec<String>>,
    counts: Vec<CountVector>,
    matches: Vec<Option<Arc<MatchList>>>,
    generation: u64,
}

impl SubState {
    /// The census specs of this subscription, borrowing its owned
    /// patterns. Rebuilt per evaluation (specs are cheap; patterns are
    /// not cloned).
    fn census_specs(&self) -> Vec<CensusSpec<'_>> {
        self.spec
            .aggs
            .iter()
            .map(|a| {
                let mut s = CensusSpec::single(&a.pattern, a.k)
                    .with_focal(FocalNodes::Set(self.spec.focal.clone()));
                if let Some(sp) = &a.subpattern {
                    s = s.with_subpattern(sp);
                }
                s
            })
            .collect()
    }
}

/// Counters and occupancy of a [`ContinuousEngine`] (server `stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContinuousStats {
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Subscriptions ever created.
    pub created: u64,
    /// Update batches evaluated.
    pub updates: u64,
    /// Notifications produced (one per subscription per update).
    pub notifications: u64,
    /// Changed rows pushed, cumulative.
    pub rows_pushed: u64,
    /// Cumulative incremental-engine accounting across updates.
    pub dirty_focal: u64,
    /// Focal nodes spliced through unchanged, cumulative.
    pub clean_focal: u64,
    /// Match-list survivors kept without re-verification, cumulative.
    pub match_survivors: u64,
    /// Matches discovered by anchored re-enumeration, cumulative.
    pub match_discovered: u64,
    /// Aggregates whose baseline match list was provided by the host
    /// (e.g. gathered from a materialized view) instead of enumerated
    /// at subscribe time, cumulative.
    pub seeded: u64,
}

/// The subscription registry + incremental evaluation loop.
///
/// Thread-safe; the server shares one engine across sessions. All
/// mutation-driven evaluation happens in [`ContinuousEngine::apply_update`],
/// which the host must call with its update lock held so generations
/// are published in order.
#[derive(Default)]
pub struct ContinuousEngine {
    subs: Mutex<BTreeMap<u64, SubState>>,
    next_id: AtomicU64,
    created: AtomicU64,
    updates: AtomicU64,
    notifications: AtomicU64,
    rows_pushed: AtomicU64,
    dirty_focal: AtomicU64,
    clean_focal: AtomicU64,
    match_survivors: AtomicU64,
    match_discovered: AtomicU64,
    seeded: AtomicU64,
}

impl ContinuousEngine {
    /// An empty registry.
    pub fn new() -> Self {
        ContinuousEngine {
            next_id: AtomicU64::new(1),
            ..ContinuousEngine::default()
        }
    }

    /// Register a compiled statement: evaluate it once on `graph` (full
    /// batch run, which also materializes the global match lists that
    /// seed maintenance) and store the state. Returns the ack with the
    /// new subscription id.
    pub fn subscribe(
        &self,
        graph: &Graph,
        spec: SubscriptionSpec,
        generation: u64,
        algorithm: Algorithm,
        config: &PtConfig,
        exec: &ExecConfig,
    ) -> Result<SubscribeAck, CensusError> {
        self.subscribe_seeded(graph, spec, generation, algorithm, config, exec, &[])
    }

    /// [`ContinuousEngine::subscribe`], but with per-aggregate global
    /// match lists the host already holds (e.g. gathered from a
    /// materialized view maintained through every mutation): a `Some`
    /// slot skips that aggregate's enumeration pass entirely, so the
    /// initial evaluation pays only the neighborhood projection. Slots
    /// beyond `provided.len()` (or `None` slots) enumerate as usual.
    /// Provided lists must be current for `graph` — the caller holds the
    /// update lock, so a view refreshed on that same lock qualifies.
    #[allow(clippy::too_many_arguments)]
    pub fn subscribe_seeded(
        &self,
        graph: &Graph,
        spec: SubscriptionSpec,
        generation: u64,
        algorithm: Algorithm,
        config: &PtConfig,
        exec: &ExecConfig,
        provided: &[Option<Arc<MatchList>>],
    ) -> Result<SubscribeAck, CensusError> {
        let columns: Arc<Vec<String>> =
            Arc::new(spec.aggs.iter().map(|a| a.column.clone()).collect());
        let mut state = SubState {
            spec,
            columns: columns.clone(),
            counts: Vec::new(),
            matches: Vec::new(),
            generation,
        };
        let cspecs = state.census_specs();
        let provided: Vec<Option<Arc<MatchList>>> = (0..cspecs.len())
            .map(|i| provided.get(i).cloned().flatten())
            .collect();
        let seeded = provided.iter().filter(|m| m.is_some()).count() as u64;
        if seeded > 0 {
            self.seeded.fetch_add(seeded, Ordering::Relaxed);
        }
        let batch = run_batch_exec(graph, &cspecs, algorithm, config, exec, &provided)?;
        let focal = state.spec.focal.len();
        drop(cspecs);
        state.counts = batch.counts;
        state.matches = batch.matches;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.created.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().unwrap().insert(id, state);
        Ok(SubscribeAck {
            id,
            generation,
            focal,
            columns: columns.as_ref().clone(),
        })
    }

    /// Remove a subscription. Returns `false` if the id is unknown
    /// (e.g. already unsubscribed).
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.subs.lock().unwrap().remove(&id).is_some()
    }

    /// Live subscription ids with their statements, ascending by id.
    pub fn subscriptions(&self) -> Vec<(u64, String)> {
        self.subs
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, s)| (id, s.spec.statement.clone()))
            .collect()
    }

    /// Is the registry empty? (The mutation path skips evaluation.)
    pub fn is_empty(&self) -> bool {
        self.subs.lock().unwrap().is_empty()
    }

    /// Evaluate every subscription against a mutation batch:
    /// `new_graph` must be `delta.compact()` (the host compacts once and
    /// shares it) and `new_generation` the generation it was published
    /// under. Returns one [`Notification`] per subscription, ascending
    /// by subscription id, each carrying only the changed rows.
    ///
    /// Counts are maintained through the incremental engine and are
    /// bit-identical to a full recompute, so the emitted rows equal the
    /// diff of two full evaluations — the invariant the proptest suite
    /// enforces end to end.
    pub fn apply_update(
        &self,
        delta: &DeltaGraph,
        new_graph: &Graph,
        new_generation: u64,
        algorithm: Algorithm,
        config: &PtConfig,
        exec: &ExecConfig,
    ) -> Result<Vec<Notification>, CensusError> {
        let mut subs = self.subs.lock().unwrap();
        if subs.is_empty() {
            return Ok(Vec::new());
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(subs.len());
        for (&id, state) in subs.iter_mut() {
            let cspecs = state.census_specs();
            let outcome = update_batch_on(
                delta,
                new_graph,
                &cspecs,
                &state.counts,
                &state.matches,
                algorithm,
                config,
                exec,
            )?;
            drop(cspecs);
            self.absorb_stats(&outcome.stats, &outcome.match_stats);
            let mut rows = Vec::new();
            for &n in &state.spec.focal {
                for agg in 0..state.counts.len() {
                    let old = state.counts[agg].get(n);
                    let new = outcome.counts[agg].get(n);
                    if old != new {
                        rows.push(ChangedRow {
                            focal: n,
                            agg,
                            old,
                            new,
                        });
                    }
                }
            }
            self.rows_pushed
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            self.notifications.fetch_add(1, Ordering::Relaxed);
            state.counts = outcome.counts;
            state.matches = outcome.matches;
            state.generation = new_generation;
            out.push(Notification {
                subscription: id,
                generation: new_generation,
                columns: state.columns.clone(),
                rows,
            });
        }
        Ok(out)
    }

    fn absorb_stats(&self, stats: &UpdateStats, ms: &MaintainStats) {
        self.dirty_focal
            .fetch_add(stats.dirty_focal as u64, Ordering::Relaxed);
        self.clean_focal
            .fetch_add(stats.clean_focal as u64, Ordering::Relaxed);
        self.match_survivors
            .fetch_add(ms.survivors as u64, Ordering::Relaxed);
        self.match_discovered
            .fetch_add(ms.discovered as u64, Ordering::Relaxed);
    }

    /// Snapshot of occupancy and counters.
    pub fn stats(&self) -> ContinuousStats {
        ContinuousStats {
            subscriptions: self.subs.lock().unwrap().len(),
            created: self.created.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            rows_pushed: self.rows_pushed.load(Ordering::Relaxed),
            dirty_focal: self.dirty_focal.load(Ordering::Relaxed),
            clean_focal: self.clean_focal.load(Ordering::Relaxed),
            match_survivors: self.match_survivors.load(Ordering::Relaxed),
            match_discovered: self.match_discovered.load(Ordering::Relaxed),
            seeded: self.seeded.load(Ordering::Relaxed),
        }
    }

    /// The current counts of one subscription (testing and the router's
    /// recovery path).
    pub fn counts_of(&self, id: u64) -> Option<Vec<CountVector>> {
        self.subs.lock().unwrap().get(&id).map(|s| s.counts.clone())
    }
}

/// Diff two full evaluations into changed rows — the reference the
/// incremental path must match, used by tests and the router's
/// dead-worker recovery. `focal` must be ascending; `old[i]`/`new[i]`
/// are aggregate `i`'s counts before and after.
pub fn diff_counts(focal: &[NodeId], old: &[CountVector], new: &[CountVector]) -> Vec<ChangedRow> {
    let mut rows = Vec::new();
    for &n in focal {
        for agg in 0..old.len() {
            let o = old[agg].get(n);
            let v = new[agg].get(n);
            if o != v {
                rows.push(ChangedRow {
                    focal: n,
                    agg,
                    old: o,
                    new: v,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};
    use ego_query::QueryEngine;

    fn ring(n: u32) -> Arc<Graph> {
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label(0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        Arc::new(b.build())
    }

    fn compile(g: &Graph, sql: &str) -> SubscriptionSpec {
        let mut e = QueryEngine::new(g);
        e.catalog_mut()
            .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        e.compile_subscription(sql).unwrap()
    }

    #[test]
    fn subscribe_mutate_notify_roundtrip() {
        let g = ring(32);
        let spec = compile(
            &g,
            "SUBSCRIBE SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes",
        );
        let eng = ContinuousEngine::new();
        let ack = eng
            .subscribe(
                &g,
                spec,
                0,
                Algorithm::NdPivot,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert_eq!(ack.id, 1);
        assert_eq!(ack.focal, 32);

        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let new_graph = d.compact();
        let frames = eng
            .apply_update(
                &d,
                &new_graph,
                1,
                Algorithm::NdPivot,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!((f.subscription, f.generation), (1, 1));
        // The chord creates triangle 0-1-2: all three counts go 0 -> 1.
        assert_eq!(f.rows.len(), 3);
        for (row, focal) in f.rows.iter().zip([0u32, 1, 2]) {
            assert_eq!(row.focal, NodeId(focal));
            assert_eq!((row.old, row.new), (0, 1));
        }

        // A clean (cancelling) batch acknowledges with no rows.
        let base2 = Arc::new(new_graph);
        let mut d2 = DeltaGraph::new(base2.clone());
        d2.insert_edge(NodeId(5), NodeId(9)).unwrap();
        d2.delete_edge(NodeId(5), NodeId(9)).unwrap();
        let g2 = d2.compact();
        let frames2 = eng
            .apply_update(
                &d2,
                &g2,
                2,
                Algorithm::NdPivot,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert_eq!(frames2.len(), 1);
        assert!(frames2[0].rows.is_empty());
        assert_eq!(frames2[0].generation, 2);
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let g = ring(8);
        let spec = compile(&g, "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes");
        let eng = ContinuousEngine::new();
        let ack = eng
            .subscribe(
                &g,
                spec,
                0,
                Algorithm::Auto,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert!(eng.unsubscribe(ack.id));
        assert!(!eng.unsubscribe(ack.id));
        assert!(eng.is_empty());
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let ng = d.compact();
        let frames = eng
            .apply_update(
                &d,
                &ng,
                1,
                Algorithm::Auto,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn where_clause_freezes_focal_set() {
        let g = ring(16);
        let spec = compile(
            &g,
            "SUBSCRIBE SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 3",
        );
        assert_eq!(spec.focal.len(), 3);
        let eng = ContinuousEngine::new();
        eng.subscribe(
            &g,
            spec,
            0,
            Algorithm::PtOpt,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        // Chord at 8-10 creates a triangle far outside the focal set: an
        // empty (ack-only) frame.
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(8), NodeId(10)).unwrap();
        let ng = d.compact();
        let frames = eng
            .apply_update(
                &d,
                &ng,
                1,
                Algorithm::PtOpt,
                &PtConfig::default(),
                &ExecConfig::sequential(),
            )
            .unwrap();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].rows.is_empty());
        // And the incremental engine did |delta|-scaled work.
        let st = eng.stats();
        assert!(st.match_survivors > 0 || st.match_discovered > 0 || st.dirty_focal == 0);
    }
}
