//! A mutable edge-delta overlay over the frozen CSR graph.

use ego_graph::{Graph, GraphBuilder, NodeId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors from applying edge deltas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint is not a node of the base graph (edge deltas cannot
    /// grow the node set; compact and rebuild for that).
    NodeOutOfRange(NodeId),
    /// Self-loops are not representable (the data model is simple graphs).
    SelfLoop(NodeId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NodeOutOfRange(n) => {
                write!(f, "node {n} is out of range for the graph")
            }
            DeltaError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch of edge insertions/deletions layered over an immutable base
/// [`Graph`].
///
/// The overlay keeps two *canonical* delta sets (`added`, `removed`) with
/// the invariants: `removed ⊆ E(base)`, `added ∩ E(base) = ∅`, and
/// `added ∩ removed = ∅`. Inserting an edge whose deletion is pending
/// cancels the deletion (and vice versa), so a net-empty batch leaves the
/// overlay exactly equal to the base — including its fingerprint.
///
/// Neighbor accessors honor the base graph's contract: lists are sorted
/// by node id and deduplicated. They return owned `Vec`s (the overlay
/// cannot hand out CSR slices); each call costs `O(deg + |added|)`, which
/// is the intended regime — deltas are small batches, and bulk reads go
/// through [`DeltaGraph::compact`].
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: Arc<Graph>,
    added: BTreeSet<(NodeId, NodeId)>,
    removed: BTreeSet<(NodeId, NodeId)>,
}

impl DeltaGraph {
    /// An overlay with no pending deltas.
    pub fn new(base: Arc<Graph>) -> Self {
        DeltaGraph {
            base,
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    /// The frozen base graph.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Net-added edges, in canonical key order.
    pub fn added(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.added.iter().copied()
    }

    /// Net-removed edges, in canonical key order.
    pub fn removed(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.removed.iter().copied()
    }

    /// True if the overlay is exactly the base graph (no net deltas).
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of nodes (edge deltas never change the node set).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Number of distinct edges after applying the pending deltas.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.added.len() - self.removed.len()
    }

    /// Whether edges are directed (inherited from the base).
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// Canonical delta key: oriented for directed graphs, `(min, max)`
    /// for undirected — the same normalization the builder applies.
    fn key(&self, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if self.base.is_directed() || a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn check(&self, a: NodeId, b: NodeId) -> Result<(), DeltaError> {
        let n = self.base.num_nodes();
        for e in [a, b] {
            if e.index() >= n {
                return Err(DeltaError::NodeOutOfRange(e));
            }
        }
        if a == b {
            return Err(DeltaError::SelfLoop(a));
        }
        Ok(())
    }

    fn base_has(&self, a: NodeId, b: NodeId) -> bool {
        if self.base.is_directed() {
            self.base.has_directed_edge(a, b)
        } else {
            self.base.has_undirected_edge(a, b)
        }
    }

    /// Insert edge `(a, b)` (`a -> b` for directed overlays). Returns
    /// `true` if the edge set changed, `false` if the edge was already
    /// present. Cancels a pending deletion of the same edge.
    pub fn insert_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, DeltaError> {
        self.check(a, b)?;
        let key = self.key(a, b);
        if self.removed.remove(&key) {
            return Ok(true);
        }
        if self.base_has(key.0, key.1) || !self.added.insert(key) {
            return Ok(false);
        }
        Ok(true)
    }

    /// Delete edge `(a, b)`. Returns `true` if the edge set changed,
    /// `false` if the edge was absent. Cancels a pending insertion of the
    /// same edge.
    pub fn delete_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, DeltaError> {
        self.check(a, b)?;
        let key = self.key(a, b);
        if self.added.remove(&key) {
            return Ok(true);
        }
        if !self.base_has(key.0, key.1) || !self.removed.insert(key) {
            return Ok(false);
        }
        Ok(true)
    }

    /// True if the directed edge `a -> b` exists after the pending deltas
    /// (adjacency for undirected overlays).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.num_nodes() || b.index() >= self.num_nodes() {
            return false;
        }
        let key = self.key(a, b);
        if self.added.contains(&key) {
            return true;
        }
        if self.removed.contains(&key) {
            return false;
        }
        if self.base.is_directed() {
            self.base.has_directed_edge(a, b)
        } else {
            self.base.has_undirected_edge(a, b)
        }
    }

    /// True if `a` and `b` are adjacent in the undirected view after the
    /// pending deltas.
    pub fn und_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        if self.base.is_directed() {
            self.has_edge(a, b) || self.has_edge(b, a)
        } else {
            self.has_edge(a, b)
        }
    }

    /// Neighbors of `n` in the undirected view, sorted by id. Matches what
    /// [`Graph::neighbors`] returns on the compacted graph.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .neighbors(n)
            .iter()
            .copied()
            .filter(|&m| self.und_adjacent(n, m))
            .collect();
        for &(a, b) in &self.added {
            if a == n {
                out.push(b);
            } else if b == n {
                out.push(a);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Out-neighbors of `n`, sorted by id (same as [`Self::neighbors`]
    /// for undirected overlays).
    pub fn out_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        if !self.base.is_directed() {
            return self.neighbors(n);
        }
        let mut out: Vec<NodeId> = self
            .base
            .out_neighbors(n)
            .iter()
            .copied()
            .filter(|&m| !self.removed.contains(&(n, m)))
            .collect();
        out.extend(self.added.iter().filter(|&&(a, _)| a == n).map(|&(_, b)| b));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Degree of `n` in the undirected view after the pending deltas.
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// Every node incident on a net delta, sorted and deduplicated. The
    /// seed set for the dirty-focal BFS; canceled (net-empty) deltas do
    /// not contribute.
    pub fn touched_endpoints(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .added
            .iter()
            .chain(self.removed.iter())
            .flat_map(|&(a, b)| [a, b])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A mutation-aware fingerprint. Equal to the base fingerprint when
    /// the overlay is clean; otherwise a hash of the base fingerprint and
    /// the canonical delta sets, so any pending delta changes the value
    /// and every fingerprint-keyed cache entry computed on the base stays
    /// sound (the key can no longer match). Note [`Self::compact`]
    /// recomputes the canonical content fingerprint, which is what
    /// queries over the rebuilt CSR key on.
    pub fn fingerprint(&self) -> u64 {
        if self.is_clean() {
            return self.base.fingerprint();
        }
        use ego_graph::hash::FxHasher;
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        h.write_u64(self.base.fingerprint());
        h.write_usize(self.added.len());
        for &(a, b) in &self.added {
            h.write_u32(a.0);
            h.write_u32(b.0);
        }
        h.write_usize(self.removed.len());
        for &(a, b) in &self.removed {
            h.write_u32(a.0);
            h.write_u32(b.0);
        }
        h.finish()
    }

    /// Freeze the overlay into a plain CSR [`Graph`]: same nodes, labels
    /// and attributes, with the pending deltas applied. Attributes of
    /// removed edges are dropped by the builder's orphan filter.
    pub fn compact(&self) -> Graph {
        let g = &*self.base;
        let mut b = if g.is_directed() {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        }
        .with_capacity(g.num_nodes(), self.num_edges());
        for &l in g.labels() {
            b.add_node(l);
        }
        for (a, bb) in g.edges() {
            if !self.removed.contains(&(a, bb)) {
                b.add_edge(a, bb);
            }
        }
        for &(a, bb) in &self.added {
            b.add_edge(a, bb);
        }
        let mut names: Vec<&str> = g.node_attrs().attribute_names().collect();
        names.sort_unstable();
        for name in names {
            for (n, v) in g.node_attrs().column(name) {
                b.set_node_attr(n, name, v.clone());
            }
        }
        let mut enames: Vec<&str> = g.edge_attrs().attribute_names().collect();
        enames.sort_unstable();
        for name in enames {
            for ((a, bb), v) in g.edge_attrs().column(name) {
                b.set_edge_attr(NodeId(a), NodeId(bb), name, v.clone());
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::Label;

    fn two_triangles() -> Arc<Graph> {
        // Two triangles sharing node 2, plus a chain 4-5-6.
        let mut b = GraphBuilder::undirected();
        for _ in 0..7 {
            b.add_node(Label(0));
        }
        for &(x, y) in &[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        Arc::new(b.build())
    }

    #[test]
    fn insert_delete_cancel_and_fingerprint() {
        let g = two_triangles();
        let mut d = DeltaGraph::new(g.clone());
        assert!(d.is_clean());
        assert_eq!(d.fingerprint(), g.fingerprint());

        assert!(d.insert_edge(NodeId(4), NodeId(6)).unwrap());
        assert!(!d.insert_edge(NodeId(6), NodeId(4)).unwrap()); // already pending
        assert!(!d.insert_edge(NodeId(0), NodeId(1)).unwrap()); // already in base
        assert_ne!(d.fingerprint(), g.fingerprint());
        assert_eq!(d.num_edges(), g.num_edges() + 1);

        // Deleting the pending insert cancels it: clean again.
        assert!(d.delete_edge(NodeId(4), NodeId(6)).unwrap());
        assert!(d.is_clean());
        assert_eq!(d.fingerprint(), g.fingerprint());

        // Delete a base edge, then re-insert it: clean again.
        assert!(d.delete_edge(NodeId(0), NodeId(1)).unwrap());
        assert!(!d.delete_edge(NodeId(1), NodeId(0)).unwrap()); // already pending
        assert!(!d.delete_edge(NodeId(5), NodeId(0)).unwrap()); // absent: no-op
        assert_ne!(d.fingerprint(), g.fingerprint());
        assert!(d.insert_edge(NodeId(0), NodeId(1)).unwrap());
        assert!(d.is_clean());
        assert_eq!(d.fingerprint(), g.fingerprint());
    }

    #[test]
    fn delta_validation() {
        let g = two_triangles();
        let mut d = DeltaGraph::new(g);
        assert_eq!(
            d.insert_edge(NodeId(0), NodeId(0)),
            Err(DeltaError::SelfLoop(NodeId(0)))
        );
        assert_eq!(
            d.insert_edge(NodeId(0), NodeId(99)),
            Err(DeltaError::NodeOutOfRange(NodeId(99)))
        );
        assert_eq!(
            d.delete_edge(NodeId(99), NodeId(0)),
            Err(DeltaError::NodeOutOfRange(NodeId(99)))
        );
    }

    #[test]
    fn overlay_neighbors_match_compacted_graph() {
        let g = two_triangles();
        let mut d = DeltaGraph::new(g);
        d.insert_edge(NodeId(4), NodeId(6)).unwrap();
        d.insert_edge(NodeId(0), NodeId(5)).unwrap();
        d.delete_edge(NodeId(2), NodeId(3)).unwrap();
        d.delete_edge(NodeId(0), NodeId(1)).unwrap();

        let c = d.compact();
        assert_eq!(c.num_edges(), d.num_edges());
        for n in c.node_ids() {
            assert_eq!(d.neighbors(n), c.neighbors(n).to_vec(), "node {n:?}");
            assert_eq!(d.degree(n), c.degree(n));
        }
        for a in c.node_ids() {
            for bnode in c.node_ids() {
                assert_eq!(d.und_adjacent(a, bnode), c.has_undirected_edge(a, bnode));
            }
        }
        assert_eq!(
            d.touched_endpoints(),
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(5),
                NodeId(6)
            ]
        );
    }

    #[test]
    fn directed_overlay_views() {
        let mut b = GraphBuilder::directed();
        for _ in 0..4 {
            b.add_node(Label(0));
        }
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        let g = Arc::new(b.build());
        let mut d = DeltaGraph::new(g);

        // (0,1) and (1,0) are distinct directed edges.
        assert!(d.insert_edge(NodeId(1), NodeId(0)).unwrap());
        assert!(d.delete_edge(NodeId(1), NodeId(2)).unwrap());
        assert!(d.insert_edge(NodeId(3), NodeId(2)).unwrap());

        let c = d.compact();
        assert!(c.is_directed());
        for n in c.node_ids() {
            assert_eq!(d.neighbors(n), c.neighbors(n).to_vec(), "und {n:?}");
            assert_eq!(d.out_neighbors(n), c.out_neighbors(n).to_vec(), "out {n:?}");
        }
        assert!(d.has_edge(NodeId(1), NodeId(0)));
        assert!(d.has_edge(NodeId(0), NodeId(1)));
        assert!(!d.has_edge(NodeId(1), NodeId(2)));
        // Undirected adjacency 1-2 survives nothing: only (1,2) existed.
        assert!(!d.und_adjacent(NodeId(1), NodeId(2)));
    }

    #[test]
    fn compact_fingerprint_matches_from_scratch_build() {
        let g = two_triangles();
        let mut d = DeltaGraph::new(g);
        d.insert_edge(NodeId(4), NodeId(6)).unwrap();
        d.delete_edge(NodeId(0), NodeId(1)).unwrap();
        let c = d.compact();

        let mut b = GraphBuilder::undirected();
        for _ in 0..7 {
            b.add_node(Label(0));
        }
        for &(x, y) in &[
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
            (4, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        let fresh = b.build();
        assert_eq!(c.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn compact_preserves_attrs_and_drops_removed_edge_attrs() {
        let mut b = GraphBuilder::undirected();
        let n0 = b.add_node(Label(1));
        let n1 = b.add_node(Label(2));
        let n2 = b.add_node(Label(1));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.set_node_attr(n0, "org", "acme");
        b.set_edge_attr(n0, n1, "since", 2001i64);
        b.set_edge_attr(n1, n2, "since", 2002i64);
        let g = Arc::new(b.build());

        let mut d = DeltaGraph::new(g);
        d.delete_edge(n0, n1).unwrap();
        let c = d.compact();
        assert_eq!(c.label(n1), Label(2));
        assert_eq!(
            c.node_attr(n0, "org").map(|v| v.to_string()),
            Some("acme".into())
        );
        assert_eq!(c.edge_attr(n0, n1, "since"), None);
        assert!(c.edge_attr(n1, n2, "since").is_some());
    }
}
