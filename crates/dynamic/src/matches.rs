//! Incremental global match-list maintenance under an edge delta.
//!
//! Every census algorithm except ND-BAS starts from the pattern's global
//! match list, and recomputing it from scratch on each mutation is what
//! sets the incremental engine's speedup floor (`delta_bench`). This
//! module maintains the list as a delta structure instead:
//!
//! 1. **Survivor scan** — a previous match is *suspicious* iff the image
//!    of any pattern edge (positive *or* negative) lands on a touched
//!    pair (an inserted or deleted edge, as an unordered endpoint pair).
//!    Every match invalidated by the delta is suspicious: a valid match
//!    dies only when a positive-edge image is removed or a negative-edge
//!    image appears, and both events touch exactly such a pair. All
//!    suspicious matches are dropped wholesale — no matcher semantics
//!    are re-implemented here.
//! 2. **Anchored re-enumeration** — any match that is valid *now* but
//!    absent from the survivors contains a touched endpoint (it was
//!    either just created through a delta pair or just dropped as
//!    suspicious), and — the pattern being connected — lies entirely
//!    within `|V(p)| - 1` hops of that endpoint in the new graph. The
//!    matcher therefore runs only on the induced subgraph of that ball,
//!    and its matches are mapped back through the (strictly monotone)
//!    id mapping, which preserves automorphism-canonical forms.
//!
//! The maintained list equals the from-scratch list as a *set* (order
//! may differ: survivors keep their previous order, discoveries are
//! appended), and census counts are order-invariant sums over it, so
//! spliced counts stay bit-identical to a full recompute.
//!
//! Two pattern classes fall back to recomputation (`None`):
//! disconnected patterns (no locality bound for discoveries) and
//! patterns with node/edge attribute predicates (the ball's induced
//! subgraph does not carry attributes, so in-ball enumeration cannot
//! evaluate them).

use crate::delta::DeltaGraph;
use ego_census::exec_matches;
use ego_graph::{khop_nodes, FastHashSet, Graph, InducedSubgraph, NodeId};
use ego_matcher::{MatchList, PatternMatch};
use ego_pattern::Pattern;

/// Work accounting for one maintained pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Previous matches kept without re-verification.
    pub survivors: usize,
    /// Previous matches dropped as suspicious (their edges touched the
    /// delta; still-valid ones are re-found by the ball enumeration).
    pub dropped: usize,
    /// Matches found by the anchored ball enumeration that were not
    /// among the survivors.
    pub discovered: usize,
    /// Size of the re-enumeration ball (nodes), the |delta|-scaled cost.
    pub ball_nodes: usize,
}

impl MaintainStats {
    /// Accumulate another pattern's accounting into this one.
    pub fn absorb(&mut self, other: &MaintainStats) {
        self.survivors += other.survivors;
        self.dropped += other.dropped;
        self.discovered += other.discovered;
        self.ball_nodes += other.ball_nodes;
    }
}

/// Can `maintain_match_list` handle this pattern, or must the caller
/// recompute from scratch?
pub fn supports_match_maintenance(p: &Pattern) -> bool {
    p.is_connected() && p.node_predicates().is_empty() && p.edge_predicates().is_empty()
}

/// Maintain `previous` (the global match list of `pattern` on
/// `delta.base()`) into the global match list on `new_graph` (which must
/// be `delta.compact()` — the caller typically already compacted).
/// Returns `None` when the pattern is unsupported
/// ([`supports_match_maintenance`]); the caller falls back to a full
/// recomputation.
pub fn maintain_match_list(
    delta: &DeltaGraph,
    new_graph: &Graph,
    pattern: &Pattern,
    previous: &MatchList,
    threads: usize,
) -> Option<(MatchList, MaintainStats)> {
    if !supports_match_maintenance(pattern) {
        return None;
    }
    // Unordered touched pairs: every inserted or deleted edge, as
    // (min, max). Directed deltas are unordered here on purpose — the
    // suspicion test is conservative, and dropped-but-valid matches are
    // re-found by the ball enumeration.
    let mut touched_pairs: FastHashSet<(u32, u32)> = FastHashSet::default();
    for (a, b) in delta.added().chain(delta.removed()) {
        touched_pairs.insert((a.0.min(b.0), a.0.max(b.0)));
    }
    if touched_pairs.is_empty() {
        return Some((previous.clone(), MaintainStats::default()));
    }

    let mut stats = MaintainStats::default();
    let mut kept: Vec<PatternMatch> = Vec::with_capacity(previous.len());
    let mut kept_set: FastHashSet<Vec<NodeId>> = FastHashSet::default();
    let edges = || {
        pattern
            .positive_edges()
            .iter()
            .chain(pattern.negative_edges())
    };
    for m in previous.iter() {
        let suspicious = edges().any(|e| {
            let a = m.nodes[e.a.index()].0;
            let b = m.nodes[e.b.index()].0;
            touched_pairs.contains(&(a.min(b), a.max(b)))
        });
        if suspicious {
            stats.dropped += 1;
        } else {
            kept_set.insert(m.nodes.clone());
            kept.push(m.clone());
        }
    }
    stats.survivors = kept.len();

    // The anchored ball: all nodes within |V(p)| - 1 new-graph hops of a
    // touched endpoint. Any not-yet-kept valid match is connected, has a
    // node on a touched pair, and so lies entirely inside.
    let radius = (pattern.num_nodes() as u32).saturating_sub(1);
    let mut ball: Vec<NodeId> = Vec::new();
    for t in delta.touched_endpoints() {
        ball.extend(khop_nodes(new_graph, t, radius));
    }
    ball.sort_unstable();
    ball.dedup();
    stats.ball_nodes = ball.len();

    // Enumerate inside the ball's induced subgraph (labels carry over;
    // negative edges between ball members are present exactly when they
    // are in the full graph, so filtering is faithful for matches fully
    // inside — which all of these are). The local→global mapping is
    // strictly increasing, so canonical representatives stay canonical.
    let sub = InducedSubgraph::extract(new_graph, &ball);
    let local = exec_matches(&sub.graph, pattern, threads);
    for m in local.iter() {
        let global: Vec<NodeId> = m.nodes.iter().map(|&v| sub.to_global(v)).collect();
        if !kept_set.contains(&global) {
            kept.push(PatternMatch { nodes: global });
            stats.discovered += 1;
        }
    }
    Some((MatchList::from_matches(kept), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};
    use std::sync::Arc;

    fn ring(n: u32) -> Arc<Graph> {
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label(0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        Arc::new(b.build())
    }

    /// Canonical node-vector set of a list, for order-insensitive equality.
    fn as_set(list: &MatchList) -> std::collections::BTreeSet<Vec<NodeId>> {
        list.iter().map(|m| m.nodes.clone()).collect()
    }

    #[test]
    fn insert_discovers_and_delete_drops() {
        let g = ring(32);
        let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let prev = exec_matches(&g, &tri, 1);
        assert_eq!(prev.len(), 0);

        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let new_graph = d.compact();
        let (list, stats) = maintain_match_list(&d, &new_graph, &tri, &prev, 1).unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(stats.discovered, 1);
        assert_eq!(as_set(&list), as_set(&exec_matches(&new_graph, &tri, 1)));

        // Now delete a triangle edge from the chorded graph.
        let base2 = Arc::new(new_graph);
        let mut d2 = DeltaGraph::new(base2.clone());
        d2.delete_edge(NodeId(1), NodeId(2)).unwrap();
        let g2 = d2.compact();
        let (list2, stats2) = maintain_match_list(&d2, &g2, &tri, &list, 1).unwrap();
        assert_eq!(list2.len(), 0);
        assert_eq!(stats2.dropped, 1);
    }

    #[test]
    fn distant_matches_survive_untouched() {
        // Two chords far apart: maintain across a delta touching only one.
        let g = ring(64);
        let mut d0 = DeltaGraph::new(g.clone());
        d0.insert_edge(NodeId(0), NodeId(2)).unwrap();
        d0.insert_edge(NodeId(30), NodeId(32)).unwrap();
        let base = Arc::new(d0.compact());
        let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let prev = exec_matches(&base, &tri, 1);
        assert_eq!(prev.len(), 2);

        let mut d = DeltaGraph::new(base.clone());
        d.delete_edge(NodeId(0), NodeId(2)).unwrap();
        let new_graph = d.compact();
        let (list, stats) = maintain_match_list(&d, &new_graph, &tri, &prev, 1).unwrap();
        assert_eq!(stats.survivors, 1);
        assert_eq!(stats.dropped, 1);
        assert!(stats.ball_nodes < base.num_nodes());
        assert_eq!(as_set(&list), as_set(&exec_matches(&new_graph, &tri, 1)));
    }

    #[test]
    fn negative_edge_pattern_is_maintained() {
        // Open wedge A-B-C with A!-C: deleting a chord *creates* matches,
        // inserting one kills them. Both flows must stay exact.
        let g = ring(16);
        let wedge = Pattern::parse("PATTERN w { ?A-?B; ?B-?C; ?A!-?C; }").unwrap();
        let prev = exec_matches(&g, &wedge, 1);

        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let g1 = d.compact();
        let (list1, _) = maintain_match_list(&d, &g1, &wedge, &prev, 1).unwrap();
        assert_eq!(as_set(&list1), as_set(&exec_matches(&g1, &wedge, 1)));

        let base1 = Arc::new(g1);
        let mut d2 = DeltaGraph::new(base1.clone());
        d2.delete_edge(NodeId(0), NodeId(2)).unwrap();
        let g2 = d2.compact();
        let (list2, _) = maintain_match_list(&d2, &g2, &wedge, &list1, 1).unwrap();
        assert_eq!(as_set(&list2), as_set(&exec_matches(&g2, &wedge, 1)));
    }

    #[test]
    fn directed_patterns_and_graphs() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(8, Label(0));
        for i in 0..7u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = Arc::new(b.build());
        let path2 = Pattern::parse("PATTERN p { ?A->?B; ?B->?C; }").unwrap();
        let prev = exec_matches(&g, &path2, 1);
        assert_eq!(prev.len(), 6);

        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(7), NodeId(0)).unwrap();
        d.delete_edge(NodeId(3), NodeId(4)).unwrap();
        let new_graph = d.compact();
        let (list, _) = maintain_match_list(&d, &new_graph, &path2, &prev, 1).unwrap();
        assert_eq!(as_set(&list), as_set(&exec_matches(&new_graph, &path2, 1)));
    }

    #[test]
    fn unsupported_patterns_fall_back() {
        let g = ring(8);
        let disconnected = Pattern::parse("PATTERN d { ?A-?B; ?C-?D; }").unwrap();
        let d = DeltaGraph::new(g.clone());
        let prev = MatchList::default();
        assert!(maintain_match_list(&d, &g, &disconnected, &prev, 1).is_none());
        assert!(!supports_match_maintenance(&disconnected));
    }

    #[test]
    fn clean_delta_returns_previous() {
        let g = ring(8);
        let edge = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let prev = exec_matches(&g, &edge, 1);
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        d.delete_edge(NodeId(0), NodeId(2)).unwrap();
        let (list, stats) = maintain_match_list(&d, &g, &edge, &prev, 1).unwrap();
        assert_eq!(list.len(), prev.len());
        assert_eq!(stats, MaintainStats::default());
    }
}
