//! The dirty focal set: which nodes can see a delta.
//!
//! A focal node `n`'s census count over `SUBGRAPH(n, k)` can only change
//! if its `k`-hop neighborhood contains a touched endpoint of the delta
//! batch. Neighborhoods traverse the undirected view, so "n can see
//! endpoint e" is symmetric — the reverse bounded-BFS from the endpoints
//! the ISSUE asks for *is* a forward bounded-BFS from the endpoints.
//!
//! Which graph to run it on: a node affected by a *deletion* is within
//! `k` of the deleted edge's endpoints in the **old** graph; a node
//! affected by an *insertion* is within `k` of the inserted edge's
//! endpoints in the **new** graph. Both are subgraphs of the *union*
//! graph (base edges plus added edges, removals ignored), so one BFS over
//! the union view covers every case conservatively — a superset of the
//! truly-affected nodes is always safe, it merely re-censuses a few clean
//! nodes.

use crate::delta::DeltaGraph;
use ego_graph::{FastHashMap, NodeId};
use std::collections::VecDeque;

/// Distances from the touched delta endpoints, bounded at `k_max`,
/// computed once per delta batch and queried per spec radius.
#[derive(Clone, Debug)]
pub struct DirtyIndex {
    /// Discovered nodes in nondecreasing distance order (BFS order).
    order: Vec<NodeId>,
    /// Distance per node; `u32::MAX` means farther than `k_max`.
    dist: Vec<u32>,
    k_max: u32,
}

impl DirtyIndex {
    /// Multi-source bounded BFS from `delta.touched_endpoints()` at radius
    /// `k_max` over the union of base and added edges.
    pub fn build(delta: &DeltaGraph, k_max: u32) -> Self {
        let base = delta.base();
        let n = base.num_nodes();
        // Adjacency the CSR does not know about: the added edges, viewed
        // undirected (unioned on top of base.neighbors during the scan).
        let mut extra: FastHashMap<u32, Vec<NodeId>> = FastHashMap::default();
        for (a, b) in delta.added() {
            extra.entry(a.0).or_default().push(b);
            extra.entry(b.0).or_default().push(a);
        }

        let mut dist = vec![u32::MAX; n];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        for s in delta.touched_endpoints() {
            dist[s.index()] = 0;
            order.push(s);
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du == k_max {
                continue;
            }
            let extras = extra.get(&u.0).map(Vec::as_slice).unwrap_or(&[]);
            for &v in base.neighbors(u).iter().chain(extras) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    order.push(v);
                    queue.push_back(v);
                }
            }
        }
        DirtyIndex { order, dist, k_max }
    }

    /// The radius this index was built for.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Is `n` within `k` of a touched endpoint? `k` must be `<= k_max`.
    #[inline]
    pub fn is_dirty(&self, n: NodeId, k: u32) -> bool {
        debug_assert!(k <= self.k_max);
        self.dist[n.index()] <= k
    }

    /// All nodes within `k` of a touched endpoint, as a prefix of the
    /// BFS discovery order (nondecreasing distance). `k` must be
    /// `<= k_max`.
    pub fn within(&self, k: u32) -> &[NodeId] {
        debug_assert!(k <= self.k_max);
        let p = self.order.partition_point(|n| self.dist[n.index()] <= k);
        &self.order[..p]
    }
}

/// The dirty focal set at radius `k`, sorted by node id: exactly the
/// nodes whose `k`-hop neighborhood can see a touched delta endpoint.
pub fn dirty_focal_nodes(delta: &DeltaGraph, k: u32) -> Vec<NodeId> {
    let mut v = DirtyIndex::build(delta, k).within(k).to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label, NodeId};
    use std::sync::Arc;

    /// A path 0-1-2-...-9.
    fn path10() -> Arc<ego_graph::Graph> {
        let mut b = GraphBuilder::undirected();
        for _ in 0..10 {
            b.add_node(Label(0));
        }
        for i in 0..9u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        Arc::new(b.build())
    }

    #[test]
    fn deletion_dirty_set_is_a_ball_around_the_edge() {
        let g = path10();
        let mut d = DeltaGraph::new(g);
        d.delete_edge(NodeId(4), NodeId(5)).unwrap();
        // k=1: endpoints plus their base neighbors.
        assert_eq!(dirty_focal_nodes(&d, 1), [3, 4, 5, 6].map(NodeId).to_vec());
        // k=2 widens by one hop each way. Note the BFS runs over the
        // union view, so 4 and 5 still see each other's side.
        assert_eq!(
            dirty_focal_nodes(&d, 2),
            [2, 3, 4, 5, 6, 7].map(NodeId).to_vec()
        );
        assert_eq!(dirty_focal_nodes(&d, 0), [4, 5].map(NodeId).to_vec());
    }

    #[test]
    fn insertion_dirty_set_uses_the_added_edge() {
        let g = path10();
        let mut d = DeltaGraph::new(g);
        d.insert_edge(NodeId(0), NodeId(9)).unwrap();
        // k=1 from {0, 9} over the union: 0,1,9,8 — and each endpoint is
        // now one hop from the other via the new edge (already a source).
        assert_eq!(dirty_focal_nodes(&d, 1), [0, 1, 8, 9].map(NodeId).to_vec());
    }

    #[test]
    fn within_prefixes_are_nested_per_radius() {
        let g = path10();
        let mut d = DeltaGraph::new(g);
        d.delete_edge(NodeId(0), NodeId(1)).unwrap();
        d.insert_edge(NodeId(7), NodeId(9)).unwrap();
        let idx = DirtyIndex::build(&d, 3);
        for k in 0..3u32 {
            let small: Vec<_> = idx.within(k).to_vec();
            let big = idx.within(k + 1);
            assert!(small.iter().all(|n| big.contains(n)), "k={k}");
            for &n in &small {
                assert!(idx.is_dirty(n, k));
            }
        }
    }

    #[test]
    fn clean_delta_has_empty_dirty_set() {
        let g = path10();
        let d = DeltaGraph::new(g);
        assert!(dirty_focal_nodes(&d, 3).is_empty());
    }
}
