//! Incremental census: re-census the dirty focal set, splice the rest.

use crate::delta::DeltaGraph;
use crate::dirty::DirtyIndex;
use crate::matches::{maintain_match_list, MaintainStats};
use ego_census::{
    run_batch_exec, Algorithm, CensusError, CensusSpec, CountVector, ExecConfig, FocalNodes,
    PtConfig,
};
use ego_graph::{Graph, NodeId};
use ego_matcher::MatchList;
use std::sync::Arc;

/// What an incremental update had to do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Touched delta endpoints seeding the dirty BFS.
    pub touched_endpoints: usize,
    /// Focal nodes re-censused (summed over specs).
    pub dirty_focal: usize,
    /// Focal nodes whose previous count was spliced through unchanged
    /// (summed over specs).
    pub clean_focal: usize,
}

/// Result of an incremental update: the compacted graph, the refreshed
/// per-spec counts, and how much work was avoided.
#[derive(Clone, Debug)]
pub struct IncrementalUpdate {
    /// The base graph with the delta batch applied, frozen back to CSR.
    pub graph: Graph,
    /// Per-spec counts, bit-identical to a full recompute on `graph`.
    pub counts: Vec<CountVector>,
    /// Per-spec global match lists on the new graph, when available —
    /// maintained incrementally from the caller's previous lists or
    /// computed by the fresh run (`None` for ND-BAS, which never
    /// materializes them). Feed these back on the next update.
    pub matches: Vec<Option<Arc<MatchList>>>,
    /// Work accounting.
    pub stats: UpdateStats,
    /// Match-list maintenance accounting (summed over specs).
    pub match_stats: MaintainStats,
}

/// Incrementally maintain a batch of census results under an edge-delta
/// batch.
///
/// `previous[i]` must be the counts of `specs[i]` on `delta.base()` (same
/// pattern, radius, and focal set). The delta is compacted into a new
/// graph, the dirty focal set is derived by one bounded BFS at the
/// largest spec radius, and only dirty focal nodes are re-censused —
/// through the ordinary [`run_batch_exec`] path, so every algorithm
/// family and thread count yields counts bit-identical to a full
/// recompute. Counts for clean focal nodes are spliced from `previous`.
///
/// A plain `COUNTP` count for focal node `n` at radius `k` depends only
/// on `S(n, k)`, the subgraph induced by nodes within `k` of `n`. If no
/// touched endpoint is within `k` of `n` (in old or new graph — the
/// dirty BFS union view covers both), `S(n, k)` is unchanged, hence so
/// is the count. `COUNTSP` counts are *not* that local: the pattern
/// match is global and only the subpattern image must land in
/// `S(n, k)`, so a changed match can affect focal nodes up to the
/// pattern diameter further out. Its dirty radius is therefore widened
/// to `k + (|V(p)| - 1)` (every changed match contains a touched
/// endpoint, and — for a connected pattern — its image nodes lie within
/// `|V(p)| - 1` union-graph hops of it); a disconnected pattern has no
/// such bound, so every focal node of that spec goes dirty. Without
/// previous match lists, global match lists are recomputed on the new
/// graph; see [`update_batch_exec_with_matches`] to maintain them
/// incrementally instead.
pub fn update_batch_exec(
    delta: &DeltaGraph,
    specs: &[CensusSpec<'_>],
    previous: &[CountVector],
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<IncrementalUpdate, CensusError> {
    let none = vec![None; specs.len()];
    update_batch_exec_with_matches(delta, specs, previous, &none, algorithm, config, exec)
}

/// [`update_batch_exec`] plus incremental **match-list maintenance**:
/// `previous_matches[i]`, when given, must be the global match list of
/// `specs[i]`'s pattern on `delta.base()`. Supported patterns
/// ([`crate::matches::supports_match_maintenance`]) are maintained in
/// |delta|-scaled work (survivor scan + anchored ball re-enumeration,
/// see [`crate::matches`]) and fed to [`run_batch_exec`] as provided
/// lists, so the fresh run skips global matching entirely; unsupported
/// patterns (or `None` slots) recompute as before. The returned
/// [`IncrementalUpdate::matches`] carries each spec's list on the new
/// graph for the caller to feed back on the next update.
pub fn update_batch_exec_with_matches(
    delta: &DeltaGraph,
    specs: &[CensusSpec<'_>],
    previous: &[CountVector],
    previous_matches: &[Option<Arc<MatchList>>],
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<IncrementalUpdate, CensusError> {
    let graph = delta.compact();
    let out = update_batch_on(
        delta,
        &graph,
        specs,
        previous,
        previous_matches,
        algorithm,
        config,
        exec,
    )?;
    Ok(IncrementalUpdate {
        graph,
        counts: out.counts,
        matches: out.matches,
        stats: out.stats,
        match_stats: out.match_stats,
    })
}

/// [`update_batch_exec_with_matches`] minus the compaction: `graph` must
/// be `delta.compact()` (or byte-identical). Callers maintaining many
/// independent batches over one mutation — the continuous subscription
/// engine, where every subscription updates against the same new graph —
/// compact once and share it.
#[allow(clippy::too_many_arguments)]
pub fn update_batch_on(
    delta: &DeltaGraph,
    graph: &Graph,
    specs: &[CensusSpec<'_>],
    previous: &[CountVector],
    previous_matches: &[Option<Arc<MatchList>>],
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<UpdateOutcome, CensusError> {
    assert_eq!(
        specs.len(),
        previous_matches.len(),
        "one previous match-list slot per spec"
    );
    assert_eq!(
        specs.len(),
        previous.len(),
        "one previous CountVector per spec"
    );
    for (spec, prev) in specs.iter().zip(previous) {
        spec.validate(graph)?;
        assert_eq!(
            prev.len(),
            graph.num_nodes(),
            "previous counts cover a different node set"
        );
    }

    let radii: Vec<Option<u32>> = specs.iter().map(dirty_radius).collect();
    let k_max = radii.iter().flatten().copied().max().unwrap_or(0);
    let index = DirtyIndex::build(delta, k_max);

    // Per-spec dirty focal sets: focal ∩ within(dirty radius).
    let mut stats = UpdateStats {
        touched_endpoints: delta.touched_endpoints().len(),
        ..UpdateStats::default()
    };
    let mut dirty_sets: Vec<Vec<NodeId>> = Vec::with_capacity(specs.len());
    let mut restricted: Vec<CensusSpec<'_>> = Vec::with_capacity(specs.len());
    for (spec, radius) in specs.iter().zip(&radii) {
        let focal = spec.focal().nodes(graph);
        let dirty: Vec<NodeId> = focal
            .iter()
            .copied()
            .filter(|&n| match radius {
                Some(r) => index.is_dirty(n, *r),
                None => true,
            })
            .collect();
        stats.dirty_focal += dirty.len();
        stats.clean_focal += focal.len() - dirty.len();
        let mut r =
            CensusSpec::single(spec.pattern(), spec.k()).with_focal(FocalNodes::Set(dirty.clone()));
        if let Some(sp) = spec.subpattern_name() {
            r = r.with_subpattern(sp);
        }
        dirty_sets.push(dirty);
        restricted.push(r);
    }

    // Maintain the global match lists the caller handed in. One
    // maintained list per distinct pattern: specs sharing a pattern
    // (by pointer, as in `run_batch_exec`) share the work.
    let mut match_stats = MaintainStats::default();
    let mut maintained: Vec<Option<Arc<MatchList>>> = vec![None; specs.len()];
    for i in 0..specs.len() {
        let Some(prev_list) = &previous_matches[i] else {
            continue;
        };
        if let Some(j) = (0..i).find(|&j| {
            maintained[j].is_some() && std::ptr::eq(specs[j].pattern(), specs[i].pattern())
        }) {
            maintained[i] = maintained[j].clone();
            continue;
        }
        if let Some((list, st)) =
            maintain_match_list(delta, graph, specs[i].pattern(), prev_list, exec.resolve())
        {
            match_stats.absorb(&st);
            maintained[i] = Some(Arc::new(list));
        }
    }

    // Re-census the dirty nodes only. With an all-clean batch there is
    // nothing to run (maintained lists still carry over).
    let fresh = if stats.dirty_focal == 0 {
        None
    } else {
        let provided: Vec<Option<Arc<MatchList>>> = maintained.clone();
        Some(run_batch_exec(
            graph,
            &restricted,
            algorithm,
            config,
            exec,
            &provided,
        )?)
    };

    // Splice: dirty nodes take the fresh count, clean focal nodes keep
    // their previous one. The focal mask matches a full recompute's.
    let mut counts = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let mask = spec.focal().mask(graph);
        let mut dirty_mask = vec![false; graph.num_nodes()];
        for &n in &dirty_sets[i] {
            dirty_mask[n.index()] = true;
        }
        let mut cv = CountVector::new(graph.num_nodes(), mask);
        for n in graph.node_ids() {
            if !cv.is_focal(n) {
                continue;
            }
            let v = if dirty_mask[n.index()] {
                fresh
                    .as_ref()
                    .expect("dirty nodes imply a fresh run")
                    .counts[i]
                    .get(n)
            } else {
                previous[i].get(n)
            };
            cv.set(n, v);
        }
        counts.push(cv);
    }

    // Lists for the caller's next round: prefer the fresh run's (for
    // slots it filled — it echoes provided lists and computes missing
    // ones), falling back to maintained lists (e.g. ND-BAS never
    // materializes lists, and an all-clean batch skips the run).
    let matches: Vec<Option<Arc<MatchList>>> = match &fresh {
        Some(batch) => batch
            .matches
            .iter()
            .zip(&maintained)
            .map(|(f, m)| f.clone().or_else(|| m.clone()))
            .collect(),
        None => maintained,
    };

    Ok(UpdateOutcome {
        counts,
        matches,
        stats,
        match_stats,
    })
}

/// Counts, match lists, and accounting of one [`update_batch_on`] call
/// (an [`IncrementalUpdate`] without the graph, which the caller owns).
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Per-spec counts, bit-identical to a full recompute.
    pub counts: Vec<CountVector>,
    /// Per-spec global match lists on the new graph, when available.
    pub matches: Vec<Option<Arc<MatchList>>>,
    /// Work accounting.
    pub stats: UpdateStats,
    /// Match-list maintenance accounting (summed over specs).
    pub match_stats: MaintainStats,
}

/// How far (in union-graph hops from a touched endpoint) a spec's count
/// can be perturbed: `k` for plain `COUNTP`, `k + (|V(p)| - 1)` for
/// `COUNTSP` over a connected pattern, unbounded (`None` — every focal
/// node is dirty) for `COUNTSP` over a disconnected pattern.
fn dirty_radius(spec: &CensusSpec<'_>) -> Option<u32> {
    if spec.subpattern_name().is_none() {
        return Some(spec.k());
    }
    let p = spec.pattern();
    if !p.is_connected() {
        return None;
    }
    Some(spec.k() + (p.num_nodes() as u32).saturating_sub(1))
}

/// Single-spec convenience wrapper around [`update_batch_exec`].
pub fn update_census_exec(
    delta: &DeltaGraph,
    spec: &CensusSpec<'_>,
    previous: &CountVector,
    algorithm: Algorithm,
    config: &PtConfig,
    exec: &ExecConfig,
) -> Result<IncrementalUpdate, CensusError> {
    update_batch_exec(
        delta,
        std::slice::from_ref(spec),
        std::slice::from_ref(previous),
        algorithm,
        config,
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_census::run_census_exec;
    use ego_graph::{GraphBuilder, Label, NodeId};
    use ego_pattern::Pattern;
    use std::sync::Arc;

    fn ring(n: u32) -> Arc<Graph> {
        let mut b = GraphBuilder::undirected();
        for _ in 0..n {
            b.add_node(Label(0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        Arc::new(b.build())
    }

    #[test]
    fn localized_delta_dirties_a_strict_subset_and_counts_match_full() {
        let g = ring(64);
        let mut d = DeltaGraph::new(g.clone());
        // One chord far from most of the ring.
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();

        let p = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let spec = CensusSpec::single(&p, 1);
        let prev = run_census_exec(
            &g,
            &spec,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();

        let up = update_census_exec(
            &d,
            &spec,
            &prev,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();

        assert!(up.stats.dirty_focal > 0);
        assert!(
            up.stats.dirty_focal < g.num_nodes(),
            "localized delta must not dirty every node"
        );
        let full = run_census_exec(
            &up.graph,
            &spec,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(up.counts[0], full);
        // The chord creates exactly one triangle 0-1-2.
        assert_eq!(up.counts[0].get(NodeId(1)), 1);
    }

    #[test]
    fn countsp_dirty_radius_extends_beyond_k() {
        // Regression: COUNTSP matches are global — only the subpattern
        // image must land in S(n, k) — so the chord 0-2 (creating
        // triangle 0-1-2) changes node 1's k=0 count even though node 1
        // is 1 > k hops from both touched endpoints. The dirty radius
        // must be widened by the pattern diameter bound.
        let g = ring(16);
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();

        let p =
            Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }").unwrap();
        let spec = CensusSpec::single(&p, 0).with_subpattern("one");
        let prev = run_census_exec(
            &g,
            &spec,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(prev.get(NodeId(1)), 0);
        let up = update_census_exec(
            &d,
            &spec,
            &prev,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        let full = run_census_exec(
            &up.graph,
            &spec,
            Algorithm::NdPivot,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(up.counts[0], full);
        assert!(up.counts[0].get(NodeId(1)) > 0);
        // Still a strict subset of the ring.
        assert!(up.stats.dirty_focal < g.num_nodes());
    }

    #[test]
    fn clean_delta_is_a_cheap_no_op() {
        let g = ring(16);
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        d.delete_edge(NodeId(0), NodeId(2)).unwrap();

        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let spec = CensusSpec::single(&p, 2);
        let prev = run_census_exec(
            &g,
            &spec,
            Algorithm::PtBaseline,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        let up = update_census_exec(
            &d,
            &spec,
            &prev,
            Algorithm::PtBaseline,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(up.stats.dirty_focal, 0);
        assert_eq!(up.stats.clean_focal, 16);
        assert_eq!(up.counts[0], prev);
        assert_eq!(up.graph.fingerprint(), g.fingerprint());
    }

    #[test]
    fn explicit_focal_sets_are_respected() {
        let g = ring(32);
        let mut d = DeltaGraph::new(g.clone());
        d.insert_edge(NodeId(4), NodeId(6)).unwrap();

        let p = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let focal: Vec<NodeId> = (0..10).map(NodeId).collect();
        let spec = CensusSpec::single(&p, 1).with_focal(FocalNodes::Set(focal));
        let prev = run_census_exec(
            &g,
            &spec,
            Algorithm::PtOpt,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        let up = update_census_exec(
            &d,
            &spec,
            &prev,
            Algorithm::PtOpt,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        let full = run_census_exec(
            &up.graph,
            &spec,
            Algorithm::PtOpt,
            &PtConfig::default(),
            &ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(up.counts[0], full);
        // Only focal nodes near the chord were re-censused.
        assert!(up.stats.dirty_focal <= 5);
    }
}
