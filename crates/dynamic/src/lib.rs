//! Incremental census over mutable graphs.
//!
//! The paper's census engine ([`ego_census`]) evaluates over an immutable
//! CSR [`ego_graph::Graph`]. This crate makes the census *maintainable*
//! under edge insertions and deletions instead of rebuilt from scratch:
//!
//! * [`DeltaGraph`] — a mutable overlay over a frozen base graph. Edge
//!   inserts and deletes accumulate in canonical delta sets (an insert
//!   cancels a pending delete of the same edge and vice versa), neighbor
//!   iteration preserves the base graph's sorted-by-id contract, and
//!   [`DeltaGraph::fingerprint`] is mutation-aware so every existing
//!   fingerprint-keyed cache entry stays sound. [`DeltaGraph::compact`]
//!   freezes the overlay back into a plain CSR `Graph`.
//! * [`DirtyIndex`] / [`dirty_focal_nodes`] — the *dirty focal set*:
//!   exactly the nodes whose `k`-hop neighborhood can see a touched delta
//!   endpoint, found by a multi-source bounded BFS from the endpoints at
//!   radius `k` over the union of the base and added edges (neighborhoods
//!   are symmetric, so the reverse bounded-BFS is the same BFS).
//! * [`update_census_exec`] / [`update_batch_exec`] — re-census *only*
//!   the dirty focal nodes on the compacted graph via the existing
//!   [`ego_census::run_batch_exec`] path, then splice the refreshed
//!   counts into the previous [`ego_census::CountVector`]s. Results are
//!   bit-identical to a full recompute for every algorithm family
//!   (enforced by `tests/incremental_equivalence.rs`).
//! * [`maintain_match_list`] — incremental **match-list maintenance**:
//!   the previous global match list is carried across a delta in
//!   |delta|-scaled work (drop matches touching a mutated pair, re-find
//!   matches through the mutation by anchored search in the ball around
//!   the touched endpoints) instead of re-matching the whole graph.
//!   [`update_batch_exec_with_matches`] / [`update_batch_on`] feed the
//!   maintained lists into the batch runner as provided lists, which is
//!   what lets the continuous subscription tier scale with the delta.

pub mod delta;
pub mod dirty;
pub mod engine;
pub mod matches;

pub use delta::{DeltaError, DeltaGraph};
pub use dirty::{dirty_focal_nodes, DirtyIndex};
pub use engine::{
    update_batch_exec, update_batch_exec_with_matches, update_batch_on, update_census_exec,
    IncrementalUpdate, UpdateOutcome, UpdateStats,
};
pub use matches::{maintain_match_list, supports_match_maintenance, MaintainStats};
