//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. Malformed input produces an `error` response
//! and leaves the connection open.
//!
//! Requests (`op` selects the kind):
//!
//! ```text
//! {"op":"ping"}
//! {"op":"define","pattern":"PATTERN t { ?A-?B; ?B-?C; ?A-?C; }"}
//! {"op":"query","sql":"SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes"}
//! {"op":"query","sql":"SELECT ...","shard":"0/4"}
//! {"op":"explain","sql":"SELECT ..."}
//! {"op":"analyze"}
//! {"op":"update","mutations":"INSERT EDGE (4, 6); DELETE EDGE (0, 1)"}
//! {"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes"}
//! {"op":"subscribe","sql":"SUBSCRIBE SELECT ...","shard":"0/4"}
//! {"op":"unsubscribe","id":1}
//! {"op":"materialize","sql":"MATERIALIZE t RADIUS 1 MATCHES"}
//! {"op":"materialize","sql":"MATERIALIZE t RADIUS 1","shard":"0/4"}
//! {"op":"drop_view","sql":"DROP VIEW t RADIUS 1"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are `table` or `error`:
//!
//! ```text
//! {"ok":true,"type":"table","columns":["ID","..."],"rows":[[0,1],[1,0]]}
//! {"ok":false,"type":"error","message":"unknown pattern `t`"}
//! ```
//!
//! Every successful operation answers with a table — `ping` a one-cell
//! `reply` table, `define` a one-cell `defined` table, `stats` a
//! key/value table — so clients need exactly one success decoder.
//!
//! A connection holding subscriptions additionally receives **notify
//! frames**, pushed asynchronously after each applied mutation batch:
//!
//! ```text
//! {"ok":true,"type":"notify","subscription":1,"generation":3,
//!  "columns":["COUNTP(t, SUBGRAPH(ID, 1))"],"rows":[[4,"COUNTP(t, SUBGRAPH(ID, 1))",0,1]]}
//! ```
//!
//! Each row is `[focal, column, old, new]`. Frames always precede the
//! response of the `update` that produced them when both travel over the
//! same connection, so a client that mutates and subscribes on one
//! connection collects the full delta by reading until its update
//! response arrives ([`crate::Client`] does this transparently).

use crate::json::Json;
use ego_query::{ShardSpec, Table, Value};

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Define a pattern in the session catalog.
    Define {
        /// `PATTERN name { ... }` DSL text.
        pattern: String,
    },
    /// Execute a census SQL statement (cached).
    Query {
        /// The SQL text.
        sql: String,
        /// Optional focal shard (`"i/n"` on the wire): restrict
        /// single-table census statements to the `i`-th of `n`
        /// contiguous node-ID ranges. The scatter/gather router sends
        /// one shard per worker; absent, the server's own `--shard-of`
        /// default (usually the whole range) applies.
        shard: Option<ShardSpec>,
    },
    /// Describe the plan for a statement (never cached).
    Explain {
        /// The SQL text.
        sql: String,
    },
    /// Profile the shared graph and persist the statistics snapshot so
    /// the cost-based planner runs on measured numbers; answers with
    /// the profile as a key/value table.
    Analyze,
    /// Apply an edge-mutation script (`INSERT EDGE (a, b); DELETE EDGE
    /// (a, b); ...`) to the shared graph, invalidating the caches.
    Update {
        /// The mutation script.
        mutations: String,
    },
    /// Register a standing census statement (`SUBSCRIBE SELECT ...`):
    /// after every applied mutation the server pushes the changed rows
    /// as notify frames on this connection. Answers with a key/value
    /// table carrying the subscription id.
    Subscribe {
        /// The `SUBSCRIBE SELECT ...` text.
        sql: String,
        /// Optional focal shard, like [`Request::Query`]'s: the router
        /// registers one shard of the focal space per worker.
        shard: Option<ShardSpec>,
    },
    /// Remove a subscription created on this connection.
    Unsubscribe {
        /// The id from the subscribe acknowledgment.
        id: u64,
    },
    /// Eagerly compute a pattern's census and pin it in the view
    /// registry (`MATERIALIZE <pattern> RADIUS k [MATCHES]`): later
    /// `COUNTP`/`COUNTSP` statements over the same (pattern, radius)
    /// rewrite to pure lookups, and every applied mutation refreshes the
    /// pinned counts through the incremental engine.
    Materialize {
        /// The `MATERIALIZE ...` statement text.
        sql: String,
        /// Optional focal shard, like [`Request::Query`]'s: the router
        /// materializes one focal shard per worker, so each worker's
        /// view covers exactly the range it scatters.
        shard: Option<ShardSpec>,
    },
    /// Drop a materialized view (`DROP VIEW <pattern> RADIUS k`).
    DropView {
        /// The `DROP VIEW ...` statement text.
        sql: String,
    },
    /// Server and cache counters.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Encode as a single-line JSON string (no trailing newline).
    pub fn encode(&self) -> String {
        let obj = match self {
            Request::Ping => vec![("op".to_string(), Json::Str("ping".into()))],
            Request::Define { pattern } => vec![
                ("op".to_string(), Json::Str("define".into())),
                ("pattern".to_string(), Json::Str(pattern.clone())),
            ],
            Request::Query { sql, shard } => {
                let mut fields = vec![
                    ("op".to_string(), Json::Str("query".into())),
                    ("sql".to_string(), Json::Str(sql.clone())),
                ];
                if let Some(s) = shard {
                    fields.push(("shard".to_string(), Json::Str(s.to_string())));
                }
                fields
            }
            Request::Explain { sql } => vec![
                ("op".to_string(), Json::Str("explain".into())),
                ("sql".to_string(), Json::Str(sql.clone())),
            ],
            Request::Analyze => vec![("op".to_string(), Json::Str("analyze".into()))],
            Request::Stats => vec![("op".to_string(), Json::Str("stats".into()))],
            Request::Update { mutations } => vec![
                ("op".to_string(), Json::Str("update".into())),
                ("mutations".to_string(), Json::Str(mutations.clone())),
            ],
            Request::Subscribe { sql, shard } => {
                let mut fields = vec![
                    ("op".to_string(), Json::Str("subscribe".into())),
                    ("sql".to_string(), Json::Str(sql.clone())),
                ];
                if let Some(s) = shard {
                    fields.push(("shard".to_string(), Json::Str(s.to_string())));
                }
                fields
            }
            Request::Unsubscribe { id } => vec![
                ("op".to_string(), Json::Str("unsubscribe".into())),
                ("id".to_string(), Json::Int(*id as i64)),
            ],
            Request::Materialize { sql, shard } => {
                let mut fields = vec![
                    ("op".to_string(), Json::Str("materialize".into())),
                    ("sql".to_string(), Json::Str(sql.clone())),
                ];
                if let Some(s) = shard {
                    fields.push(("shard".to_string(), Json::Str(s.to_string())));
                }
                fields
            }
            Request::DropView { sql } => vec![
                ("op".to_string(), Json::Str("drop_view".into())),
                ("sql".to_string(), Json::Str(sql.clone())),
            ],
            Request::Shutdown => vec![("op".to_string(), Json::Str("shutdown".into()))],
        };
        Json::Obj(obj).render()
    }

    /// Decode one request line. Errors are human-readable protocol
    /// diagnostics destined for an error response.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request must be an object with a string `op` field")?;
        let field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("op `{op}` requires a string `{name}` field"))
        };
        match op {
            "ping" => Ok(Request::Ping),
            "define" => Ok(Request::Define {
                pattern: field("pattern")?,
            }),
            "query" => {
                let shard = match v.get("shard") {
                    None => None,
                    Some(j) => {
                        let text = j.as_str().ok_or("`shard` must be an `i/n` string")?;
                        Some(ShardSpec::parse(text)?)
                    }
                };
                Ok(Request::Query {
                    sql: field("sql")?,
                    shard,
                })
            }
            "explain" => Ok(Request::Explain { sql: field("sql")? }),
            "analyze" => Ok(Request::Analyze),
            "update" => Ok(Request::Update {
                mutations: field("mutations")?,
            }),
            "subscribe" => {
                let shard = match v.get("shard") {
                    None => None,
                    Some(j) => {
                        let text = j.as_str().ok_or("`shard` must be an `i/n` string")?;
                        Some(ShardSpec::parse(text)?)
                    }
                };
                Ok(Request::Subscribe {
                    sql: field("sql")?,
                    shard,
                })
            }
            "unsubscribe" => {
                let id = v
                    .get("id")
                    .and_then(Json::as_i64)
                    .filter(|&i| i >= 0)
                    .ok_or("op `unsubscribe` requires a non-negative integer `id` field")?;
                Ok(Request::Unsubscribe { id: id as u64 })
            }
            "materialize" => {
                let shard = match v.get("shard") {
                    None => None,
                    Some(j) => {
                        let text = j.as_str().ok_or("`shard` must be an `i/n` string")?;
                        Some(ShardSpec::parse(text)?)
                    }
                };
                Ok(Request::Materialize {
                    sql: field("sql")?,
                    shard,
                })
            }
            "drop_view" => Ok(Request::DropView { sql: field("sql")? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (ping, define, query, explain, analyze, update, \
                 subscribe, unsubscribe, materialize, drop_view, stats, shutdown)"
            )),
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A result table.
    Table(TableData),
    /// A pushed subscription frame (asynchronous; not the answer to any
    /// request). [`crate::Client::recv_response`] filters these into its
    /// notification buffer, so request/response pairing never sees them.
    Notify(NotifyFrame),
    /// A failure; the connection stays open.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// One pushed subscription frame on the wire.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct NotifyFrame {
    /// The subscription the frame belongs to (connection-scoped id).
    pub subscription: u64,
    /// Graph generation after the mutation batch that produced it.
    pub generation: u64,
    /// Aggregate column names of the subscribed statement.
    pub columns: Vec<String>,
    /// Changed rows `[focal, column, old, new]`, focal-ascending then
    /// column order. Empty rows = generation acknowledgment.
    pub rows: Vec<Vec<Value>>,
}

/// A result table on the wire: column names plus rows of values.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TableData {
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major values.
    pub rows: Vec<Vec<Value>>,
}

impl TableData {
    /// Convert from an engine result table.
    pub fn from_table(t: &Table) -> TableData {
        TableData {
            columns: t.columns().to_vec(),
            rows: t.rows().to_vec(),
        }
    }

    /// Look up the value of a two-column key/value table (the `stats`
    /// response shape) as an integer.
    pub fn stat(&self, name: &str) -> Option<i64> {
        self.rows
            .iter()
            .find(|r| matches!(r.first(), Some(Value::Str(s)) if s == name))
            .and_then(|r| r.get(1))
            .and_then(Value::as_int)
    }
}

impl Response {
    /// A table response from an engine result.
    pub fn table(t: &Table) -> Response {
        Response::Table(TableData::from_table(t))
    }

    /// An error response.
    pub fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
        }
    }

    /// True for `Error`.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// Encode as a single-line JSON string (no trailing newline).
    /// Deterministic: equal responses encode to identical bytes.
    pub fn encode(&self) -> String {
        match self {
            Response::Table(t) => {
                let columns = Json::Arr(t.columns.iter().cloned().map(Json::Str).collect());
                let rows = Json::Arr(
                    t.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                        .collect(),
                );
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("table".into())),
                    ("columns".into(), columns),
                    ("rows".into(), rows),
                ])
                .render()
            }
            Response::Notify(f) => {
                let columns = Json::Arr(f.columns.iter().cloned().map(Json::Str).collect());
                let rows = Json::Arr(
                    f.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                        .collect(),
                );
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("notify".into())),
                    ("subscription".into(), Json::Int(f.subscription as i64)),
                    ("generation".into(), Json::Int(f.generation as i64)),
                    ("columns".into(), columns),
                    ("rows".into(), rows),
                ])
                .render()
            }
            Response::Error { message } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("type".into(), Json::Str("error".into())),
                ("message".into(), Json::Str(message.clone())),
            ])
            .render(),
        }
    }

    /// Decode one response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        match v.get("type").and_then(Json::as_str) {
            Some("error") => Ok(Response::Error {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            Some("table") => {
                let columns = v
                    .get("columns")
                    .and_then(Json::as_array)
                    .ok_or("table response missing `columns`")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = v
                    .get("rows")
                    .and_then(Json::as_array)
                    .ok_or("table response missing `rows`")?
                    .iter()
                    .map(|r| {
                        r.as_array()
                            .ok_or("non-array row")
                            .map(|cells| cells.iter().map(json_to_value).collect::<Vec<_>>())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Table(TableData { columns, rows }))
            }
            Some("notify") => {
                let uint = |name: &str| -> Result<u64, String> {
                    v.get(name)
                        .and_then(Json::as_i64)
                        .filter(|&i| i >= 0)
                        .map(|i| i as u64)
                        .ok_or(format!("notify frame missing `{name}`"))
                };
                let columns = v
                    .get("columns")
                    .and_then(Json::as_array)
                    .ok_or("notify frame missing `columns`")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = v
                    .get("rows")
                    .and_then(Json::as_array)
                    .ok_or("notify frame missing `rows`")?
                    .iter()
                    .map(|r| {
                        r.as_array()
                            .ok_or("non-array row")
                            .map(|cells| cells.iter().map(json_to_value).collect::<Vec<_>>())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Notify(NotifyFrame {
                    subscription: uint("subscription")?,
                    generation: uint("generation")?,
                    columns,
                    rows,
                }))
            }
            _ => Err("response must have type `table`, `notify`, or `error`".into()),
        }
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Bool(b) => Json::Bool(*b),
        Value::Null => Json::Null,
    }
}

fn json_to_value(v: &Json) -> Value {
    match v {
        Json::Int(i) => Value::Int(*i),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Bool(b) => Value::Bool(*b),
        Json::Null => Value::Null,
        // Nested structures never appear in table cells; render as text
        // rather than dropping data.
        other => Value::Str(other.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Define {
                pattern: "PATTERN t { ?A-?B; }".into(),
            },
            Request::Query {
                sql: "SELECT ID FROM nodes".into(),
                shard: None,
            },
            Request::Query {
                sql: "SELECT ID FROM nodes".into(),
                shard: Some(ShardSpec::new(2, 4).unwrap()),
            },
            Request::Explain {
                sql: "SELECT ID FROM nodes".into(),
            },
            Request::Analyze,
            Request::Update {
                mutations: "INSERT EDGE (4, 6); DELETE EDGE (0, 1)".into(),
            },
            Request::Subscribe {
                sql: "SUBSCRIBE SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes".into(),
                shard: None,
            },
            Request::Subscribe {
                sql: "SUBSCRIBE SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes".into(),
                shard: Some(ShardSpec::new(1, 3).unwrap()),
            },
            Request::Unsubscribe { id: 7 },
            Request::Materialize {
                sql: "MATERIALIZE t RADIUS 1 MATCHES".into(),
                shard: None,
            },
            Request::Materialize {
                sql: "MATERIALIZE t RADIUS 2".into(),
                shard: Some(ShardSpec::new(0, 2).unwrap()),
            },
            Request::DropView {
                sql: "DROP VIEW t RADIUS 1".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn notify_frame_roundtrip() {
        let frame = NotifyFrame {
            subscription: 3,
            generation: 9,
            columns: vec!["COUNTP(t, SUBGRAPH(ID, 1))".into()],
            rows: vec![
                vec![
                    Value::Int(4),
                    Value::Str("COUNTP(t, SUBGRAPH(ID, 1))".into()),
                    Value::Int(0),
                    Value::Int(1),
                ],
                vec![
                    Value::Int(6),
                    Value::Str("COUNTP(t, SUBGRAPH(ID, 1))".into()),
                    Value::Int(2),
                    Value::Int(1),
                ],
            ],
        };
        let resp = Response::Notify(frame.clone());
        let line = resp.encode();
        assert!(line.starts_with(r#"{"ok":true,"type":"notify""#), "{line}");
        assert!(!resp.is_error());
        assert_eq!(Response::decode(&line).unwrap(), resp);
        // Empty-rows frames (generation acknowledgments) roundtrip too.
        let empty = Response::Notify(NotifyFrame {
            subscription: 1,
            generation: 2,
            columns: vec!["c".into()],
            rows: vec![],
        });
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn subscribe_decode_errors() {
        assert!(Request::decode(r#"{"op":"subscribe"}"#).is_err());
        assert!(Request::decode(r#"{"op":"subscribe","sql":"S","shard":"9/4"}"#).is_err());
        assert!(Request::decode(r#"{"op":"unsubscribe"}"#).is_err());
        assert!(Request::decode(r#"{"op":"unsubscribe","id":-1}"#).is_err());
        assert!(Request::decode(r#"{"op":"unsubscribe","id":"x"}"#).is_err());
    }

    #[test]
    fn request_decode_errors() {
        assert!(Request::decode("garbage").is_err());
        assert!(Request::decode("{}").is_err());
        assert!(Request::decode(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::decode(r#"{"op":"query"}"#).is_err());
        assert!(Request::decode(r#"{"op":"define","pattern":7}"#).is_err());
        // Malformed shard specs are protocol errors, not silently whole-range.
        assert!(Request::decode(r#"{"op":"query","sql":"SELECT 1","shard":"4/4"}"#).is_err());
        assert!(Request::decode(r#"{"op":"query","sql":"SELECT 1","shard":7}"#).is_err());
        assert!(Request::decode(r#"{"op":"materialize"}"#).is_err());
        assert!(Request::decode(r#"{"op":"materialize","sql":"M","shard":"9/4"}"#).is_err());
        assert!(Request::decode(r#"{"op":"drop_view"}"#).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut t = Table::new(vec!["ID".into(), "count".into()]);
        t.push_row(vec![Value::Int(0), Value::Int(2)]);
        t.push_row(vec![Value::Int(1), Value::Null]);
        let resp = Response::table(&t);
        let line = resp.encode();
        assert!(line.starts_with(r#"{"ok":true,"type":"table""#), "{line}");
        assert_eq!(Response::decode(&line).unwrap(), resp);

        let err = Response::error("boom");
        assert!(err.is_error());
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut t = Table::new(vec!["x".into()]);
        t.push_row(vec![Value::Float(1.0)]);
        t.push_row(vec![Value::Str("a\"b".into())]);
        let a = Response::table(&t).encode();
        let b = Response::table(&t).encode();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_table_lookup() {
        let td = TableData {
            columns: vec!["stat".into(), "value".into()],
            rows: vec![
                vec![Value::Str("cache_hits".into()), Value::Int(3)],
                vec![Value::Str("cache_misses".into()), Value::Int(1)],
            ],
        };
        assert_eq!(td.stat("cache_hits"), Some(3));
        assert_eq!(td.stat("nope"), None);
    }
}
