//! A small blocking client for the line-delimited JSON protocol.
//!
//! One request in, one response out, in order, over one TCP connection.
//! Used by the `egocensus client` subcommand, the loopback tests, the
//! serve benchmark, and the shard router's per-worker connections.
//!
//! Transient failures (a worker restarting, a connection reset) are
//! absorbed by bounded retry with exponential backoff: connects retry
//! unconditionally, and *idempotent* requests (`ping`, `query`,
//! `explain`, `analyze`, `stats`) are re-sent over a fresh connection when the old
//! one breaks. Non-idempotent requests (`define`, `update`, `shutdown`)
//! are never silently re-sent — the caller must decide whether the
//! side effect happened. Timeouts are not retried either: a slow server
//! is not a dead one, and re-sending over the same stream would desync
//! the request/response pairing.

use crate::protocol::{NotifyFrame, Request, Response, TableData};
use ego_query::ShardSpec;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default bound on the client-side notification buffer. When a burst of
/// pushed frames outruns the application's draining, the *oldest* frames
/// are dropped (and counted) — the newest frame per subscription carries
/// the freshest counts, so dropping from the front loses the least.
const NOTIFY_BUFFER_FRAMES: usize = 256;

/// Bounded retry with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry number `retry` (1-based): backoff × 2^(retry-1).
    fn delay(&self, retry: u32) -> Duration {
        self.backoff * 2u32.saturating_pow(retry.saturating_sub(1))
    }
}

/// True for errors that mean the connection is gone (retryable over a
/// fresh one), as opposed to a protocol error or a timeout.
fn is_connection_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

impl Request {
    /// True when re-sending the request after a connection failure
    /// cannot change the outcome (`ping`/`query`/`explain`/`analyze`/
    /// `stats`). `analyze` does write the stats snapshot, but profiling
    /// is deterministic for a given graph — running it twice writes the
    /// same bytes — so re-sending it is safe.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Query { .. }
                | Request::Explain { .. }
                | Request::Analyze
                | Request::Stats
        )
    }
}

/// A blocking protocol client.
///
/// Subscription notify frames may arrive interleaved with responses on
/// the same connection; every receive path filters them into a bounded
/// buffer ([`Client::drain_notifications`]) so request/response pairing
/// never observes them.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Peer address, for reconnect-on-retry.
    addr: SocketAddr,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    /// Buffered notify frames, oldest first, bounded by `notify_capacity`.
    notifications: VecDeque<NotifyFrame>,
    notify_capacity: usize,
    notify_dropped: u64,
    /// A half-received line, preserved when a bounded read (e.g.
    /// [`Client::poll_notification`]) times out mid-frame.
    partial: String,
}

impl Client {
    /// Connect to a running server (no connect retry; see
    /// [`Client::connect_with_retry`]). Established clients still
    /// retry idempotent requests per the default [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connect with bounded retry + backoff, so a worker that is still
    /// binding its socket (or restarting) does not surface as a hard
    /// error to router callers.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt));
            }
            match TcpStream::connect(addrs.as_slice()) {
                Ok(stream) => {
                    let mut c = Self::from_stream(stream)?;
                    c.retry = policy;
                    return Ok(c);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no address to connect to")))
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            addr,
            retry: RetryPolicy::default(),
            timeout: None,
            notifications: VecDeque::new(),
            notify_capacity: NOTIFY_BUFFER_FRAMES,
            notify_dropped: 0,
            partial: String::new(),
        })
    }

    /// Replace the retry policy (applies to reconnects and idempotent
    /// request retries; `RetryPolicy::none()` restores fail-fast).
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The server address this client talks to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound how long responses may take (census queries on large graphs
    /// can be slow; the default is no timeout). Timeouts are reported as
    /// errors and never auto-retried.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.timeout = timeout;
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Drop the broken connection and dial the same peer again.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(self.timeout)?;
        stream.set_read_timeout(self.timeout)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        // A half-line from the dead connection must not prefix the new
        // stream's first response.
        self.partial.clear();
        Ok(())
    }

    /// Send one request, wait for its response. Connection failures are
    /// retried over a fresh connection (bounded by the retry policy) for
    /// idempotent requests; non-idempotent requests fail fast.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let line = req.encode();
        let retryable = req.is_idempotent();
        let mut attempt = 0u32;
        loop {
            match self.send_line(&line).and_then(|()| self.recv_response()) {
                Ok(resp) => return Ok(resp),
                Err(e) if retryable && is_connection_error(&e) => {
                    attempt += 1;
                    if attempt >= self.retry.attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(self.retry.delay(attempt));
                    // A failed reconnect leaves the old (broken) stream
                    // in place; the next send fails fast and loops.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send a request without waiting for its response. Pair with
    /// [`Client::recv_response`]; responses arrive in request order.
    /// The scatter/gather router uses this to pipeline one shard per
    /// worker before collecting any result.
    pub fn send_request(&mut self, req: &Request) -> std::io::Result<()> {
        self.send_line(&req.encode())
    }

    /// Read the next pending response (one must be outstanding from
    /// [`Client::send_request`]). Notify frames arriving first are
    /// buffered, not returned: the caller always gets the answer to its
    /// request.
    pub fn recv_response(&mut self) -> std::io::Result<Response> {
        loop {
            let raw = self.recv_line()?;
            let resp = Response::decode(&raw).map_err(|e| {
                std::io::Error::new(ErrorKind::InvalidData, format!("bad response: {e}"))
            })?;
            match resp {
                Response::Notify(frame) => self.buffer_notification(frame),
                other => return Ok(other),
            }
        }
    }

    fn buffer_notification(&mut self, frame: NotifyFrame) {
        while self.notifications.len() >= self.notify_capacity.max(1) {
            self.notifications.pop_front();
            self.notify_dropped += 1;
        }
        self.notifications.push_back(frame);
    }

    /// Resize the notification buffer (minimum 1). Shrinking below the
    /// current occupancy drops the oldest frames, like an overflow.
    pub fn set_notification_capacity(&mut self, capacity: usize) {
        self.notify_capacity = capacity.max(1);
        while self.notifications.len() > self.notify_capacity {
            self.notifications.pop_front();
            self.notify_dropped += 1;
        }
    }

    /// Take every buffered notify frame, oldest first.
    pub fn drain_notifications(&mut self) -> Vec<NotifyFrame> {
        self.notifications.drain(..).collect()
    }

    /// Take the oldest buffered notify frame, if any (no socket read).
    pub fn take_notification(&mut self) -> Option<NotifyFrame> {
        self.notifications.pop_front()
    }

    /// Frames dropped so far because the buffer overflowed.
    pub fn notifications_dropped(&self) -> u64 {
        self.notify_dropped
    }

    /// Wait up to `wait` for a notify frame: the oldest buffered frame
    /// if one exists, otherwise a blocking read bounded by `wait`.
    /// `Ok(None)` means the wait elapsed quietly. A non-notify line
    /// arriving here (with no request outstanding) is a protocol
    /// violation and surfaces as `InvalidData`.
    pub fn poll_notification(&mut self, wait: Duration) -> std::io::Result<Option<NotifyFrame>> {
        if let Some(frame) = self.notifications.pop_front() {
            return Ok(Some(frame));
        }
        self.reader.get_ref().set_read_timeout(Some(wait))?;
        let got = self.recv_line();
        self.reader.get_ref().set_read_timeout(self.timeout)?;
        let raw = match got {
            Ok(raw) => raw,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        match Response::decode(&raw) {
            Ok(Response::Notify(frame)) => Ok(Some(frame)),
            Ok(_) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "unsolicited non-notify response",
            )),
            Err(e) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("bad response: {e}"),
            )),
        }
    }

    /// Write one raw line (no response read).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one raw response line, without its trailing newline. A read
    /// that errors mid-line (timeout) keeps the received prefix; the
    /// next call resumes it, so bounded polls never corrupt framing.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let n = self.reader.read_line(&mut self.partial)?;
        if n == 0 {
            self.partial.clear();
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let mut response = std::mem::take(&mut self.partial);
        while response.ends_with(['\n', '\r']) {
            response.pop();
        }
        Ok(response)
    }

    /// Send a raw line (for protocol tests), returning the raw response
    /// line without its trailing newline.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Liveness check.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Ping)
    }

    /// Define a pattern in this connection's session catalog.
    pub fn define(&mut self, pattern: &str) -> std::io::Result<Response> {
        self.request(&Request::Define {
            pattern: pattern.to_string(),
        })
    }

    /// Execute a census SQL statement.
    pub fn query(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Query {
            sql: sql.to_string(),
            shard: None,
        })
    }

    /// Execute a census SQL statement restricted to one focal shard.
    pub fn query_sharded(&mut self, sql: &str, shard: ShardSpec) -> std::io::Result<Response> {
        self.request(&Request::Query {
            sql: sql.to_string(),
            shard: Some(shard),
        })
    }

    /// Describe the plan for a statement.
    pub fn explain(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Explain {
            sql: sql.to_string(),
        })
    }

    /// Profile the server's graph for the cost-based planner; returns
    /// the statistics snapshot as a key/value table.
    pub fn analyze(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Analyze)
    }

    /// Apply an edge-mutation script (`INSERT EDGE (a, b); DELETE EDGE
    /// (a, b); ...`) to the server's shared graph.
    pub fn update(&mut self, mutations: &str) -> std::io::Result<Response> {
        self.request(&Request::Update {
            mutations: mutations.to_string(),
        })
    }

    /// Register a standing census statement (`SUBSCRIBE SELECT ...`);
    /// the ack table carries the subscription id under the
    /// `subscription` key. Changed rows arrive as notify frames — see
    /// [`Client::drain_notifications`] / [`Client::poll_notification`].
    pub fn subscribe(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Subscribe {
            sql: sql.to_string(),
            shard: None,
        })
    }

    /// [`Client::subscribe`] restricted to one focal shard.
    pub fn subscribe_sharded(&mut self, sql: &str, shard: ShardSpec) -> std::io::Result<Response> {
        self.request(&Request::Subscribe {
            sql: sql.to_string(),
            shard: Some(shard),
        })
    }

    /// Remove a subscription created on this connection.
    pub fn unsubscribe(&mut self, id: u64) -> std::io::Result<Response> {
        self.request(&Request::Unsubscribe { id })
    }

    /// Materialize a pattern census as a pinned view (`MATERIALIZE
    /// <pattern> RADIUS k [MATCHES]`): later statements over the same
    /// (pattern, radius) are served as pure lookups.
    pub fn materialize(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Materialize {
            sql: sql.to_string(),
            shard: None,
        })
    }

    /// [`Client::materialize`] restricted to one focal shard (the view
    /// then covers exactly that shard's node range).
    pub fn materialize_sharded(
        &mut self,
        sql: &str,
        shard: ShardSpec,
    ) -> std::io::Result<Response> {
        self.request(&Request::Materialize {
            sql: sql.to_string(),
            shard: Some(shard),
        })
    }

    /// Drop a materialized view (`DROP VIEW <pattern> RADIUS k`).
    pub fn drop_view(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::DropView {
            sql: sql.to_string(),
        })
    }

    /// Fetch the server/cache counter table.
    pub fn stats(&mut self) -> std::io::Result<TableData> {
        match self.request(&Request::Stats)? {
            Response::Table(t) => Ok(t),
            Response::Error { message } => Err(std::io::Error::other(message)),
            // `request` buffers notify frames and never returns one.
            Response::Notify(_) => unreachable!("request() filters notify frames"),
        }
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn idempotency_classification() {
        for (req, idempotent) in [
            (Request::Ping, true),
            (
                Request::Query {
                    sql: "SELECT 1".into(),
                    shard: None,
                },
                true,
            ),
            (
                Request::Explain {
                    sql: "SELECT 1".into(),
                },
                true,
            ),
            (Request::Analyze, true),
            (Request::Stats, true),
            (
                Request::Subscribe {
                    sql: "SUBSCRIBE SELECT 1".into(),
                    shard: None,
                },
                false,
            ),
            (Request::Unsubscribe { id: 1 }, false),
            (
                // Re-sending could double-evict under budget pressure.
                Request::Materialize {
                    sql: "MATERIALIZE t RADIUS 1".into(),
                    shard: None,
                },
                false,
            ),
            (
                // The second send errors (`no materialized view`).
                Request::DropView {
                    sql: "DROP VIEW t RADIUS 1".into(),
                },
                false,
            ),
            (
                Request::Define {
                    pattern: "PATTERN p { ?A; }".into(),
                },
                false,
            ),
            (
                Request::Update {
                    mutations: "INSERT EDGE (0, 1)".into(),
                },
                false,
            ),
            (Request::Shutdown, false),
        ] {
            assert_eq!(req.is_idempotent(), idempotent, "{req:?}");
        }
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let p = RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(10),
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
    }

    /// Answer one connection: one response per request line, `n` lines,
    /// then close (abruptly, mid-session, from the client's view).
    fn serve_lines(listener: &TcpListener, n: usize) {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..n {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read") == 0 {
                return;
            }
            let reply = Response::Table(TableData {
                columns: vec!["reply".into()],
                rows: vec![vec![ego_query::Value::Str("pong".into())]],
            })
            .encode();
            stream.write_all(reply.as_bytes()).expect("write");
            stream.write_all(b"\n").expect("write");
        }
    }

    #[test]
    fn idempotent_request_survives_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            serve_lines(&listener, 1); // answer one ping, then hang up
            serve_lines(&listener, 1); // the re-sent ping lands here
        });

        let mut client = Client::connect(addr).expect("connect");
        client.set_retry(RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
        });
        assert!(!client.ping().expect("first ping").is_error());
        // The server hung up; this ping hits the dead connection, and
        // the retry path must transparently reconnect and re-send.
        assert!(!client.ping().expect("retried ping").is_error());
        server.join().expect("server thread");
    }

    #[test]
    fn non_idempotent_request_fails_fast_on_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || serve_lines(&listener, 1));

        let mut client = Client::connect(addr).expect("connect");
        assert!(!client.ping().expect("first ping").is_error());
        server.join().expect("server thread");
        // An update after the hang-up must surface the error — silently
        // re-sending a mutation could apply it twice.
        let err = client
            .update("INSERT EDGE (0, 1)")
            .expect_err("update must not be retried");
        assert!(is_connection_error(&err), "unexpected error: {err}");
    }

    /// Answer one connection: for each request line, write the given
    /// notify frames (encoded) and then a pong table, `n` times.
    fn serve_with_frames(
        listener: &TcpListener,
        n: usize,
        frames_per_reply: usize,
    ) -> std::net::TcpStream {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for round in 0..n {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read") == 0 {
                break;
            }
            for f in 0..frames_per_reply {
                let frame = Response::Notify(NotifyFrame {
                    subscription: 1,
                    generation: (round * frames_per_reply + f) as u64 + 1,
                    columns: vec!["c".into()],
                    rows: vec![vec![
                        ego_query::Value::Int(0),
                        ego_query::Value::Str("c".into()),
                        ego_query::Value::Int(f as i64),
                        ego_query::Value::Int(f as i64 + 1),
                    ]],
                })
                .encode();
                stream.write_all(frame.as_bytes()).expect("write frame");
                stream.write_all(b"\n").expect("write frame");
            }
            let reply = Response::Table(TableData {
                columns: vec!["reply".into()],
                rows: vec![vec![ego_query::Value::Str("pong".into())]],
            })
            .encode();
            stream.write_all(reply.as_bytes()).expect("write");
            stream.write_all(b"\n").expect("write");
        }
        stream
    }

    #[test]
    fn interleaved_notify_frames_are_buffered_not_returned() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let _stream = serve_with_frames(&listener, 2, 2);
        });

        let mut client = Client::connect(addr).expect("connect");
        // Two frames precede the response; request() must return the
        // table, with the frames waiting in the buffer in push order.
        let resp = client.ping().expect("ping");
        assert!(matches!(resp, Response::Table(_)), "{resp:?}");
        let frames = client.drain_notifications();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].generation, 1);
        assert_eq!(frames[1].generation, 2);
        assert_eq!(frames[1].rows[0][3], ego_query::Value::Int(2));
        assert_eq!(client.notifications_dropped(), 0);
        // Draining empties the buffer; the next exchange refills it.
        assert!(client.drain_notifications().is_empty());
        let _ = client.ping().expect("second ping");
        assert_eq!(client.drain_notifications().len(), 2);
        server.join().expect("server thread");
    }

    #[test]
    fn notification_buffer_is_bounded_and_drops_oldest() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let _stream = serve_with_frames(&listener, 1, 5);
        });

        let mut client = Client::connect(addr).expect("connect");
        client.set_notification_capacity(3);
        let _ = client.ping().expect("ping");
        assert_eq!(client.notifications_dropped(), 2, "oldest two dropped");
        let frames = client.drain_notifications();
        assert_eq!(frames.len(), 3);
        // The survivors are the newest three, still in order.
        assert_eq!(
            frames.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        server.join().expect("server thread");
    }

    #[test]
    fn poll_notification_times_out_quietly_and_picks_up_buffered_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let stream = serve_with_frames(&listener, 1, 1);
            // Keep the connection open a moment so the quiet poll sees
            // silence rather than EOF.
            std::thread::sleep(Duration::from_millis(60));
            drop(stream);
        });

        let mut client = Client::connect(addr).expect("connect");
        let _ = client.ping().expect("ping");
        let first = client
            .poll_notification(Duration::from_millis(10))
            .expect("poll buffered");
        assert!(first.is_some(), "buffered frame returned without a read");
        let quiet = client
            .poll_notification(Duration::from_millis(20))
            .expect("poll quiet");
        assert!(quiet.is_none(), "quiet wait yields None, not an error");
        server.join().expect("server thread");
    }

    #[test]
    fn connect_with_retry_reaches_a_late_binding_server() {
        // Reserve an address, release it, and rebind it only after a
        // delay — the first connect attempts fail, a later one lands.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let listener = TcpListener::bind(addr).expect("rebind");
            serve_lines(&listener, 1);
        });
        let mut client = Client::connect_with_retry(
            addr,
            RetryPolicy {
                attempts: 10,
                backoff: Duration::from_millis(10),
            },
        )
        .expect("connect with retry");
        assert!(!client.ping().expect("ping").is_error());
        server.join().expect("server thread");
    }
}
