//! A small blocking client for the line-delimited JSON protocol.
//!
//! One request in, one response out, in order, over one TCP connection.
//! Used by the `egocensus client` subcommand, the loopback tests, and
//! the serve benchmark.

use crate::protocol::{Request, Response, TableData};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Bound how long responses may take (census queries on large graphs
    /// can be slow; the default is no timeout).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request, wait for its response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let line = self.send_raw(&req.encode())?;
        Response::decode(&line)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Send a raw line (for protocol tests), returning the raw response
    /// line without its trailing newline.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with(['\n', '\r']) {
            response.pop();
        }
        Ok(response)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Ping)
    }

    /// Define a pattern in this connection's session catalog.
    pub fn define(&mut self, pattern: &str) -> std::io::Result<Response> {
        self.request(&Request::Define {
            pattern: pattern.to_string(),
        })
    }

    /// Execute a census SQL statement.
    pub fn query(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Query {
            sql: sql.to_string(),
        })
    }

    /// Describe the plan for a statement.
    pub fn explain(&mut self, sql: &str) -> std::io::Result<Response> {
        self.request(&Request::Explain {
            sql: sql.to_string(),
        })
    }

    /// Apply an edge-mutation script (`INSERT EDGE (a, b); DELETE EDGE
    /// (a, b); ...`) to the server's shared graph.
    pub fn update(&mut self, mutations: &str) -> std::io::Result<Response> {
        self.request(&Request::Update {
            mutations: mutations.to_string(),
        })
    }

    /// Fetch the server/cache counter table.
    pub fn stats(&mut self) -> std::io::Result<TableData> {
        match self.request(&Request::Stats)? {
            Response::Table(t) => Ok(t),
            Response::Error { message } => Err(std::io::Error::other(message)),
        }
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}
