//! Per-connection sessions.
//!
//! Each accepted connection gets a [`Session`]: its own
//! [`ego_query::QueryEngine`] over the server's shared `Arc<Graph>`,
//! with a pattern catalog *layered* over the shared base catalog —
//! `define` requests are visible only to that session and can never
//! shadow a shared built-in (that's a `pattern already defined` error).
//! All sessions share one result cache and one set of counters.

use crate::cache::{CacheStats, QueryCache};
use crate::protocol::{NotifyFrame, Request, Response};
use crate::server::ServerConfig;
use ego_continuous::{
    CensusSpec, ContinuousEngine, CountVector, ExecConfig, FocalNodes, MatchList, Notification,
    PtConfig, SubscribeAck,
};
use ego_dynamic::{update_batch_on, DeltaGraph, DirtyIndex};
use ego_graph::{Graph, NodeId};
use ego_query::{
    canonical_query_key, parse_mutations, Algorithm, Catalog, CensusCache, MutationKind,
    PlannerCounters, QueryEngine, ShardSpec, StatsSlot, SubscriptionSpec, Table, Value,
    ViewRegistry,
};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Entries held per side (match lists / count vectors) of the shared
/// [`CensusCache`]. Entry-count budgeted, unlike the byte-budgeted
/// result cache: values are `Arc`-shared intermediates whose byte size
/// the executor shouldn't have to estimate. Disabled together with the
/// result cache (`--cache-mb 0`).
const CENSUS_CACHE_ENTRIES: usize = 256;

/// Bound on a connection's outbound notify queue. A subscriber that
/// stops reading loses the *oldest* frames first (counted in
/// `notifications_dropped`); the newest frame per subscription carries
/// the freshest counts.
const NOTIFY_QUEUE_FRAMES: usize = 1024;

/// Protocol op names, in the order of [`ServerStats::latency`]. The
/// request-duration breakdown is keyed by these.
pub const OP_NAMES: [&str; 12] = [
    "analyze",
    "define",
    "drop_view",
    "explain",
    "materialize",
    "ping",
    "query",
    "shutdown",
    "stats",
    "subscribe",
    "unsubscribe",
    "update",
];

fn op_index(req: &Request) -> usize {
    match req {
        Request::Analyze => 0,
        Request::Define { .. } => 1,
        Request::DropView { .. } => 2,
        Request::Explain { .. } => 3,
        Request::Materialize { .. } => 4,
        Request::Ping => 5,
        Request::Query { .. } => 6,
        Request::Shutdown => 7,
        Request::Stats => 8,
        Request::Subscribe { .. } => 9,
        Request::Unsubscribe { .. } => 10,
        Request::Update { .. } => 11,
    }
}

/// Request-duration accounting for one protocol op, so router-vs-direct
/// overhead (and per-op cost in general) is measurable from `stats`.
#[derive(Debug)]
pub struct OpLatency {
    /// Requests measured.
    pub count: AtomicU64,
    /// Summed duration in microseconds (mean = total / count).
    pub total_us: AtomicU64,
    /// Fastest request in microseconds (`u64::MAX` until the first
    /// request is recorded).
    pub min_us: AtomicU64,
    /// Slowest request in microseconds.
    pub max_us: AtomicU64,
}

impl Default for OpLatency {
    fn default() -> Self {
        OpLatency {
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

impl OpLatency {
    fn record(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }
}

/// Whole-server counters (beyond the cache's own).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Queries that actually ran on the engine (cache misses + uncached
    /// ops). A cache hit does not increment this — nor any traversal
    /// underneath it.
    pub queries_executed: AtomicU64,
    /// Session-local patterns defined.
    pub patterns_defined: AtomicU64,
    /// `update` requests that changed the graph (no-op scripts excluded).
    pub graph_updates: AtomicU64,
    /// Net edges inserted across all graph updates.
    pub edges_inserted: AtomicU64,
    /// Net edges deleted across all graph updates.
    pub edges_deleted: AtomicU64,
    /// Notify frames dropped because a subscriber's outbound queue was
    /// full (drop-oldest; see [`NOTIFY_QUEUE_FRAMES`]).
    pub notifications_dropped: AtomicU64,
    /// Incremental evaluations that errored. Every live subscription is
    /// dropped when this happens — silence a client can observe and
    /// respond to by re-subscribing — rather than pushing deltas off a
    /// stale baseline.
    pub continuous_errors: AtomicU64,
    /// View refreshes that errored. The whole view tier is cleared when
    /// this happens — later probes miss and fall back to direct census —
    /// rather than serving counts off a stale baseline.
    pub view_refresh_errors: AtomicU64,
    /// Per-op request durations, indexed like [`OP_NAMES`].
    pub latency: [OpLatency; 12],
}

impl ServerStats {
    /// The duration accounting for a named op (see [`OP_NAMES`]).
    pub fn op_latency(&self, op: &str) -> Option<&OpLatency> {
        OP_NAMES
            .iter()
            .position(|&n| n == op)
            .map(|i| &self.latency[i])
    }
}

/// A connection's outbound notify-frame queue.
///
/// The mutating connection's update handler produces frames for *every*
/// subscriber, but can only write to its own socket — so frames are
/// parked here, per connection, as pre-encoded lines. The owning
/// connection's serve loop drains them: before each of its own
/// responses (frames for generation `G` always precede the response
/// that acknowledged `G` on the same connection), and on idle poll
/// ticks for connections that merely listen.
#[derive(Debug, Default)]
pub struct NotifyQueue {
    frames: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
}

impl NotifyQueue {
    /// Park one encoded frame, dropping the oldest beyond the bound.
    /// Returns how many frames were dropped to make room.
    fn push(&self, frame: String) -> u64 {
        let mut frames = self.frames.lock().unwrap();
        let mut dropped = 0;
        while frames.len() >= NOTIFY_QUEUE_FRAMES {
            frames.pop_front();
            dropped += 1;
        }
        frames.push_back(frame);
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }

    /// Take every parked frame, oldest first.
    pub fn drain(&self) -> Vec<String> {
        self.frames.lock().unwrap().drain(..).collect()
    }
}

/// Outcome of one applied mutation script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateSummary {
    /// Net edges inserted by this script.
    pub inserted: u64,
    /// Net edges deleted by this script.
    pub deleted: u64,
    /// Edge count of the (possibly unchanged) current graph.
    pub num_edges: usize,
    /// Graph generation after the script (unchanged for no-ops).
    pub generation: u64,
    /// Fingerprint of the current graph.
    pub fingerprint: u64,
}

/// State shared by every session: the current graph, the base catalog,
/// the result cache, counters, and the shutdown flag.
#[derive(Clone)]
pub struct Shared {
    /// The current graph. Mutations swap in a freshly compacted CSR;
    /// sessions re-read it when the generation counter moves.
    graph: Arc<RwLock<Arc<Graph>>>,
    /// Bumped on every applied (non-no-op) mutation script. Sessions
    /// compare it against their own copy to detect a swapped graph
    /// without taking the `RwLock` on every request.
    generation: Arc<AtomicU64>,
    /// Serializes mutation scripts: each script reads the current graph,
    /// builds its delta, and swaps atomically with respect to others.
    update_lock: Arc<Mutex<()>>,
    /// Patterns every session sees (e.g. the paper's built-ins).
    pub base_catalog: Arc<Catalog>,
    /// The pattern-keyed result cache.
    pub cache: Arc<QueryCache>,
    /// The census intermediate cache (match lists + count vectors),
    /// shared by every session's engine: different statements over the
    /// same patterns share traversal work even when the whole-result
    /// cache misses.
    pub census: Arc<CensusCache>,
    /// Server counters.
    pub stats: Arc<ServerStats>,
    /// Planner counters, shared by every session's engine and surfaced
    /// as `planner_*` rows in `stats`.
    pub planner: Arc<PlannerCounters>,
    /// The graph-statistics slot every session's planner reads:
    /// `analyze` on any connection feeds all of them.
    pub graph_stats: StatsSlot,
    /// Where `analyze` persists its snapshot (`None` = memory only).
    pub stats_path: Option<PathBuf>,
    /// Set to stop the accept loop and drain workers.
    pub shutdown: Arc<AtomicBool>,
    /// Worker threads per census execution (`0` = all hardware threads).
    pub exec_threads: usize,
    /// `RND()` seed for every session (part of the cache key).
    pub seed: u64,
    /// Default focal shard (`--shard-of`): applied to queries that do
    /// not carry their own shard. `None` = whole range.
    pub shard: Option<ShardSpec>,
    /// Census algorithm every session executes with.
    pub algorithm: Algorithm,
    /// The materialized-view tier: pinned per-focal count vectors (and
    /// optional global match lists) served as pure lookups, refreshed in
    /// place through every mutation instead of invalidated.
    pub views: Arc<ViewRegistry>,
    /// Where view maintenance persists the `.views` sidecar (`None` =
    /// memory only).
    pub views_path: Option<PathBuf>,
    /// The continuous-census registry: standing queries whose counts
    /// and match lists are maintained through every mutation.
    pub continuous: Arc<ContinuousEngine>,
    /// Subscription id -> the owning connection's outbound frame queue.
    routes: Arc<Mutex<HashMap<u64, Arc<NotifyQueue>>>>,
}

impl Shared {
    /// Build shared state around the startup graph.
    pub fn new(graph: Arc<Graph>, base_catalog: Arc<Catalog>, config: &ServerConfig) -> Shared {
        // Adopt a persisted statistics sidecar so the planner starts on
        // measured numbers; a missing or malformed file just means the
        // heuristic basis until the first `analyze`.
        let graph_stats = StatsSlot::default();
        if let Some(path) = &config.stats_path {
            if let Ok(Some(stats)) = ego_query::GraphStats::load(path) {
                *graph_stats.write().unwrap() = Some(Arc::new(stats));
            }
        }
        // Re-adopt persisted views so restarts are warm; a missing or
        // stale-fingerprint sidecar just means an empty tier until the
        // first `materialize`.
        let views = Arc::new(ViewRegistry::new(config.view_budget_bytes));
        if let Some(path) = &config.views_path {
            let _ = views.adopt_sidecar(path, graph.fingerprint(), graph.num_nodes());
        }
        Shared {
            graph: Arc::new(RwLock::new(graph)),
            generation: Arc::new(AtomicU64::new(0)),
            update_lock: Arc::new(Mutex::new(())),
            base_catalog,
            cache: Arc::new(QueryCache::new(config.cache_bytes)),
            census: Arc::new(CensusCache::new(if config.cache_bytes == 0 {
                0
            } else {
                CENSUS_CACHE_ENTRIES
            })),
            stats: Arc::new(ServerStats::default()),
            planner: Arc::new(PlannerCounters::default()),
            graph_stats,
            stats_path: config.stats_path.clone(),
            shutdown: Arc::new(AtomicBool::new(false)),
            exec_threads: config.exec_threads,
            seed: config.seed,
            shard: config.shard.filter(|s| !s.is_whole()),
            algorithm: config.algorithm,
            views,
            views_path: config.views_path.clone(),
            continuous: Arc::new(ContinuousEngine::new()),
            routes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The mutation lock, for ops that must serialize with `update`
    /// without going through [`Shared::apply_mutations`]: `materialize`
    /// computes against a stable graph and installs + persists its view
    /// before any later `update` refreshes the tier, so a view is never
    /// stamped with a fingerprint the refresh path has already moved
    /// past.
    fn update_lock(&self) -> Arc<Mutex<()>> {
        self.update_lock.clone()
    }

    /// The current graph (cheap: clones the inner `Arc`).
    pub fn current_graph(&self) -> Arc<Graph> {
        self.graph.read().unwrap().clone()
    }

    /// The current graph generation (0 at startup, +1 per applied
    /// mutation script).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Fingerprint of the current graph.
    pub fn fingerprint(&self) -> u64 {
        self.graph.read().unwrap().fingerprint()
    }

    /// Parse and apply a mutation script (`INSERT EDGE (a, b); DELETE
    /// EDGE (a, b); ...`) against the current graph, swapping in the
    /// compacted result and invalidating both caches. Scripts whose net
    /// delta is empty (edge already present, insert/delete pairs that
    /// cancel) leave the graph, the generation, and the caches alone.
    ///
    /// Errors (parse failures, out-of-range nodes, self loops) reject
    /// the whole script: mutations are applied atomically or not at all.
    pub fn apply_mutations(&self, script: &str) -> Result<UpdateSummary, String> {
        let stmts = parse_mutations(script).map_err(|e| e.to_string())?;
        let _guard = self.update_lock.lock().unwrap();
        let base = self.current_graph();
        let mut delta = DeltaGraph::new(base);
        for stmt in &stmts {
            let (a, b) = (NodeId(stmt.a), NodeId(stmt.b));
            match stmt.kind {
                MutationKind::InsertEdge => delta.insert_edge(a, b),
                MutationKind::DeleteEdge => delta.delete_edge(a, b),
            }
            .map_err(|e| e.to_string())?;
        }
        if delta.is_clean() {
            let g = delta.base();
            return Ok(UpdateSummary {
                inserted: 0,
                deleted: 0,
                num_edges: g.num_edges(),
                generation: self.generation(),
                fingerprint: g.fingerprint(),
            });
        }
        let inserted = delta.added().count() as u64;
        let deleted = delta.removed().count() as u64;
        let new_graph = Arc::new(delta.compact());
        let num_edges = new_graph.num_edges();
        let fingerprint = new_graph.fingerprint();
        *self.graph.write().unwrap() = new_graph.clone();
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        // Whole-result entries key on the statement + fingerprint; they
        // go stale wholesale.
        self.cache.invalidate();
        // The census cache is invalidated *dirty-set aware*: a cached
        // count vector whose every focal node sits outside the delta's
        // dirty set at the entry's radius is provably untouched by this
        // mutation, so it is rekeyed to the new fingerprint and kept.
        // Global match lists depend on the whole graph and always drop.
        let dirty = DirtyIndex::build(&delta, self.census.max_count_radius());
        self.census
            .retain_counts(fingerprint, |meta| match meta.radius {
                Some(r) => meta.focal.iter().all(|&n| !dirty.is_dirty(n, r)),
                None => false,
            });
        self.census.invalidate_matches();
        // Materialized views are *refreshed*, never invalidated: one
        // incremental batch over every pinned view (dirty-focal
        // re-census plus |delta|-scaled match-list maintenance),
        // installed in place under this same update lock, keeps
        // view-served rows bit-identical to a full recompute without
        // re-materializing. A refresh failure clears the tier —
        // probes then miss and fall back to direct census — rather
        // than serving counts off a stale baseline.
        let pinned = self.views.snapshot();
        if !pinned.is_empty() {
            let specs: Vec<CensusSpec<'_>> = pinned
                .iter()
                .map(|e| {
                    let focal: Vec<NodeId> = e.counts.iter_focal().map(|(n, _)| n).collect();
                    let mut s =
                        CensusSpec::single(&e.pattern, e.k).with_focal(FocalNodes::Set(focal));
                    if let Some(sp) = &e.subpattern {
                        s = s.with_subpattern(sp);
                    }
                    s
                })
                .collect();
            let previous: Vec<CountVector> = pinned.iter().map(|e| (*e.counts).clone()).collect();
            let previous_matches: Vec<Option<Arc<MatchList>>> =
                pinned.iter().map(|e| e.matches.clone()).collect();
            match update_batch_on(
                &delta,
                &new_graph,
                &specs,
                &previous,
                &previous_matches,
                self.algorithm,
                &PtConfig::default(),
                &self.exec_config(),
            ) {
                Ok(outcome) => {
                    for ((entry, counts), matches) in
                        pinned.iter().zip(outcome.counts).zip(outcome.matches)
                    {
                        // A view materialized without MATCHES stays
                        // without: presence is part of its definition.
                        let matches = if entry.matches.is_some() {
                            matches
                        } else {
                            None
                        };
                        self.views.install_refreshed(
                            &entry.dsl,
                            entry.k,
                            entry.subpattern.as_deref(),
                            Arc::new(counts),
                            matches,
                            fingerprint,
                        );
                    }
                    if let Some(path) = &self.views_path {
                        let _ = self.views.save(path, fingerprint);
                    }
                }
                Err(_) => {
                    self.stats
                        .view_refresh_errors
                        .fetch_add(1, Ordering::Relaxed);
                    self.views.clear();
                }
            }
        }
        // Push changed rows to every standing query while the update
        // lock is still held, so subscribers see generations in order.
        if !self.continuous.is_empty() {
            match self.continuous.apply_update(
                &delta,
                &new_graph,
                generation,
                self.algorithm,
                &PtConfig::default(),
                &self.exec_config(),
            ) {
                Ok(notifications) => self.route_notifications(&notifications),
                Err(_) => {
                    // The registry's baselines are now unreliable; drop
                    // every subscription rather than diff against them.
                    self.stats.continuous_errors.fetch_add(1, Ordering::Relaxed);
                    let mut routes = self.routes.lock().unwrap();
                    for (id, _) in self.continuous.subscriptions() {
                        self.continuous.unsubscribe(id);
                        routes.remove(&id);
                    }
                }
            }
        }
        self.stats.graph_updates.fetch_add(1, Ordering::Relaxed);
        self.stats
            .edges_inserted
            .fetch_add(inserted, Ordering::Relaxed);
        self.stats
            .edges_deleted
            .fetch_add(deleted, Ordering::Relaxed);
        Ok(UpdateSummary {
            inserted,
            deleted,
            num_edges,
            generation,
            fingerprint,
        })
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The execution configuration sessions evaluate with.
    fn exec_config(&self) -> ExecConfig {
        ExecConfig::with_threads(self.exec_threads)
    }

    /// Register a compiled standing query and route its frames to
    /// `queue`. Takes the update lock so the initial evaluation and the
    /// generation it is stamped with cannot straddle a mutation.
    ///
    /// `shard` is the effective focal shard the statement was compiled
    /// under: when a materialized view with the same coverage holds a
    /// maintained match list for an aggregate's (pattern, radius), that
    /// list seeds the subscription's baseline and the initial evaluation
    /// skips global enumeration for it — the view is refreshed on this
    /// same lock, so it is current by construction.
    pub fn subscribe(
        &self,
        spec: SubscriptionSpec,
        shard: Option<ShardSpec>,
        queue: &Arc<NotifyQueue>,
    ) -> Result<SubscribeAck, String> {
        let _guard = self.update_lock.lock().unwrap();
        let graph = self.current_graph();
        let fingerprint = graph.fingerprint();
        let provided: Vec<Option<Arc<MatchList>>> = spec
            .aggs
            .iter()
            .map(|a| {
                self.views
                    .peek(
                        &a.pattern_dsl,
                        a.k,
                        a.subpattern.as_deref(),
                        fingerprint,
                        shard.filter(|s| !s.is_whole()),
                    )
                    .and_then(|e| e.matches.clone())
            })
            .collect();
        let ack = self
            .continuous
            .subscribe_seeded(
                &graph,
                spec,
                self.generation(),
                self.algorithm,
                &PtConfig::default(),
                &self.exec_config(),
                &provided,
            )
            .map_err(|e| e.to_string())?;
        self.routes.lock().unwrap().insert(ack.id, queue.clone());
        Ok(ack)
    }

    /// Drop a subscription and its route. Returns `false` for unknown
    /// ids.
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.routes.lock().unwrap().remove(&id);
        self.continuous.unsubscribe(id)
    }

    /// Encode each notification as a wire frame and park it on the
    /// owning connection's queue (dropping unrouted ones — their session
    /// closed between evaluation and routing).
    fn route_notifications(&self, notifications: &[Notification]) {
        let routes = self.routes.lock().unwrap();
        for n in notifications {
            let Some(queue) = routes.get(&n.subscription) else {
                continue;
            };
            let frame = Response::Notify(NotifyFrame {
                subscription: n.subscription,
                generation: n.generation,
                columns: n.columns.as_ref().clone(),
                rows: n.rows.iter().map(|r| r.to_values(&n.columns)).collect(),
            })
            .encode();
            let dropped = queue.push(frame);
            if dropped > 0 {
                self.stats
                    .notifications_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
            }
        }
    }
}

/// One connection's execution context.
pub struct Session {
    shared: Shared,
    engine: QueryEngine<'static>,
    /// Generation of the graph this session's engine was built over.
    generation: u64,
    /// This connection's outbound notify queue (shared with the routing
    /// table while subscriptions are live).
    queue: Arc<NotifyQueue>,
    /// Subscription ids owned by this connection; dropped with it.
    subs: Vec<u64>,
}

impl Session {
    /// A fresh session over the shared graph and base catalog.
    pub fn new(shared: &Shared) -> Session {
        let generation = shared.generation();
        let mut engine = QueryEngine::shared(shared.current_graph());
        engine.set_catalog(Catalog::layered(shared.base_catalog.clone()));
        engine.set_threads(shared.exec_threads);
        engine.set_seed(shared.seed);
        engine.set_algorithm(shared.algorithm);
        engine.set_focal_shard(shared.shard);
        engine.set_census_cache(shared.census.clone());
        engine.set_planner_counters(shared.planner.clone());
        engine.set_stats_slot(shared.graph_stats.clone());
        engine.set_stats_path(shared.stats_path.clone());
        engine.set_views(shared.views.clone());
        engine.set_views_path(shared.views_path.clone());
        Session {
            shared: shared.clone(),
            engine,
            generation,
            queue: Arc::new(NotifyQueue::default()),
            subs: Vec::new(),
        }
    }

    /// Take the notify frames parked for this connection, oldest first,
    /// as encoded lines. The serve loop writes them before its next
    /// response and on idle poll ticks.
    pub fn drain_notifications(&self) -> Vec<String> {
        self.queue.drain()
    }

    /// Does this connection own any live subscriptions? (Lets the serve
    /// loop skip queue polls for plain request/response connections.)
    pub fn has_subscriptions(&self) -> bool {
        !self.subs.is_empty()
    }

    /// Rebuild the engine over the current graph if another session
    /// applied a mutation since this one last looked. Cheap when nothing
    /// changed (one atomic load). The session's defined patterns carry
    /// over; the engine does *not* invalidate the shared census cache
    /// here — entries repopulated since the update are still valid.
    fn refresh(&mut self) {
        let generation = self.shared.generation();
        if generation == self.generation {
            return;
        }
        let catalog = std::mem::replace(
            self.engine.catalog_mut(),
            Catalog::layered(self.shared.base_catalog.clone()),
        );
        let mut engine = QueryEngine::shared(self.shared.current_graph());
        engine.set_catalog(catalog);
        engine.set_threads(self.shared.exec_threads);
        engine.set_seed(self.shared.seed);
        engine.set_algorithm(self.shared.algorithm);
        engine.set_focal_shard(self.shared.shard);
        engine.set_census_cache(self.shared.census.clone());
        engine.set_planner_counters(self.shared.planner.clone());
        engine.set_stats_slot(self.shared.graph_stats.clone());
        engine.set_stats_path(self.shared.stats_path.clone());
        engine.set_views(self.shared.views.clone());
        engine.set_views_path(self.shared.views_path.clone());
        self.engine = engine;
        self.generation = generation;
    }

    /// Handle one request line, returning one encoded response line
    /// (no trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        match Request::decode(line) {
            Ok(req) => {
                let start = Instant::now();
                let response = self.handle(&req);
                let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                self.shared.stats.latency[op_index(&req)].record(us);
                response
            }
            Err(message) => Response::error(message).encode(),
        }
    }

    /// Handle one decoded request.
    pub fn handle(&mut self, req: &Request) -> String {
        self.refresh();
        match req {
            Request::Ping => reply_table("pong"),
            Request::Define { pattern } => self.handle_define(pattern),
            Request::Query { sql, shard } => self.handle_query(sql, *shard),
            Request::Explain { sql } => self.encode_execution(|e| e.explain(sql)),
            Request::Analyze => self.encode_execution(|e| e.analyze()),
            Request::Update { mutations } => self.handle_update(mutations),
            Request::Subscribe { sql, shard } => self.handle_subscribe(sql, *shard),
            Request::Unsubscribe { id } => self.handle_unsubscribe(*id),
            Request::Materialize { sql, shard } => self.handle_materialize(sql, *shard),
            Request::DropView { sql } => self.handle_drop_view(sql),
            Request::Stats => self.handle_stats(),
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                reply_table("shutting down")
            }
        }
    }

    fn handle_define(&mut self, pattern: &str) -> String {
        match self.engine.catalog_mut().define(pattern) {
            Ok(p) => {
                self.shared
                    .stats
                    .patterns_defined
                    .fetch_add(1, Ordering::Relaxed);
                let mut t = Table::new(vec!["defined".into()]);
                t.push_row(vec![Value::Str(p.name().to_string())]);
                Response::table(&t).encode()
            }
            Err(e) => Response::error(e.to_string()).encode(),
        }
    }

    fn handle_query(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        // A per-request shard overrides the server's `--shard-of`
        // default; `0/1` normalizes to the whole range, so a router
        // proxying an unsharded statement shares cache entries with
        // direct clients.
        let effective = shard.filter(|s| !s.is_whole()).or(self.shared.shard);
        self.engine.set_focal_shard(effective);
        // `EXPLAIN SELECT ...` through the query op describes a plan; it
        // is cheap and algorithm-dependent, so it bypasses the cache.
        let trimmed = sql.trim_start();
        if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
            return self.encode_execution(|e| e.execute(sql));
        }
        let shard_suffix = match self.engine.focal_shard() {
            Some(s) => format!("|shard={s}"),
            None => String::new(),
        };
        let key = match canonical_query_key(sql, self.engine.catalog()) {
            Ok(canonical) => format!(
                "{canonical}|fp={:016x}|seed={}{shard_suffix}",
                self.engine.graph().fingerprint(),
                self.shared.seed
            ),
            // The statement won't execute either; report that error.
            Err(e) => return Response::error(e.to_string()).encode(),
        };
        if let Some(cached) = self.shared.cache.get(&key) {
            return cached;
        }
        let encoded = self.encode_execution(|e| e.execute(sql));
        if !encoded.starts_with(r#"{"ok":false"#) {
            self.shared.cache.insert(key, encoded.clone());
        }
        encoded
    }

    fn handle_update(&mut self, mutations: &str) -> String {
        match self.shared.apply_mutations(mutations) {
            Ok(s) => {
                // Serve the new graph immediately on this connection.
                self.refresh();
                let mut t = Table::new(vec!["stat".into(), "value".into()]);
                t.push_row(vec![
                    Value::Str("edges_inserted".into()),
                    Value::Int(s.inserted as i64),
                ]);
                t.push_row(vec![
                    Value::Str("edges_deleted".into()),
                    Value::Int(s.deleted as i64),
                ]);
                t.push_row(vec![
                    Value::Str("num_edges".into()),
                    Value::Int(s.num_edges as i64),
                ]);
                t.push_row(vec![
                    Value::Str("generation".into()),
                    Value::Int(s.generation as i64),
                ]);
                t.push_row(vec![
                    Value::Str("fingerprint".into()),
                    Value::Str(format!("{:016x}", s.fingerprint)),
                ]);
                Response::table(&t).encode()
            }
            Err(message) => Response::error(message).encode(),
        }
    }

    fn handle_subscribe(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        // Same shard resolution as `query`: a per-request shard beats
        // the server default, and the frozen focal set respects it.
        let effective = shard.filter(|s| !s.is_whole()).or(self.shared.shard);
        self.engine.set_focal_shard(effective);
        let spec = match self.engine.compile_subscription(sql) {
            Ok(spec) => spec,
            Err(e) => return Response::error(e.to_string()).encode(),
        };
        match self.shared.subscribe(spec, effective, &self.queue) {
            Ok(ack) => {
                self.subs.push(ack.id);
                let mut t = Table::new(vec!["stat".into(), "value".into()]);
                t.push_row(vec![
                    Value::Str("subscription".into()),
                    Value::Int(ack.id as i64),
                ]);
                t.push_row(vec![
                    Value::Str("generation".into()),
                    Value::Int(ack.generation as i64),
                ]);
                t.push_row(vec![
                    Value::Str("focal".into()),
                    Value::Int(ack.focal as i64),
                ]);
                t.push_row(vec![
                    Value::Str("columns".into()),
                    Value::Str(ack.columns.join("|")),
                ]);
                Response::table(&t).encode()
            }
            Err(message) => Response::error(message).encode(),
        }
    }

    fn handle_materialize(&mut self, sql: &str, shard: Option<ShardSpec>) -> String {
        // Under the update lock: the census runs against a graph no
        // mutation can swap mid-flight, so the installed view's
        // fingerprint is current when the lock is released and the next
        // `update`'s refresh pass will find it. Re-refresh the engine
        // inside the lock in case a mutation landed since dispatch.
        let lock = self.shared.update_lock();
        let _guard = lock.lock().unwrap();
        self.refresh();
        let effective = shard.filter(|s| !s.is_whole()).or(self.shared.shard);
        self.engine.set_focal_shard(effective);
        self.encode_execution(|e| e.execute(sql))
    }

    fn handle_drop_view(&mut self, sql: &str) -> String {
        // The lock serializes the drop and its sidecar re-persist with
        // concurrent materialize/update persists.
        let lock = self.shared.update_lock();
        let _guard = lock.lock().unwrap();
        self.encode_execution(|e| e.execute(sql))
    }

    fn handle_unsubscribe(&mut self, id: u64) -> String {
        // Subscriptions are connection-scoped: a session can cancel only
        // its own (ids are never reused, so this cannot misfire).
        if !self.subs.contains(&id) {
            return Response::error(format!("unknown subscription id {id}")).encode();
        }
        self.shared.unsubscribe(id);
        self.subs.retain(|&s| s != id);
        let mut t = Table::new(vec!["unsubscribed".into()]);
        t.push_row(vec![Value::Int(id as i64)]);
        Response::table(&t).encode()
    }

    fn encode_execution(
        &mut self,
        run: impl FnOnce(&QueryEngine<'static>) -> Result<Table, ego_query::QueryError>,
    ) -> String {
        self.shared
            .stats
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        match run(&self.engine) {
            Ok(t) => Response::table(&t).encode(),
            Err(e) => Response::error(e.to_string()).encode(),
        }
    }

    fn handle_stats(&self) -> String {
        let cache = self.shared.cache.stats();
        let census = self.shared.census.stats();
        let views = self.shared.views.stats();
        let cont = self.shared.continuous.stats();
        let setops = ego_graph::setops::global_snapshot();
        let stats = &self.shared.stats;
        let mut t = Table::new(vec!["stat".into(), "value".into()]);
        let mut rows: Vec<(String, u64)> = vec![
            ("cache_bytes", cache.bytes),
            ("cache_capacity_bytes", cache.capacity_bytes),
            ("cache_entries", cache.entries),
            ("cache_evictions", cache.evictions),
            ("cache_hits", cache.hits),
            ("cache_insertions", cache.insertions),
            ("cache_invalidations", cache.invalidations),
            ("cache_misses", cache.misses),
            ("census_count_bytes", census.count_bytes as u64),
            ("census_count_entries", census.count_entries as u64),
            ("census_count_hits", census.count_hits),
            ("census_count_misses", census.count_misses),
            ("census_count_retained", census.count_retained),
            ("census_invalidations", census.invalidations),
            ("census_match_bytes", census.match_bytes as u64),
            ("census_match_entries", census.match_entries as u64),
            ("census_match_hits", census.match_hits),
            ("census_match_misses", census.match_misses),
            ("connections", stats.connections.load(Ordering::Relaxed)),
            ("continuous_clean_focal", cont.clean_focal),
            ("continuous_created", cont.created),
            ("continuous_dirty_focal", cont.dirty_focal),
            (
                "continuous_errors",
                stats.continuous_errors.load(Ordering::Relaxed),
            ),
            ("continuous_match_discovered", cont.match_discovered),
            ("continuous_match_survivors", cont.match_survivors),
            ("continuous_notifications", cont.notifications),
            ("continuous_rows_pushed", cont.rows_pushed),
            ("continuous_seeded", cont.seeded),
            ("continuous_subscriptions", cont.subscriptions as u64),
            ("continuous_updates", cont.updates),
            (
                "notifications_dropped",
                stats.notifications_dropped.load(Ordering::Relaxed),
            ),
            ("edges_deleted", stats.edges_deleted.load(Ordering::Relaxed)),
            (
                "edges_inserted",
                stats.edges_inserted.load(Ordering::Relaxed),
            ),
            ("graph_generation", self.shared.generation()),
            (
                "graph_mmap_backed",
                (self.shared.current_graph().storage_kind() == "mmap") as u64,
            ),
            ("graph_updates", stats.graph_updates.load(Ordering::Relaxed)),
            (
                "patterns_defined",
                stats.patterns_defined.load(Ordering::Relaxed),
            ),
            (
                "queries_executed",
                stats.queries_executed.load(Ordering::Relaxed),
            ),
            ("requests", stats.requests.load(Ordering::Relaxed)),
            ("setops_bitset_calls", setops.bitset_calls),
            ("setops_gallop_calls", setops.gallop_calls),
            ("setops_merge_calls", setops.merge_calls),
            ("setops_saved_allocs", setops.saved_allocs),
            ("view_budget_bytes", views.budget_bytes as u64),
            ("view_bytes", views.bytes as u64),
            ("view_drops", views.drops),
            ("view_entries", views.entries as u64),
            ("view_evictions", views.evictions),
            ("view_hits", views.hits),
            ("view_materializations", views.materializations),
            (
                "view_refresh_errors",
                stats.view_refresh_errors.load(Ordering::Relaxed),
            ),
            ("view_refreshes", views.refreshes),
            ("view_sidecar_loads", views.sidecar_loads),
        ]
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
        // Planner counters (the shard router's default suffix rule sums
        // these across workers).
        for (name, value) in self.shared.planner.snapshot() {
            rows.push((name.to_string(), value));
        }
        // Per-op request-duration breakdown: only ops that have run, so
        // the table stays compact. The current `stats` request records
        // itself only after this response is built.
        for (name, lat) in OP_NAMES.iter().zip(&stats.latency) {
            let count = lat.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let total = lat.total_us.load(Ordering::Relaxed);
            rows.push((format!("latency_{name}_count"), count));
            rows.push((
                format!("latency_{name}_max_us"),
                lat.max_us.load(Ordering::Relaxed),
            ));
            rows.push((format!("latency_{name}_mean_us"), total / count));
            rows.push((
                format!("latency_{name}_min_us"),
                lat.min_us.load(Ordering::Relaxed),
            ));
            rows.push((format!("latency_{name}_total_us"), total));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in rows {
            t.push_row(vec![Value::Str(name), Value::Int(value as i64)]);
        }
        Response::table(&t).encode()
    }
}

impl Drop for Session {
    /// Subscriptions are connection-scoped: when the connection ends,
    /// its standing queries end with it.
    fn drop(&mut self) {
        for &id in &self.subs {
            self.shared.unsubscribe(id);
        }
    }
}

fn reply_table(text: &str) -> String {
    let mut t = Table::new(vec!["reply".into()]);
    t.push_row(vec![Value::Str(text.into())]);
    Response::table(&t).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Response, TableData};
    use ego_graph::{GraphBuilder, Label, NodeId};

    /// Two triangles sharing node 2, chain 4-5-6 (the executor fixture).
    fn fixture() -> Arc<Graph> {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        Arc::new(b.build())
    }

    fn shared() -> Shared {
        Shared::new(
            fixture(),
            Arc::new(Catalog::with_builtins()),
            &ServerConfig {
                cache_bytes: 1 << 20,
                exec_threads: 1,
                seed: 0xC0FFEE,
                ..ServerConfig::default()
            },
        )
    }

    fn table(encoded: &str) -> TableData {
        match Response::decode(encoded).unwrap() {
            Response::Table(t) => t,
            Response::Error { message } => panic!("unexpected error: {message}"),
            Response::Notify(f) => panic!("unexpected notify frame: {f:?}"),
        }
    }

    #[test]
    fn ping_and_malformed_lines() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let t = table(&s.handle_line(r#"{"op":"ping"}"#));
        assert_eq!(t.rows[0][0], Value::Str("pong".into()));
        let r = Response::decode(&s.handle_line("this is not json")).unwrap();
        assert!(r.is_error());
        // The session survives malformed input.
        assert!(!Response::decode(&s.handle_line(r#"{"op":"ping"}"#))
            .unwrap()
            .is_error());
    }

    #[test]
    fn query_caching_is_byte_identical_and_skips_execution() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let sql =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let first = s.handle_line(sql);
        let executed_after_first = sh.stats.queries_executed.load(Ordering::Relaxed);
        let second = s.handle_line(sql);
        assert_eq!(first, second, "cache hit must be byte-identical");
        assert_eq!(
            sh.stats.queries_executed.load(Ordering::Relaxed),
            executed_after_first,
            "cache hit must not execute"
        );
        assert_eq!(sh.cache_stats().hits, 1);
        assert_eq!(sh.cache_stats().misses, 1);
        // Node 2 sees both triangles.
        assert_eq!(table(&first).rows[2][1], Value::Int(2));
    }

    #[test]
    fn stats_report_per_op_latency_only_for_ops_that_ran() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let _ = s.handle_line(r#"{"op":"ping"}"#);
        let _ = s.handle_line(r#"{"op":"ping"}"#);
        let _ = s.handle_line(
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        );
        let t = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t.stat("latency_ping_count"), Some(2));
        assert_eq!(t.stat("latency_query_count"), Some(1));
        let min = t.stat("latency_query_min_us").expect("min row");
        let mean = t.stat("latency_query_mean_us").expect("mean row");
        let max = t.stat("latency_query_max_us").expect("max row");
        let total = t.stat("latency_query_total_us").expect("total row");
        assert!(min <= mean && mean <= max && max <= total.max(max));
        // Ops that never ran stay out of the table (the stats request
        // itself records only after its own response is built).
        assert_eq!(t.stat("latency_update_count"), None);
        assert_eq!(t.stat("latency_stats_count"), None);
        // The next stats call sees the previous one recorded.
        let t2 = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t2.stat("latency_stats_count"), Some(1));
    }

    #[test]
    fn cache_is_shared_across_sessions_and_spellings() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let a = s1.handle_line(
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        );
        // Different session, different keyword case and spacing: still a hit.
        let b = s2.handle_line(
            r#"{"op":"query","sql":"select  id, countp(clq3_unlb, subgraph(id, 1))  from nodes"}"#,
        );
        assert_eq!(a, b);
        assert_eq!(sh.cache_stats().hits, 1);
    }

    #[test]
    fn session_defines_are_isolated_and_duplicates_rejected() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let def = r#"{"op":"define","pattern":"PATTERN mine { ?A-?B; }"}"#;
        let t = table(&s1.handle_line(def));
        assert_eq!(t.rows[0][0], Value::Str("mine".into()));
        // Redefining in the same session errors...
        let r = Response::decode(&s1.handle_line(def)).unwrap();
        match r {
            Response::Error { message } => {
                assert!(message.contains("already defined"), "{message}")
            }
            _ => panic!("expected error"),
        }
        // ...but another session has its own layer.
        assert!(!Response::decode(&s2.handle_line(def)).unwrap().is_error());
        // Shadowing a shared builtin is also rejected.
        let r = Response::decode(
            &s1.handle_line(r#"{"op":"define","pattern":"PATTERN clq3 { ?A-?B; }"}"#),
        )
        .unwrap();
        assert!(r.is_error());
    }

    #[test]
    fn stats_and_explain_are_uncached() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let t = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t.stat("cache_hits"), Some(0));
        assert_eq!(t.stat("cache_capacity_bytes"), Some(1 << 20));
        let q =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let e1 = s.handle_line(q);
        let _e2 = s.handle_line(q);
        assert!(!Response::decode(&e1).unwrap().is_error());
        assert_eq!(sh.cache_stats().hits, 0, "explain must not touch the cache");
        // Query errors are not cached either.
        let bad = r#"{"op":"query","sql":"SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        assert!(Response::decode(&s.handle_line(bad)).unwrap().is_error());
        assert!(Response::decode(&s.handle_line(bad)).unwrap().is_error());
        assert_eq!(sh.cache_stats().insertions, 0);
    }

    #[test]
    fn distinct_statements_share_census_work() {
        let sh = shared();
        let mut s = Session::new(&sh);
        // Two different statements (different radii -> result-cache
        // misses for both) over the same pattern: the second reuses the
        // first's global match list through the census cache.
        let q1 =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let q2 =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 2)) FROM nodes"}"#;
        assert!(!Response::decode(&s.handle_line(q1)).unwrap().is_error());
        assert!(!Response::decode(&s.handle_line(q2)).unwrap().is_error());
        assert_eq!(sh.cache_stats().hits, 0, "different statements");
        let census = sh.census.stats();
        assert_eq!(census.match_hits, 1, "match list reused across statements");
        assert_eq!(census.count_entries, 2);
        // The counters surface through the stats op, sorted by name.
        let t = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t.stat("census_match_hits"), Some(1));
        assert_eq!(t.stat("census_count_entries"), Some(2));
    }

    #[test]
    fn update_changes_results_and_never_serves_stale_cache() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let q =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let before = table(&s.handle_line(q));
        // Node 5 sits on the 4-5-6 chain: no triangle yet.
        assert_eq!(before.rows[5][1], Value::Int(0));

        let upd = table(&s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#));
        assert_eq!(upd.stat("edges_inserted"), Some(1));
        assert_eq!(upd.stat("edges_deleted"), Some(0));
        assert_eq!(upd.stat("num_edges"), Some(9));
        assert_eq!(upd.stat("generation"), Some(1));

        // The same query now sees the 4-5-6 triangle; the pre-update
        // cached answer must not be served.
        let after = table(&s.handle_line(q));
        assert_eq!(after.rows[5][1], Value::Int(1));
        assert_eq!(after.rows[4][1], Value::Int(2));
        let st = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("graph_updates"), Some(1));
        assert_eq!(st.stat("cache_invalidations"), Some(1));
        assert_eq!(st.stat("census_invalidations"), Some(1));
        assert_eq!(st.stat("graph_generation"), Some(1));
    }

    #[test]
    fn update_refreshes_other_sessions_without_reinvalidating() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let q =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        // s2 warms its engine on the startup graph first.
        assert_eq!(table(&s2.handle_line(q)).rows[5][1], Value::Int(0));
        assert!(!Response::decode(
            &s1.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        // s1 repopulates the shared caches post-update...
        assert_eq!(table(&s1.handle_line(q)).rows[5][1], Value::Int(1));
        let census_entries = sh.census.stats().count_entries;
        assert!(census_entries > 0);
        // ...and s2's lazy refresh picks up the new graph as a cache hit
        // without clearing what s1 just repopulated.
        assert_eq!(table(&s2.handle_line(q)).rows[5][1], Value::Int(1));
        assert_eq!(sh.census.stats().count_entries, census_entries);
        assert_eq!(sh.cache_stats().invalidations, 1);
    }

    #[test]
    fn noop_and_cancelling_updates_leave_everything_alone() {
        let sh = shared();
        let mut s = Session::new(&sh);
        // Edge (0, 1) already exists; the insert/delete pair cancels.
        for script in [
            "INSERT EDGE (0, 1)",
            "INSERT EDGE (3, 5); DELETE EDGE (3, 5)",
        ] {
            let line = format!(r#"{{"op":"update","mutations":"{script}"}}"#);
            let t = table(&s.handle_line(&line));
            assert_eq!(t.stat("edges_inserted"), Some(0), "{script}");
            assert_eq!(t.stat("edges_deleted"), Some(0), "{script}");
            assert_eq!(t.stat("generation"), Some(0), "{script}");
        }
        assert_eq!(sh.generation(), 0);
        assert_eq!(sh.cache_stats().invalidations, 0);
        assert_eq!(sh.stats.graph_updates.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bad_mutation_scripts_are_rejected_atomically() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let fp = sh.fingerprint();
        for script in [
            "UPDATE EDGE (0, 1)",             // unknown verb
            "INSERT EDGE (0, 99)",            // node out of range
            "INSERT EDGE (3, 3)",             // self loop
            "INSERT EDGE (3, 5); DELETE (1)", // later statement malformed
            "",
        ] {
            let line = format!(r#"{{"op":"update","mutations":"{script}"}}"#);
            let r = Response::decode(&s.handle_line(&line)).unwrap();
            assert!(r.is_error(), "script {script:?} should be rejected");
        }
        // Nothing was applied, even for the script whose first statement
        // was valid.
        assert_eq!(sh.fingerprint(), fp);
        assert_eq!(sh.generation(), 0);
        assert_eq!(sh.stats.graph_updates.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn session_patterns_survive_an_update() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let def = r#"{"op":"define","pattern":"PATTERN mine { ?A-?B; ?B-?C; ?A-?C; }"}"#;
        assert!(!Response::decode(&s.handle_line(def)).unwrap().is_error());
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        // The session-local pattern still resolves on the new engine.
        let q = r#"{"op":"query","sql":"SELECT ID, COUNTP(mine, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(q));
        assert_eq!(t.rows[5][1], Value::Int(1));
    }

    #[test]
    fn analyze_feeds_every_sessions_planner() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let census_detail = |encoded: &str| {
            table(encoded)
                .rows
                .iter()
                .find(|r| matches!(&r[0], Value::Str(s) if s.trim_start() == "census"))
                .map(|r| r[1].to_string())
                .expect("census row")
        };
        assert!(census_detail(&s1.handle_line(explain)).contains("stats=heuristic"));
        // Analyze on one connection...
        let t = table(&s1.handle_line(r#"{"op":"analyze"}"#));
        assert_eq!(t.columns, vec!["statistic", "value"]);
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == Value::Str("num_nodes".into())));
        // ...upgrades the planner basis on every other connection.
        assert!(census_detail(&s2.handle_line(explain)).contains("stats=analyzed"));
        // Planner counters surface through stats (2 explains + 1 query
        // below = 3 plans; the analyzed explain counts as a cost-model
        // hit, the heuristic one as a fallback).
        let q =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        assert!(!Response::decode(&s2.handle_line(q)).unwrap().is_error());
        let st = table(&s1.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("planner_plans_built"), Some(3));
        assert_eq!(st.stat("planner_heuristic_fallbacks"), Some(1));
        assert_eq!(st.stat("planner_cost_model_hits"), Some(2));
        assert_eq!(st.stat("latency_analyze_count"), Some(1));
    }

    #[test]
    fn analyze_snapshot_goes_stale_after_update() {
        let sh = shared();
        let mut s = Session::new(&sh);
        assert!(!Response::decode(&s.handle_line(r#"{"op":"analyze"}"#))
            .unwrap()
            .is_error());
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(explain));
        let detail = t
            .rows
            .iter()
            .find(|r| matches!(&r[0], Value::Str(s) if s.trim_start() == "census"))
            .map(|r| r[1].to_string())
            .expect("census row");
        assert!(detail.contains("stats=stale"), "{detail}");
        // Re-analyzing the mutated graph restores the cost-model basis.
        assert!(!Response::decode(&s.handle_line(r#"{"op":"analyze"}"#))
            .unwrap()
            .is_error());
        let t = table(&s.handle_line(explain));
        let detail = t
            .rows
            .iter()
            .find(|r| matches!(&r[0], Value::Str(s) if s.trim_start() == "census"))
            .map(|r| r[1].to_string())
            .expect("census row");
        assert!(detail.contains("stats=analyzed"), "{detail}");
    }

    fn notify(encoded: &str) -> crate::protocol::NotifyFrame {
        match Response::decode(encoded).unwrap() {
            Response::Notify(f) => f,
            other => panic!("expected a notify frame, got {other:?}"),
        }
    }

    #[test]
    fn subscribe_routes_changed_rows_to_the_subscribing_session() {
        let sh = shared();
        let mut sub = Session::new(&sh);
        let mut mutator = Session::new(&sh);
        let ack = table(&sub.handle_line(
            r#"{"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        ));
        assert_eq!(ack.stat("subscription"), Some(1));
        assert_eq!(ack.stat("generation"), Some(0));
        assert_eq!(ack.stat("focal"), Some(7));
        assert!(sub.has_subscriptions());

        // A mutation on *another* connection parks a frame on the
        // subscriber's queue, not the mutator's.
        assert!(!Response::decode(
            &mutator.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        assert!(mutator.drain_notifications().is_empty());
        let frames = sub.drain_notifications();
        assert_eq!(frames.len(), 1);
        let f = notify(&frames[0]);
        assert_eq!((f.subscription, f.generation), (1, 1));
        // The new 4-5-6 triangle: node 4 goes 1 -> 2, nodes 5 and 6 go
        // 0 -> 1, focal-ascending.
        let rows: Vec<(i64, i64, i64)> = f
            .rows
            .iter()
            .map(|r| match (&r[0], &r[2], &r[3]) {
                (Value::Int(n), Value::Int(old), Value::Int(new)) => (*n, *old, *new),
                other => panic!("unexpected row shape: {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![(4, 1, 2), (5, 0, 1), (6, 0, 1)]);
        // Draining is destructive; no frames remain.
        assert!(sub.drain_notifications().is_empty());

        // A no-op update produces no frame (the graph never changed).
        assert!(!Response::decode(
            &mutator.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        assert!(sub.drain_notifications().is_empty());

        let st = table(&sub.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("continuous_subscriptions"), Some(1));
        assert_eq!(st.stat("continuous_updates"), Some(1));
        assert_eq!(st.stat("continuous_rows_pushed"), Some(3));
        assert_eq!(st.stat("notifications_dropped"), Some(0));
    }

    #[test]
    fn empty_frames_acknowledge_generations_for_unaffected_focal_sets() {
        let sh = shared();
        let mut sub = Session::new(&sh);
        let mut mutator = Session::new(&sh);
        // Focal frozen to {0, 1}: the far-side mutation can't touch it.
        let ack = table(&sub.handle_line(
            r#"{"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 2"}"#,
        ));
        assert_eq!(ack.stat("focal"), Some(2));
        assert!(!Response::decode(
            &mutator.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        let frames = sub.drain_notifications();
        assert_eq!(frames.len(), 1, "generation ack even with no changes");
        let f = notify(&frames[0]);
        assert_eq!(f.generation, 1);
        assert!(f.rows.is_empty());
    }

    #[test]
    fn unsubscribe_is_connection_scoped_and_stops_frames() {
        let sh = shared();
        let mut sub = Session::new(&sh);
        let mut other = Session::new(&sh);
        let ack = table(&sub.handle_line(
            r#"{"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        ));
        let id = ack.stat("subscription").unwrap();
        // Another connection cannot cancel it...
        let r =
            Response::decode(&other.handle_line(&format!(r#"{{"op":"unsubscribe","id":{id}}}"#)))
                .unwrap();
        assert!(r.is_error());
        // ...the owner can, and frames stop.
        let t = table(&sub.handle_line(&format!(r#"{{"op":"unsubscribe","id":{id}}}"#)));
        assert_eq!(t.rows[0][0], Value::Int(id));
        assert!(!sub.has_subscriptions());
        assert!(!Response::decode(
            &other.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        assert!(sub.drain_notifications().is_empty());
        assert_eq!(sh.continuous.stats().subscriptions, 0);
        // Unknown ids error without side effects.
        assert!(
            Response::decode(&sub.handle_line(r#"{"op":"unsubscribe","id":99}"#))
                .unwrap()
                .is_error()
        );
    }

    #[test]
    fn dropping_a_session_drops_its_subscriptions() {
        let sh = shared();
        {
            let mut sub = Session::new(&sh);
            let _ = sub.handle_line(
                r#"{"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
            );
            assert_eq!(sh.continuous.stats().subscriptions, 1);
        }
        assert_eq!(sh.continuous.stats().subscriptions, 0);
        // Updates after the drop evaluate nothing.
        let mut s = Session::new(&sh);
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        assert_eq!(sh.continuous.stats().updates, 0);
    }

    #[test]
    fn subscribe_rejects_malformed_standing_queries() {
        let sh = shared();
        let mut s = Session::new(&sh);
        for sql in [
            "SELECT ID FROM nodes", // no aggregate
            "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes LIMIT 3", // LIMIT
            "SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes", // unknown pattern
        ] {
            let line = format!(r#"{{"op":"subscribe","sql":"{sql}"}}"#);
            let r = Response::decode(&s.handle_line(&line)).unwrap();
            assert!(r.is_error(), "{sql} should be rejected");
        }
        assert_eq!(sh.continuous.stats().created, 0);
    }

    #[test]
    fn clean_census_count_entries_survive_a_localized_mutation() {
        let sh = shared();
        let mut s = Session::new(&sh);
        // Focal {0, 1} at radius 1 — two hops clear of the 4-5-6 chain.
        let q = r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 2"}"#;
        let before = table(&s.handle_line(q));
        assert_eq!(before.rows[0][1], Value::Int(1));
        let hits_before = sh.census.stats().count_hits;
        assert_eq!(sh.census.stats().count_entries, 1);

        // INSERT (4, 6) dirties {2, 3, 4, 5, 6} at radius 1 — not the
        // cached entry's focal set, so the entry is rekeyed and kept.
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        let census = sh.census.stats();
        assert_eq!(census.count_retained, 1, "clean entry must survive");
        assert_eq!(census.count_entries, 1);
        assert_eq!(census.invalidations, 1);
        assert_eq!(census.match_entries, 0, "match lists always drop");

        // Re-running the query hits the retained entry under the *new*
        // fingerprint (the whole-result cache was invalidated, so this
        // exercises the census cache, and the counts are still right).
        let after = table(&s.handle_line(q));
        assert_eq!(after.rows[0][1], Value::Int(1));
        assert_eq!(after.rows[1][1], Value::Int(1));
        assert!(sh.census.stats().count_hits > hits_before);

        // A mutation *inside* the focal neighborhood drops the entry.
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"DELETE EDGE (0, 2)"}"#)
        )
        .unwrap()
        .is_error());
        assert_eq!(sh.census.stats().count_entries, 0);
        assert_eq!(sh.census.stats().count_retained, 1, "no new retention");
        let t = table(&s.handle_line(q));
        assert_eq!(t.rows[0][1], Value::Int(0), "triangle gone");
        // The retention counter surfaces through the stats op.
        let st = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("census_count_retained"), Some(1));
    }

    /// Find a labeled row in an EXPLAIN table (rows are indented).
    fn explain_has_row(t: &TableData, label: &str) -> bool {
        t.rows
            .iter()
            .any(|r| matches!(&r[0], Value::Str(s) if s.trim_start() == label))
    }

    #[test]
    fn materialize_pins_a_view_served_as_pure_probe() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let m = r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1 MATCHES"}"#;
        let ack = table(&s.handle_line(m));
        assert!(ack
            .rows
            .iter()
            .any(|r| r.contains(&Value::Str("materialized".into()))));
        // The plan rewrites to a pure view probe...
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(explain));
        assert!(explain_has_row(&t, "view-probe"), "{t:?}");
        assert!(!explain_has_row(&t, "census"), "{t:?}");
        // ...and the served rows are the census answer.
        let q =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(q));
        assert_eq!(t.rows[2][1], Value::Int(2));
        assert_eq!(t.rows[5][1], Value::Int(0));
        let st = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("view_entries"), Some(1));
        assert_eq!(st.stat("view_materializations"), Some(1));
        assert!(st.stat("view_hits").unwrap() >= 1);
        assert!(st.stat("view_bytes").unwrap() > 0);
        assert_eq!(st.stat("latency_materialize_count"), Some(1));
        // Another session sees the same shared tier.
        let mut s2 = Session::new(&sh);
        let t = table(&s2.handle_line(explain));
        assert!(explain_has_row(&t, "view-probe"));
    }

    #[test]
    fn drop_view_restores_census_execution_and_unknown_drop_errors() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let _ = s.handle_line(r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1"}"#);
        let d = r#"{"op":"drop_view","sql":"DROP VIEW clq3_unlb RADIUS 1"}"#;
        let ack = table(&s.handle_line(d));
        assert!(ack
            .rows
            .iter()
            .any(|r| r.contains(&Value::Str("dropped".into()))));
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(explain));
        assert!(explain_has_row(&t, "census"), "{t:?}");
        // Dropping again is an error naming the view.
        let r = Response::decode(&s.handle_line(d)).unwrap();
        assert!(r.is_error());
        let st = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("view_entries"), Some(0));
        assert_eq!(st.stat("view_drops"), Some(1));
    }

    #[test]
    fn update_refreshes_views_in_place_and_serves_fresh_counts() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let _ =
            s.handle_line(r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1 MATCHES"}"#);
        let q =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let before = table(&s.handle_line(q));
        assert_eq!(before.rows[5][1], Value::Int(0));
        assert!(!Response::decode(
            &s.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        // The view was refreshed through the incremental engine — not
        // invalidated — so the statement still plans as a pure probe and
        // the served counts match the full recompute on the new graph.
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s.handle_line(explain));
        assert!(explain_has_row(&t, "view-probe"), "view survives updates");
        let after = table(&s.handle_line(q));
        let counts: Vec<Value> = after.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(
            counts,
            [1, 1, 2, 1, 2, 1, 1].map(Value::Int).to_vec(),
            "view-served counts equal the recompute on the mutated graph"
        );
        let st = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("view_refreshes"), Some(1));
        assert_eq!(st.stat("view_refresh_errors"), Some(0));
        assert_eq!(st.stat("view_entries"), Some(1));
    }

    #[test]
    fn subscribe_seeds_its_baseline_from_a_materialized_view() {
        let sh = shared();
        let mut sub = Session::new(&sh);
        let mut mutator = Session::new(&sh);
        let _ = sub
            .handle_line(r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1 MATCHES"}"#);
        let ack = table(&sub.handle_line(
            r#"{"op":"subscribe","sql":"SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        ));
        assert_eq!(ack.stat("focal"), Some(7));
        let st = table(&sub.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            st.stat("continuous_seeded"),
            Some(1),
            "the view's maintained match list is the baseline"
        );
        // The seeded baseline diffs exactly like an enumerated one.
        assert!(!Response::decode(
            &mutator.handle_line(r#"{"op":"update","mutations":"INSERT EDGE (4, 6)"}"#)
        )
        .unwrap()
        .is_error());
        let frames = sub.drain_notifications();
        assert_eq!(frames.len(), 1);
        let f = notify(&frames[0]);
        let rows: Vec<(i64, i64, i64)> = f
            .rows
            .iter()
            .map(|r| match (&r[0], &r[2], &r[3]) {
                (Value::Int(n), Value::Int(old), Value::Int(new)) => (*n, *old, *new),
                other => panic!("unexpected row shape: {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![(4, 1, 2), (5, 0, 1), (6, 0, 1)]);
    }

    #[test]
    fn views_sidecar_warms_a_restart() {
        let dir = std::env::temp_dir().join(format!("ego_server_views_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixture.egb.views");
        let _ = std::fs::remove_file(&path);
        let config = ServerConfig {
            cache_bytes: 1 << 20,
            exec_threads: 1,
            views_path: Some(path.clone()),
            ..ServerConfig::default()
        };
        let sh = Shared::new(fixture(), Arc::new(Catalog::with_builtins()), &config);
        let mut s = Session::new(&sh);
        let _ =
            s.handle_line(r#"{"op":"materialize","sql":"MATERIALIZE clq3_unlb RADIUS 1 MATCHES"}"#);
        assert!(path.exists(), "materialize persists the sidecar");
        drop(s);
        // A fresh Shared over the same graph re-adopts the sidecar.
        let sh2 = Shared::new(fixture(), Arc::new(Catalog::with_builtins()), &config);
        let mut s2 = Session::new(&sh2);
        let st = table(&s2.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(st.stat("view_entries"), Some(1));
        assert_eq!(st.stat("view_sidecar_loads"), Some(1));
        let explain =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let t = table(&s2.handle_line(explain));
        assert!(explain_has_row(&t, "view-probe"), "restart is warm");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let sh = shared();
        let mut s = Session::new(&sh);
        assert!(!sh.shutdown.load(Ordering::SeqCst));
        let t = table(&s.handle_line(r#"{"op":"shutdown"}"#));
        assert_eq!(t.rows[0][0], Value::Str("shutting down".into()));
        assert!(sh.shutdown.load(Ordering::SeqCst));
    }
}
