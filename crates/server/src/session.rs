//! Per-connection sessions.
//!
//! Each accepted connection gets a [`Session`]: its own
//! [`ego_query::QueryEngine`] over the server's shared `Arc<Graph>`,
//! with a pattern catalog *layered* over the shared base catalog —
//! `define` requests are visible only to that session and can never
//! shadow a shared built-in (that's a `pattern already defined` error).
//! All sessions share one result cache and one set of counters.

use crate::cache::{CacheStats, QueryCache};
use crate::protocol::{Request, Response};
use ego_graph::Graph;
use ego_query::{canonical_query_key, Catalog, CensusCache, QueryEngine, Table, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Entries held per side (match lists / count vectors) of the shared
/// [`CensusCache`]. Entry-count budgeted, unlike the byte-budgeted
/// result cache: values are `Arc`-shared intermediates whose byte size
/// the executor shouldn't have to estimate. Disabled together with the
/// result cache (`--cache-mb 0`).
const CENSUS_CACHE_ENTRIES: usize = 256;

/// Whole-server counters (beyond the cache's own).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Queries that actually ran on the engine (cache misses + uncached
    /// ops). A cache hit does not increment this — nor any traversal
    /// underneath it.
    pub queries_executed: AtomicU64,
    /// Session-local patterns defined.
    pub patterns_defined: AtomicU64,
}

/// State shared by every session: the loaded graph, the base catalog,
/// the result cache, counters, and the shutdown flag.
#[derive(Clone)]
pub struct Shared {
    /// The graph, loaded once at startup.
    pub graph: Arc<Graph>,
    /// Patterns every session sees (e.g. the paper's built-ins).
    pub base_catalog: Arc<Catalog>,
    /// The pattern-keyed result cache.
    pub cache: Arc<QueryCache>,
    /// The census intermediate cache (match lists + count vectors),
    /// shared by every session's engine: different statements over the
    /// same patterns share traversal work even when the whole-result
    /// cache misses.
    pub census: Arc<CensusCache>,
    /// Server counters.
    pub stats: Arc<ServerStats>,
    /// Set to stop the accept loop and drain workers.
    pub shutdown: Arc<AtomicBool>,
    /// Worker threads per census execution (`0` = all hardware threads).
    pub exec_threads: usize,
    /// `RND()` seed for every session (part of the cache key).
    pub seed: u64,
    /// Graph fingerprint, computed once (part of the cache key).
    pub fingerprint: u64,
}

impl Shared {
    /// Build shared state, computing the graph fingerprint once.
    pub fn new(
        graph: Arc<Graph>,
        base_catalog: Arc<Catalog>,
        cache_capacity_bytes: usize,
        exec_threads: usize,
        seed: u64,
    ) -> Shared {
        let fingerprint = graph.fingerprint();
        Shared {
            graph,
            base_catalog,
            cache: Arc::new(QueryCache::new(cache_capacity_bytes)),
            census: Arc::new(CensusCache::new(if cache_capacity_bytes == 0 {
                0
            } else {
                CENSUS_CACHE_ENTRIES
            })),
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            exec_threads,
            seed,
            fingerprint,
        }
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// One connection's execution context.
pub struct Session {
    shared: Shared,
    engine: QueryEngine<'static>,
}

impl Session {
    /// A fresh session over the shared graph and base catalog.
    pub fn new(shared: &Shared) -> Session {
        let mut engine = QueryEngine::shared(shared.graph.clone());
        engine.set_catalog(Catalog::layered(shared.base_catalog.clone()));
        engine.set_threads(shared.exec_threads);
        engine.set_seed(shared.seed);
        engine.set_census_cache(shared.census.clone());
        Session {
            shared: shared.clone(),
            engine,
        }
    }

    /// Handle one request line, returning one encoded response line
    /// (no trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        match Request::decode(line) {
            Ok(req) => self.handle(&req),
            Err(message) => Response::error(message).encode(),
        }
    }

    /// Handle one decoded request.
    pub fn handle(&mut self, req: &Request) -> String {
        match req {
            Request::Ping => reply_table("pong"),
            Request::Define { pattern } => self.handle_define(pattern),
            Request::Query { sql } => self.handle_query(sql),
            Request::Explain { sql } => self.encode_execution(|e| e.explain(sql)),
            Request::Stats => self.handle_stats(),
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                reply_table("shutting down")
            }
        }
    }

    fn handle_define(&mut self, pattern: &str) -> String {
        match self.engine.catalog_mut().define(pattern) {
            Ok(p) => {
                self.shared
                    .stats
                    .patterns_defined
                    .fetch_add(1, Ordering::Relaxed);
                let mut t = Table::new(vec!["defined".into()]);
                t.push_row(vec![Value::Str(p.name().to_string())]);
                Response::table(&t).encode()
            }
            Err(e) => Response::error(e.to_string()).encode(),
        }
    }

    fn handle_query(&mut self, sql: &str) -> String {
        // `EXPLAIN SELECT ...` through the query op describes a plan; it
        // is cheap and algorithm-dependent, so it bypasses the cache.
        let trimmed = sql.trim_start();
        if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
            return self.encode_execution(|e| e.execute(sql));
        }
        let key = match canonical_query_key(sql, self.engine.catalog()) {
            Ok(canonical) => format!(
                "{canonical}|fp={:016x}|seed={}",
                self.shared.fingerprint, self.shared.seed
            ),
            // The statement won't execute either; report that error.
            Err(e) => return Response::error(e.to_string()).encode(),
        };
        if let Some(cached) = self.shared.cache.get(&key) {
            return cached;
        }
        let encoded = self.encode_execution(|e| e.execute(sql));
        if !encoded.starts_with(r#"{"ok":false"#) {
            self.shared.cache.insert(key, encoded.clone());
        }
        encoded
    }

    fn encode_execution(
        &mut self,
        run: impl FnOnce(&QueryEngine<'static>) -> Result<Table, ego_query::QueryError>,
    ) -> String {
        self.shared
            .stats
            .queries_executed
            .fetch_add(1, Ordering::Relaxed);
        match run(&self.engine) {
            Ok(t) => Response::table(&t).encode(),
            Err(e) => Response::error(e.to_string()).encode(),
        }
    }

    fn handle_stats(&self) -> String {
        let cache = self.shared.cache.stats();
        let census = self.shared.census.stats();
        let stats = &self.shared.stats;
        let mut t = Table::new(vec!["stat".into(), "value".into()]);
        let rows: &[(&str, u64)] = &[
            ("cache_bytes", cache.bytes),
            ("cache_capacity_bytes", cache.capacity_bytes),
            ("cache_entries", cache.entries),
            ("cache_evictions", cache.evictions),
            ("cache_hits", cache.hits),
            ("cache_insertions", cache.insertions),
            ("cache_misses", cache.misses),
            ("census_count_entries", census.count_entries as u64),
            ("census_count_hits", census.count_hits),
            ("census_count_misses", census.count_misses),
            ("census_match_entries", census.match_entries as u64),
            ("census_match_hits", census.match_hits),
            ("census_match_misses", census.match_misses),
            ("connections", stats.connections.load(Ordering::Relaxed)),
            (
                "patterns_defined",
                stats.patterns_defined.load(Ordering::Relaxed),
            ),
            (
                "queries_executed",
                stats.queries_executed.load(Ordering::Relaxed),
            ),
            ("requests", stats.requests.load(Ordering::Relaxed)),
        ];
        for (name, value) in rows {
            t.push_row(vec![
                Value::Str(name.to_string()),
                Value::Int(*value as i64),
            ]);
        }
        Response::table(&t).encode()
    }
}

fn reply_table(text: &str) -> String {
    let mut t = Table::new(vec!["reply".into()]);
    t.push_row(vec![Value::Str(text.into())]);
    Response::table(&t).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Response, TableData};
    use ego_graph::{GraphBuilder, Label, NodeId};

    /// Two triangles sharing node 2, chain 4-5-6 (the executor fixture).
    fn fixture() -> Arc<Graph> {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        Arc::new(b.build())
    }

    fn shared() -> Shared {
        Shared::new(
            fixture(),
            Arc::new(Catalog::with_builtins()),
            1 << 20,
            1,
            0xC0FFEE,
        )
    }

    fn table(encoded: &str) -> TableData {
        match Response::decode(encoded).unwrap() {
            Response::Table(t) => t,
            Response::Error { message } => panic!("unexpected error: {message}"),
        }
    }

    #[test]
    fn ping_and_malformed_lines() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let t = table(&s.handle_line(r#"{"op":"ping"}"#));
        assert_eq!(t.rows[0][0], Value::Str("pong".into()));
        let r = Response::decode(&s.handle_line("this is not json")).unwrap();
        assert!(r.is_error());
        // The session survives malformed input.
        assert!(!Response::decode(&s.handle_line(r#"{"op":"ping"}"#))
            .unwrap()
            .is_error());
    }

    #[test]
    fn query_caching_is_byte_identical_and_skips_execution() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let sql =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let first = s.handle_line(sql);
        let executed_after_first = sh.stats.queries_executed.load(Ordering::Relaxed);
        let second = s.handle_line(sql);
        assert_eq!(first, second, "cache hit must be byte-identical");
        assert_eq!(
            sh.stats.queries_executed.load(Ordering::Relaxed),
            executed_after_first,
            "cache hit must not execute"
        );
        assert_eq!(sh.cache_stats().hits, 1);
        assert_eq!(sh.cache_stats().misses, 1);
        // Node 2 sees both triangles.
        assert_eq!(table(&first).rows[2][1], Value::Int(2));
    }

    #[test]
    fn cache_is_shared_across_sessions_and_spellings() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let a = s1.handle_line(
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#,
        );
        // Different session, different keyword case and spacing: still a hit.
        let b = s2.handle_line(
            r#"{"op":"query","sql":"select  id, countp(clq3_unlb, subgraph(id, 1))  from nodes"}"#,
        );
        assert_eq!(a, b);
        assert_eq!(sh.cache_stats().hits, 1);
    }

    #[test]
    fn session_defines_are_isolated_and_duplicates_rejected() {
        let sh = shared();
        let mut s1 = Session::new(&sh);
        let mut s2 = Session::new(&sh);
        let def = r#"{"op":"define","pattern":"PATTERN mine { ?A-?B; }"}"#;
        let t = table(&s1.handle_line(def));
        assert_eq!(t.rows[0][0], Value::Str("mine".into()));
        // Redefining in the same session errors...
        let r = Response::decode(&s1.handle_line(def)).unwrap();
        match r {
            Response::Error { message } => {
                assert!(message.contains("already defined"), "{message}")
            }
            _ => panic!("expected error"),
        }
        // ...but another session has its own layer.
        assert!(!Response::decode(&s2.handle_line(def)).unwrap().is_error());
        // Shadowing a shared builtin is also rejected.
        let r = Response::decode(
            &s1.handle_line(r#"{"op":"define","pattern":"PATTERN clq3 { ?A-?B; }"}"#),
        )
        .unwrap();
        assert!(r.is_error());
    }

    #[test]
    fn stats_and_explain_are_uncached() {
        let sh = shared();
        let mut s = Session::new(&sh);
        let t = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t.stat("cache_hits"), Some(0));
        assert_eq!(t.stat("cache_capacity_bytes"), Some(1 << 20));
        let q =
            r#"{"op":"explain","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let e1 = s.handle_line(q);
        let _e2 = s.handle_line(q);
        assert!(!Response::decode(&e1).unwrap().is_error());
        assert_eq!(sh.cache_stats().hits, 0, "explain must not touch the cache");
        // Query errors are not cached either.
        let bad = r#"{"op":"query","sql":"SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        assert!(Response::decode(&s.handle_line(bad)).unwrap().is_error());
        assert!(Response::decode(&s.handle_line(bad)).unwrap().is_error());
        assert_eq!(sh.cache_stats().insertions, 0);
    }

    #[test]
    fn distinct_statements_share_census_work() {
        let sh = shared();
        let mut s = Session::new(&sh);
        // Two different statements (different radii -> result-cache
        // misses for both) over the same pattern: the second reuses the
        // first's global match list through the census cache.
        let q1 =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes"}"#;
        let q2 =
            r#"{"op":"query","sql":"SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 2)) FROM nodes"}"#;
        assert!(!Response::decode(&s.handle_line(q1)).unwrap().is_error());
        assert!(!Response::decode(&s.handle_line(q2)).unwrap().is_error());
        assert_eq!(sh.cache_stats().hits, 0, "different statements");
        let census = sh.census.stats();
        assert_eq!(census.match_hits, 1, "match list reused across statements");
        assert_eq!(census.count_entries, 2);
        // The counters surface through the stats op, sorted by name.
        let t = table(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(t.stat("census_match_hits"), Some(1));
        assert_eq!(t.stat("census_count_entries"), Some(2));
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let sh = shared();
        let mut s = Session::new(&sh);
        assert!(!sh.shutdown.load(Ordering::SeqCst));
        let t = table(&s.handle_line(r#"{"op":"shutdown"}"#));
        assert_eq!(t.rows[0][0], Value::Str("shutting down".into()));
        assert!(sh.shutdown.load(Ordering::SeqCst));
    }
}
