//! Minimal JSON: a value type, a recursive-descent parser, and a
//! deterministic writer.
//!
//! The build environment is offline, so `serde_json` is unavailable;
//! the wire protocol needs only this small, dependency-free subset.
//! Objects preserve insertion order (they are association vectors, not
//! maps), which makes rendering deterministic — a requirement for the
//! result cache, whose hit path must return byte-identical responses.

use std::fmt::Write as _;

/// A JSON value. Numbers keep the integer/float distinction so census
/// counts survive a round-trip as exact `i64`s.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association vector.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse one JSON value from `input`, requiring the whole string to
    /// be consumed (modulo whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Render to a compact single-line string. Deterministic: the same
    /// value always renders to the same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                write!(out, "{i}").unwrap();
            }
            Json::Float(f) => render_float(*f, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; null is the least-bad encoding.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float/int distinction through a round-trip: `1.0`
    // renders as "1" in Rust, which would re-parse as an integer.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 advanced past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Integer overflow: fall back to float like other parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Float(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
            assert_eq!(Json::parse(&value.render()).unwrap(), value);
        }
    }

    #[test]
    fn roundtrip_structures() {
        let v = Json::Obj(vec![
            ("op".into(), Json::Str("query".into())),
            (
                "rows".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(1), Json::Null]),
                    Json::Arr(vec![Json::Int(2), Json::Float(0.5)]),
                ]),
            ),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"op":"query","rows":[[1,null],[2,0.5]]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rendering_is_deterministic_and_floats_stay_floats() {
        let v = Json::Arr(vec![Json::Float(1.0), Json::Int(1)]);
        assert_eq!(v.render(), "[1.0,1]");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
    }

    #[test]
    fn whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "{", "[1,", "tru", "\"abc", "{\"a\":}", "1 2", "{'a':1}", "[1]]", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Int(3).get("x").is_none());
    }
}
